"""Live-observability extension: catching and explaining an SLO burn.

Plays the ``slow_replica`` chaos scenario — one of three replicas
serving every request ~15x slower than normal for a timed window —
with the streaming observability layer (:mod:`repro.obs.live`) armed:
a latency SLO (99th-percentile-style attainment target declared as
"``objective`` of requests under ``target``"), multi-window burn-rate
alerting, per-window quantile sketches, and exemplar capture.

The question the figure answers is *operational*, not statistical:
when one replica silently degrades, how fast does the burn-rate alert
fire, and does the tail-attribution report name the right cause? The
acceptance bar:

- the ``slo_burn`` alert fires within one fast horizon
  (``fast_windows x window``) of the fault onset — the degraded
  replica's queued work burns budget from the moment it stops
  completing, because the SLO accounting is send-anchored;
- the ranked tail report (:func:`repro.obs.attribution.tail_report`)
  attributes the p99 to **queue wait on the faulted replica during
  the fault phase** — not to service time (the per-request stall is
  modest; the damage is the backlog it creates), and not to the
  healthy replicas.

Both execution modes run the identical scenario: the live harness
(sleep application, wall clock) and the discrete-event simulator
(identical service-time distribution, virtual time). The verdict is
judged on the deterministic simulator arm; the live arm corroborates
it but carries scheduler noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..apps.base import Application, Client
from ..core import HarnessConfig, run_harness
from ..core.config import ObservabilityConfig, SloConfig
from ..faults import slow_replica
from ..sim import SimConfig, simulate_load
from ..sim.calibration import AppProfile
from ..stats import LogNormal
from .reporting import ascii_table

__all__ = [
    "LiveObsArm",
    "LiveObsComparison",
    "run_fig_live",
    "render_fig_live",
]

#: Service-time distribution shared by the live sleep app and the
#: simulator: 10 ms mean, moderate tail.
_SERVICE = LogNormal(mean=10e-3, sigma=0.3)

#: Replicas behind the (deliberately blind) round-robin balancer.
_N_SERVERS = 3

#: Offered load as a fraction of aggregate capacity: low enough that
#: healthy replicas hold the SLO with room to spare (baseline bad
#: fraction ~1%, well inside the 10% error budget), high enough that
#: the faulted replica's backlog grows without bound during the fault.
_LOAD_FRACTION = 0.55

#: The degraded replica's per-request stall: ~15x the mean service
#: time, so every request it serves during the fault blows the
#: latency target and its queue grows at ~90% of its arrival rate.
_SLOW_PAUSE = 0.15

#: Index of the replica the scenario degrades.
_FAULT_SERVER = _N_SERVERS - 1


class _SlowSleepClient(Client):
    """Draws per-request service times from this experiment's distribution."""

    def __init__(self, seed: int) -> None:
        import random

        self._rng = random.Random(seed ^ 0x11FE)

    def next_request(self) -> float:
        return _SERVICE.sample(self._rng)


class _SlowSleepApp(Application):
    """Live stand-in: the payload *is* the service time, slept away."""

    name = "synthetic-sleep"

    def setup(self) -> None:
        pass

    def process(self, payload: float) -> float:
        time.sleep(payload)
        return payload

    def make_client(self, seed: int = 0) -> Client:
        return _SlowSleepClient(seed)


@dataclass(frozen=True)
class LiveObsArm:
    """One mode's streaming-observability outcome."""

    mode: str  # "live" | "sim"
    alert_fired: bool
    #: Fire instant minus fault onset (None if it never fired).
    fire_offset: Optional[float]
    alert_cleared: bool
    #: Top-ranked tail cause, as (component, server_id, phase).
    top_cause: Optional[Tuple[str, int, str]]
    #: Share of tail excess the top cause explains.
    top_share: float
    #: Send-anchored SLO attainment over the whole run.
    attainment: float
    #: Mean per-window p99 before the fault vs during it.
    p99_pre: float
    p99_fault: float
    n_windows: int
    n_exemplars: int
    #: Completion-side attainment from the collector, for cross-check
    #: (counts only completed requests; the streaming number also
    #: charges work that never completed).
    collector_attainment: float


@dataclass(frozen=True)
class LiveObsComparison:
    """Streaming SLO engine vs a one-replica slowdown, live and sim."""

    time_scale: float
    fault_start: float
    fault_end: float
    horizon: float
    offered_qps: float
    slo: SloConfig
    arms: Dict[str, LiveObsArm]

    def verdict(self) -> Tuple[bool, str]:
        """(reproduced?, sentence), judged on the simulator arm.

        Reproduced means: the burn-rate alert fired within one fast
        horizon of the fault onset, and the tail report's top cause is
        queue wait on the faulted replica in the fault phase.
        """
        mode = "sim" if "sim" in self.arms else "live"
        arm = self.arms[mode]
        fast_horizon = self.slo.fast_horizon
        fired_in_time = (
            arm.alert_fired
            and arm.fire_offset is not None
            and -1e-9 <= arm.fire_offset <= fast_horizon + 1e-9
        )
        blamed_queue = arm.top_cause is not None and arm.top_cause[:2] == (
            "queue", _FAULT_SERVER,
        ) and arm.top_cause[2] == "fault"
        ok = fired_in_time and blamed_queue
        if ok:
            sentence = (
                f"SLO burn caught and explained: alert fired "
                f"{arm.fire_offset:.2f}s after fault onset (fast horizon "
                f"{fast_horizon:g}s), attribution ranks queue wait on "
                f"server {_FAULT_SERVER} in the fault phase as the top "
                f"p99 cause ({arm.top_share:.0%} of tail excess); "
                f"window p99 rose from {arm.p99_pre * 1e3:.1f}ms to "
                f"{arm.p99_fault * 1e3:.1f}ms"
            )
        else:
            sentence = (
                "WARNING: expected burn-rate alert timing and queue-wait "
                "attribution did not reproduce "
                f"(fired={arm.alert_fired}, offset={arm.fire_offset}, "
                f"top={arm.top_cause})"
            )
        return ok, sentence


def _measure_arm(
    mode: str,
    result,
    *,
    fault_start: float,
    fault_end: float,
    slo: SloConfig,
) -> LiveObsArm:
    live = result.obs.live
    # Windows anchor at the run origin: virtual t=0 in sim, the wall
    # clock's run-start instant live. Re-anchoring phase boundaries
    # there maps both modes onto the same axis.
    origin = live.windows[0].start if live.windows else 0.0
    t_fault_start = origin + fault_start
    t_fault_end = origin + fault_end
    fires = live.alerts.fires()
    fire_offset = (
        fires[0].ts - t_fault_start if fires else None
    )
    phases = (
        ("pre", float("-inf"), t_fault_start),
        ("fault", t_fault_start, t_fault_end),
        ("post", t_fault_end, float("inf")),
    )
    report = result.obs.tail_report(pct=99.0, phases=phases)
    top = report.top()
    pre_p99 = [
        w.quantiles["p99"]
        for w in live.windows
        if w.end <= t_fault_start and "p99" in w.quantiles
    ]
    fault_p99 = [
        w.quantiles["p99"]
        for w in live.windows
        if t_fault_start <= w.start and w.end <= t_fault_end
        and "p99" in w.quantiles
    ]
    return LiveObsArm(
        mode=mode,
        alert_fired=bool(fires),
        fire_offset=fire_offset,
        alert_cleared=bool(live.alerts.clears()),
        top_cause=(
            (top.component, top.server_id, top.phase)
            if top is not None
            else None
        ),
        top_share=top.share if top is not None else 0.0,
        attainment=live.attainment,
        p99_pre=sum(pre_p99) / len(pre_p99) if pre_p99 else 0.0,
        p99_fault=(
            sum(fault_p99) / len(fault_p99) if fault_p99 else 0.0
        ),
        n_windows=len(live.windows),
        n_exemplars=len(live.exemplars),
        collector_attainment=result.stats.slo_attainment(slo.target),
    )


def run_fig_live(
    time_scale: float = 1.0,
    seed: int = 0,
    modes: Tuple[str, ...] = ("live", "sim"),
) -> LiveObsComparison:
    """Run the slow-replica burn through every requested mode.

    ``time_scale`` stretches the phase timeline *and* the SLO windows
    together (warm 4s, fault 4s, recovery 8s, window 0.5s at scale
    1.0) without touching service times, so ``--fast`` shrinks
    wall-clock while keeping the burn-rate arithmetic intact. The
    fault onset lands exactly on a window boundary — windows anchor at
    the run origin — so alert latency is measured in whole windows.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    scale = time_scale
    warm = 4.0 * scale
    fault_duration = 4.0 * scale
    post = 8.0 * scale
    fault_end = warm + fault_duration
    horizon = warm + fault_duration + post
    qps = _LOAD_FRACTION * _N_SERVERS / _SERVICE.mean

    # SLO: 90% of requests under 100 ms. Healthy operation sits at
    # ~1% bad (burn ~0.1x); the fault pushes the send-anchored bad
    # fraction to ~1/3 (the faulted replica's share of round-robin
    # traffic), a ~3.3x fast burn — comfortably over the 2.5x fast
    # threshold after two fault windows, never before the fault.
    slo = SloConfig(
        enabled=True,
        target=0.1,
        objective=0.9,
        window=0.5 * scale,
        fast_windows=2,
        slow_windows=6,
        fast_burn=2.5,
        slow_burn=1.0,
        clear_factor=0.5,
        exemplars_per_window=3,
    )
    observability = ObservabilityConfig(tracing=True, slo=slo)
    scenario = slow_replica(
        server_id=_FAULT_SERVER,
        start=warm,
        duration=fault_duration,
        pause=_SLOW_PAUSE,
    )
    sim_profile = AppProfile(name="synthetic-sleep", service=_SERVICE)
    measure = dict(fault_start=warm, fault_end=fault_end, slo=slo)

    arms: Dict[str, LiveObsArm] = {}
    if "sim" in modes:
        sim_config = SimConfig(
            configuration="integrated",
            n_threads=1,
            n_servers=_N_SERVERS,
            balancer="round_robin",
            seed=seed,
            load_profile=((horizon, qps),),
            scenario=scenario,
            observability=observability,
        )
        sim = simulate_load(sim_profile, sim_config)
        arms["sim"] = _measure_arm("sim", sim, **measure)
    if "live" in modes:
        live_config = HarnessConfig(
            configuration="integrated",
            n_threads=1,
            n_servers=_N_SERVERS,
            balancer="round_robin",
            seed=seed,
            load_profile=((horizon, qps),),
            scenario=scenario,
            observability=observability,
        )
        live = run_harness(_SlowSleepApp(), live_config)
        arms["live"] = _measure_arm("live", live, **measure)
    return LiveObsComparison(
        time_scale=scale,
        fault_start=warm,
        fault_end=fault_end,
        horizon=horizon,
        offered_qps=qps,
        slo=slo,
        arms=arms,
    )


def render_fig_live(result: LiveObsComparison) -> str:
    headers = [
        "mode", "alert", "fired+", "cleared", "top cause",
        "share", "p99 pre", "p99 fault", "attain", "coll",
    ]
    rows = []
    for mode in ("live", "sim"):
        arm = result.arms.get(mode)
        if arm is None:
            continue
        cause = (
            f"{arm.top_cause[0]}@s{arm.top_cause[1]}/{arm.top_cause[2]}"
            if arm.top_cause is not None
            else "-"
        )
        rows.append([
            mode,
            "fired" if arm.alert_fired else "quiet",
            f"{arm.fire_offset:.2f}s" if arm.fire_offset is not None else "-",
            "yes" if arm.alert_cleared else "no",
            cause,
            f"{arm.top_share:.0%}",
            f"{arm.p99_pre * 1e3:.1f}ms",
            f"{arm.p99_fault * 1e3:.1f}ms",
            f"{arm.attainment:.1%}",
            f"{arm.collector_attainment:.1%}",
        ])
    table = ascii_table(
        headers,
        rows,
        title=(
            f"Live SLO engine vs slow replica at "
            f"{result.offered_qps:.0f} qps over {_N_SERVERS} replicas "
            f"(fault {result.fault_start:g}s-{result.fault_end:g}s on "
            f"server {_FAULT_SERVER}; SLO "
            f"{result.slo.objective:.0%} < {result.slo.target * 1e3:.0f}ms, "
            f"window {result.slo.window:g}s)"
        ),
    )
    _, sentence = result.verdict()
    return f"{table}\n{sentence}"

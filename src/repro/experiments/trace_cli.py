"""``tailbench trace <app>`` — run one traced workload, print a dashboard.

Runs a short load test with tracing enabled and prints the summary
dashboard: event counts, the queueing-vs-service latency decomposition
per sojourn-percentile band, per-replica decompositions when
``--servers > 1``, and the final metrics snapshot. Optionally exports
the raw artifacts::

    tailbench trace masstree --duration 2 --jsonl trace.jsonl
    tailbench trace xapian --qps 2000 --servers 4 --balancer jsq
    tailbench trace silo --live --duration 1

By default the run executes in virtual time against the app's
calibrated profile (fast and deterministic); ``--live`` drives the
real harness instead, for any registered application. A previously
exported trace renders without re-running anything::

    tailbench trace --from-jsonl trace.jsonl
"""

from __future__ import annotations

import argparse
import sys

from ..core.config import HarnessConfig, ObservabilityConfig

__all__ = ["main", "run_trace"]


def run_trace(args: argparse.Namespace):
    """Execute the traced run; returns the result (``.obs`` populated)."""
    observability = ObservabilityConfig(
        tracing=True, trace_capacity=args.capacity
    )
    measure = max(int(args.qps * args.duration), 1)
    warmup = min(args.warmup, measure // 5)
    if args.live:
        from ..apps import create_app
        from ..core.harness import run_harness

        app = create_app(args.app)
        app.setup()
        config = HarnessConfig(
            qps=args.qps,
            n_threads=args.threads,
            configuration=args.config,
            warmup_requests=warmup,
            measure_requests=measure,
            seed=args.seed,
            n_servers=args.servers,
            balancer=args.balancer,
            observability=observability,
        )
        return run_harness(app, config)
    from ..sim.calibration import EXTENSION_PROFILES, PAPER_PROFILES
    from ..sim.latency_sim import SimConfig, simulate_app

    known = {**PAPER_PROFILES, **EXTENSION_PROFILES}
    if args.app not in known:
        raise SystemExit(
            f"no calibrated profile for {args.app!r} "
            f"(have: {sorted(known)}); use --live to drive "
            "the real application instead"
        )
    config = SimConfig(
        qps=args.qps,
        n_threads=args.threads,
        configuration=args.config,
        warmup_requests=warmup,
        measure_requests=measure,
        seed=args.seed,
        n_servers=args.servers,
        balancer=args.balancer,
        observability=observability,
    )
    return simulate_app(args.app, config)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="tailbench trace",
        description="Run one traced workload and print its dashboard.",
    )
    parser.add_argument(
        "app", nargs="?", default=None,
        help="application name (e.g. masstree); omit with --from-jsonl",
    )
    parser.add_argument(
        "--duration", type=float, default=2.0,
        help="run length in seconds (measured requests = qps * duration)",
    )
    parser.add_argument("--qps", type=float, default=1000.0)
    parser.add_argument("--threads", type=int, default=1)
    parser.add_argument("--servers", type=int, default=1)
    parser.add_argument("--balancer", default="round_robin")
    parser.add_argument(
        "--config", default="integrated",
        choices=("integrated", "loopback", "networked"),
        help="harness configuration (network model in sim mode)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--warmup", type=int, default=500,
        help="warmup requests to discard (capped at 20%% of measured)",
    )
    parser.add_argument(
        "--capacity", type=int, default=262_144,
        help="trace ring-buffer capacity in events",
    )
    parser.add_argument(
        "--from-jsonl", metavar="PATH", default=None,
        help="render the dashboard from a previously exported JSONL "
        "trace instead of running a workload",
    )
    parser.add_argument(
        "--live", action="store_true",
        help="drive the real application through the live harness "
        "instead of the virtual-time simulator",
    )
    parser.add_argument(
        "--jsonl", metavar="PATH", default=None,
        help="write the trace events as JSON Lines to PATH",
    )
    parser.add_argument(
        "--series", metavar="PATH", default=None,
        help="write the sampled metric time series as JSON Lines",
    )
    parser.add_argument(
        "--prom", metavar="PATH", default=None,
        help="write a Prometheus text-format metrics snapshot",
    )
    args = parser.parse_args(argv)

    if args.from_jsonl is not None:
        from ..obs.dashboard import render_dashboard
        from ..obs.exporters import load_trace_jsonl

        events = load_trace_jsonl(args.from_jsonl)
        print(render_dashboard(events, title=args.from_jsonl))
        return 0
    if args.app is None:
        parser.error("app is required unless --from-jsonl is given")

    result = run_trace(args)
    obs = result.obs
    if obs is None:  # pragma: no cover - tracing is forced on above
        raise SystemExit("run produced no observability artifacts")

    mode = "live" if args.live else "sim"
    print(obs.dashboard(title=f"{args.app} [{mode}] qps={args.qps:g} "
                        f"servers={args.servers}"))
    if args.jsonl:
        lines = obs.export_trace_jsonl(args.jsonl)
        print(f"\nwrote {lines} trace events to {args.jsonl}")
    if args.series:
        lines = obs.export_series_jsonl(args.series)
        print(f"wrote {lines} series points to {args.series}")
    if args.prom:
        obs.export_prometheus(args.prom)
        print(f"wrote metrics snapshot to {args.prom}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

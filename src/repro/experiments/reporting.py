"""Rendering helpers for experiment output (ASCII tables, CSV)."""

from __future__ import annotations

import csv
import io
from typing import List, Sequence

from ..stats import format_latency

__all__ = ["ascii_table", "to_csv", "format_latency"]


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render rows as a fixed-width ASCII table."""
    if not headers:
        raise ValueError("need at least one column")
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows))
        if str_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Serialize rows as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    writer.writerows(rows)
    return buf.getvalue()

"""Fig. 7: harness-configuration validation with 4 worker threads.

The multithreaded repeat of Fig. 5 for four representative apps:
configuration agreement persists for long-request applications, and
short-request specjbb again saturates earlier under the networked and
loopback configurations.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .fig5 import ConfigComparison, render_fig5, run_fig5

__all__ = ["run_fig7", "render_fig7", "FIG7_APPS"]

FIG7_APPS: Tuple[str, ...] = ("specjbb", "masstree", "xapian", "img-dnn")


def run_fig7(
    measure_requests: int = 10_000, seed: int = 0,
    apps: Tuple[str, ...] = FIG7_APPS,
) -> Dict[str, ConfigComparison]:
    """Fig. 5's sweep at 4 worker threads."""
    return run_fig5(
        measure_requests=measure_requests, seed=seed, apps=apps, n_threads=4
    )


def render_fig7(results: Dict[str, ConfigComparison]) -> str:
    return render_fig5(results).replace("Fig. 5", "Fig. 7 (4 threads)")

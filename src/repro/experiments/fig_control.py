"""Control-plane extension: closed-loop SLO defense under a load step.

Drives a 0.5×→1.5×-of-capacity load step through one replica's worth
of service capacity, twice per execution mode:

- **static** — the paper's original harness shape: one replica, an
  unbounded FIFO, no controller. During the overload phase the queue
  grows without bound, so p99 sojourn blows through any latency SLO
  and keeps climbing until the step ends.
- **controlled** — the same offered schedule with :mod:`repro.control`
  engaged: CoDel + AIMD admission sheds work the instant queueing
  delay exceeds target, while the autoscaler grows the replica set
  (up to ``max_servers``) to absorb the new rate; between the two,
  the p99 of *served* requests holds near the SLO at the cost of
  explicit, accounted shedding instead of unbounded queueing.

Both arms run in **both** execution modes — the live harness (sleep
application) and the discrete-event simulator with the identical
service-time distribution — extending the paper's live-vs-simulated
validation methodology (Fig. 5/6) to closed-loop control: the
simulator must reproduce not just open-loop tails but the *behavior
of the controllers themselves*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..control import (
    AdmissionConfig,
    AutoscalerConfig,
    ControlPlaneConfig,
)
from ..core import HarnessConfig, run_harness
from ..sim import SimConfig, simulate_load
from ..sim.calibration import AppProfile
from .fig_topology import _SERVICE, _SleepApp
from .reporting import ascii_table

__all__ = [
    "ControlArm",
    "ControlComparison",
    "run_fig_control",
    "render_fig_control",
]

#: The latency objective both arms are judged against.
DEFAULT_SLO_P99 = 0.05


@dataclass(frozen=True)
class ControlArm:
    """One (mode, config) cell of the comparison."""

    mode: str  # "live" | "sim"
    arm: str  # "static" | "controlled"
    p99: float
    served: int
    shed: int
    goodput_qps: float
    scale_ups: int
    active_servers: int

    def meets_slo(self, slo_p99: float) -> bool:
        return self.p99 <= slo_p99


@dataclass(frozen=True)
class ControlComparison:
    """Static vs controlled under the same load step, live and sim."""

    slo_p99: float
    step_qps: Tuple[Tuple[float, float], ...]
    #: (mode, arm) -> cell; modes "live"/"sim", arms "static"/"controlled".
    arms: Dict[Tuple[str, str], ControlArm]

    def verdict(self) -> Tuple[bool, str]:
        """(reproduced?, sentence). The claim is judged on the
        deterministic simulator; the live arms corroborate it but carry
        scheduler noise, so they are reported rather than gated on."""
        sim_static = self.arms[("sim", "static")]
        sim_controlled = self.arms[("sim", "controlled")]
        ok = not sim_static.meets_slo(self.slo_p99) and (
            sim_controlled.meets_slo(self.slo_p99)
        )
        if ok:
            sentence = (
                f"under the load step the static server violates the "
                f"{self.slo_p99 * 1e3:.0f}ms p99 SLO "
                f"({sim_static.p99 * 1e3:.1f}ms) while the controlled "
                f"server holds it ({sim_controlled.p99 * 1e3:.1f}ms) by "
                f"shedding {sim_controlled.shed} requests and scaling "
                f"to {sim_controlled.active_servers} replicas"
            )
        else:
            sentence = (
                "WARNING: expected SLO separation between static and "
                "controlled arms did not reproduce"
            )
        return ok, sentence


def _control_config(slo_p99: float) -> ControlPlaneConfig:
    return ControlPlaneConfig(
        enabled=True,
        tick_interval=0.02,
        admission=AdmissionConfig(
            target_p99=slo_p99,
            codel_target=slo_p99 / 2.5,
            codel_interval=0.05,
            initial_limit=32,
            min_limit=8,
            additive_increase=2,
            multiplicative_decrease=0.5,
        ),
        autoscaler=AutoscalerConfig(
            min_servers=1,
            max_servers=3,
            scale_up_depth=4.0,
            scale_down_util=0.2,
            hysteresis_ticks=2,
            cooldown=0.2,
        ),
    )


def run_fig_control(
    step_seconds: float = 2.0,
    seed: int = 0,
    slo_p99: float = DEFAULT_SLO_P99,
) -> ControlComparison:
    """Run the load step through all four (mode, arm) cells.

    ``step_seconds`` scales the whole profile (the overload phase lasts
    twice that), so ``--fast`` shrinks wall-clock without changing the
    shape of the step.
    """
    capacity = 1.0 / _SERVICE.mean  # one replica's service rate
    profile_steps = (
        (step_seconds, 0.5 * capacity),
        (2.0 * step_seconds, 1.5 * capacity),
    )
    sim_profile = AppProfile(name="synthetic-sleep", service=_SERVICE)
    control = _control_config(slo_p99)

    arms: Dict[Tuple[str, str], ControlArm] = {}
    for arm_name, plane in (("static", None), ("controlled", control)):
        live_config = HarnessConfig(
            configuration="integrated",
            n_threads=1,
            n_servers=1,
            seed=seed,
            load_profile=profile_steps,
        )
        sim_config = SimConfig(
            configuration="integrated",
            n_threads=1,
            n_servers=1,
            seed=seed,
            load_profile=profile_steps,
        )
        if plane is not None:
            live_config = live_config.replace(control=plane)
            sim_config = sim_config.replace(control=plane)
        live = run_harness(_SleepApp(), live_config)
        sim = simulate_load(sim_profile, sim_config)
        arms[("live", arm_name)] = ControlArm(
            mode="live",
            arm=arm_name,
            p99=live.sojourn.p99,
            served=live.stats.count,
            shed=live.outcomes.get("shed", 0),
            goodput_qps=live.goodput_qps,
            scale_ups=live.control_counts.get("scale_ups", 0),
            active_servers=live.control_counts.get("active_servers", 1),
        )
        arms[("sim", arm_name)] = ControlArm(
            mode="sim",
            arm=arm_name,
            p99=sim.sojourn.p99,
            served=sim.stats.count,
            shed=sim.outcomes.get("shed", 0),
            goodput_qps=sim.goodput_qps,
            scale_ups=sim.control_counts.get("scale_ups", 0),
            active_servers=sim.control_counts.get("active_servers", 1),
        )
    return ControlComparison(
        slo_p99=slo_p99, step_qps=profile_steps, arms=arms
    )


def render_fig_control(result: ControlComparison) -> str:
    headers = [
        "mode", "arm", "p99", "SLO", "served", "shed",
        "goodput", "scale_ups", "replicas",
    ]
    rows = []
    for mode in ("live", "sim"):
        for arm_name in ("static", "controlled"):
            cell = result.arms[(mode, arm_name)]
            rows.append([
                mode,
                arm_name,
                f"{cell.p99 * 1e3:.2f}ms",
                "met" if cell.meets_slo(result.slo_p99) else "VIOLATED",
                str(cell.served),
                str(cell.shed),
                f"{cell.goodput_qps:.0f}/s",
                str(cell.scale_ups),
                str(cell.active_servers),
            ])
    steps = " -> ".join(
        f"{qps:.0f}qps x {duration:g}s" for duration, qps in result.step_qps
    )
    table = ascii_table(
        headers,
        rows,
        title=(
            f"Control plane under a load step ({steps}; "
            f"SLO p99 <= {result.slo_p99 * 1e3:.0f}ms)"
        ),
    )
    _, sentence = result.verdict()
    return f"{table}\n{sentence}"

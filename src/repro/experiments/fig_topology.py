"""Topology extension: load-balancing policy vs tail latency.

Sweeps offered load against a 4-replica topology under round-robin and
join-shortest-queue routing, in *both* execution modes the codebase
provides:

- **live** — the real harness (integrated configuration), each replica
  a worker thread sleeping through lognormal service times;
- **sim** — the discrete-event simulator with the identical
  service-time distribution and topology.

The reproduced claim is twofold. First, depth-aware routing (JSQ)
dominates blind round-robin in the tail, and the gap widens with load
— load *imbalance* is a tail-latency mechanism of its own ["The Tail
at Scale"]. Second, the live harness and the simulator agree on the
p99 *ordering* of the two policies at every swept load, which is the
topology-level extension of the paper's live-vs-simulated validation
methodology (Fig. 5/6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Tuple

from ..apps.base import Application, Client
from ..core import HarnessConfig, run_harness
from ..sim import SimConfig, simulate_load
from ..sim.calibration import AppProfile
from ..stats import LatencySummary, LogNormal
from .reporting import ascii_table

__all__ = [
    "TopologyComparison",
    "run_fig_topology",
    "render_fig_topology",
    "TOPOLOGY_POLICIES",
]

TOPOLOGY_POLICIES: Tuple[str, ...] = ("round_robin", "jsq")
DEFAULT_TOPOLOGY_LOADS: Tuple[float, ...] = (0.5, 0.65, 0.8, 0.9)

#: Synthetic service-time distribution used by both modes: 1 ms mean
#: with a moderate lognormal tail, long enough that sleep() jitter is
#: second-order in the live runs.
_SERVICE = LogNormal(mean=1e-3, sigma=0.5)


class _SleepClient(Client):
    """Draws per-request service times from the shared distribution."""

    def __init__(self, seed: int) -> None:
        import random

        self._rng = random.Random(seed ^ 0x70B0)

    def next_request(self) -> float:
        return _SERVICE.sample(self._rng)


class _SleepApp(Application):
    """Live stand-in: the payload *is* the service time, slept away."""

    name = "synthetic-sleep"

    def setup(self) -> None:
        pass

    def process(self, payload: float) -> float:
        time.sleep(payload)
        return payload

    def make_client(self, seed: int = 0) -> Client:
        return _SleepClient(seed)


@dataclass(frozen=True)
class TopologyComparison:
    """p95/p99 sojourn per policy per load point, live and simulated."""

    n_servers: int
    load_points: Tuple[float, ...]
    qps_points: Tuple[float, ...]
    #: mode -> policy -> one LatencySummary per qps point.
    live: Dict[str, Tuple[LatencySummary, ...]]
    sim: Dict[str, Tuple[LatencySummary, ...]]

    def ordering_agreement(self, noise_tolerance: float = 0.15) -> bool:
        """Do live and sim rank the policies identically at every load?

        The simulator's ordering is exact; live tails carry scheduler
        noise, so a live difference within ``noise_tolerance`` of the
        larger p99 is treated as a tie (consistent with either order).
        """
        for i in range(len(self.qps_points)):
            sim_gap = self.sim["round_robin"][i].p99 - self.sim["jsq"][i].p99
            live_rr = self.live["round_robin"][i].p99
            live_jsq = self.live["jsq"][i].p99
            live_gap = live_rr - live_jsq
            if abs(live_gap) <= noise_tolerance * max(live_rr, live_jsq):
                continue
            if (sim_gap >= 0) != (live_gap >= 0):
                return False
        return True


def run_fig_topology(
    measure_requests: int = 5000,
    seed: int = 0,
    n_servers: int = 4,
    load_points: Tuple[float, ...] = DEFAULT_TOPOLOGY_LOADS,
    policies: Tuple[str, ...] = TOPOLOGY_POLICIES,
) -> TopologyComparison:
    """Sweep load x policy through the live harness and the simulator."""
    profile = AppProfile(name="synthetic-sleep", service=_SERVICE)
    capacity = n_servers / _SERVICE.mean
    qps_points = tuple(load * capacity for load in load_points)
    warmup = max(100, measure_requests // 10)

    live: Dict[str, Tuple[LatencySummary, ...]] = {}
    sim: Dict[str, Tuple[LatencySummary, ...]] = {}
    for policy in policies:
        live_summaries = []
        sim_summaries = []
        for qps in qps_points:
            live_result = run_harness(
                _SleepApp(),
                HarnessConfig(
                    configuration="integrated",
                    qps=qps,
                    n_threads=1,
                    n_servers=n_servers,
                    balancer=policy,
                    warmup_requests=warmup,
                    measure_requests=measure_requests,
                    seed=seed,
                ),
            )
            live_summaries.append(live_result.sojourn)
            sim_result = simulate_load(
                profile,
                SimConfig(
                    qps=qps,
                    n_threads=1,
                    configuration="integrated",
                    n_servers=n_servers,
                    balancer=policy,
                    warmup_requests=warmup,
                    measure_requests=measure_requests,
                    seed=seed,
                ),
            )
            sim_summaries.append(sim_result.sojourn)
        live[policy] = tuple(live_summaries)
        sim[policy] = tuple(sim_summaries)
    return TopologyComparison(
        n_servers=n_servers,
        load_points=tuple(load_points),
        qps_points=qps_points,
        live=live,
        sim=sim,
    )


def render_fig_topology(result: TopologyComparison) -> str:
    headers = ["load", "qps"]
    for mode in ("live", "sim"):
        for policy in result.live:
            headers += [f"{mode} {policy} p95", f"{mode} {policy} p99"]
    rows = []
    for i, load in enumerate(result.load_points):
        row = [f"{load:.0%}", f"{result.qps_points[i]:.0f}"]
        for mode_data in (result.live, result.sim):
            for summaries in mode_data.values():
                row += [
                    f"{summaries[i].p95 * 1e3:.2f}ms",
                    f"{summaries[i].p99 * 1e3:.2f}ms",
                ]
        rows.append(row)
    table = ascii_table(
        headers,
        rows,
        title=(
            f"Topology: {result.n_servers} replicas, round-robin vs JSQ "
            "(sojourn, integrated configuration)"
        ),
    )
    verdict = (
        "live and simulated runs agree on the p99 policy ordering at "
        "every swept load"
        if result.ordering_agreement()
        else "WARNING: live and simulated p99 policy orderings disagree"
    )
    return f"{table}\n{verdict}"

"""Fig. 8: the Sec. VII case study — why do moses and silo scale badly?

Compares, for 1 and 4 threads, the 95th percentile latency of:

- the pure M/G/n queueing model (what latency would be if adding
  threads had no cost), and
- the simulated system with an *idealized memory system* (memory
  contention removed; synchronization overheads remain).

All latencies are normalized to the 1-thread low-load value, as in the
paper. The reproduced conclusion: moses's ideal-memory curves agree
with M/G/n (its real problem is memory contention), while silo's
4-thread ideal-memory curve stays degraded (synchronization-bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..queueing import mgk_percentiles
from ..sim import SimConfig, paper_profile, simulate_app
from .fig3 import DEFAULT_LOAD_POINTS
from .reporting import ascii_table

__all__ = ["CaseStudyResult", "run_fig8", "render_fig8", "FIG8_APPS"]

FIG8_APPS: Tuple[str, ...] = ("moses", "silo")
THREADS: Tuple[int, ...] = (1, 4)


@dataclass(frozen=True)
class CaseStudyResult:
    """Normalized p95 curves for one application."""

    name: str
    load_points: Tuple[float, ...]
    #: series label -> normalized p95 per load point. Labels:
    #: "M/G/1", "M/G/4", "ideal-mem 1T", "ideal-mem 4T".
    series: Dict[str, Tuple[float, ...]]

    def ideal_tracks_mgn(self, k: int, tolerance: float = 0.35) -> bool:
        """Does the ideal-memory system match the M/G/k model?

        True means thread-scaling losses were *memory* contention
        (eliminated by ideal memory); False means something else —
        synchronization — still degrades the ideal-memory system.
        Compared at moderate loads (excluding near-saturation points
        where both series diverge steeply).
        """
        model = self.series[f"M/G/{k}"]
        ideal = self.series[f"ideal-mem {k}T"]
        checked = 0
        for i, load in enumerate(self.load_points):
            if load > 0.75:
                continue
            checked += 1
            if abs(ideal[i] - model[i]) > tolerance * max(model[i], 1e-12):
                return False
        return checked > 0


def run_fig8(
    measure_requests: int = 20_000,
    seed: int = 0,
    apps: Tuple[str, ...] = FIG8_APPS,
    load_points: Tuple[float, ...] = DEFAULT_LOAD_POINTS,
) -> Dict[str, CaseStudyResult]:
    results = {}
    for name in apps:
        profile = paper_profile(name)
        base_service = profile.service
        # Normalization: 1-thread, low-load p95 of the M/G/1 model.
        low = mgk_percentiles(
            base_service,
            qps=0.05 / base_service.mean,
            k=1,
            measure_requests=measure_requests,
            seed=seed,
        )
        norm = low.sojourn.p95
        series: Dict[str, Tuple[float, ...]] = {}
        for k in THREADS:
            # Pure M/G/k model: service times unchanged by threads.
            mgk_vals = []
            for load in load_points:
                qps = load * k / base_service.mean
                result = mgk_percentiles(
                    base_service, qps=qps, k=k,
                    measure_requests=measure_requests, seed=seed,
                )
                mgk_vals.append(result.sojourn.p95 / norm)
            series[f"M/G/{k}"] = tuple(mgk_vals)

            # Simulated system with idealized memory: sync overheads
            # stay, memory contention removed.
            ideal_vals = []
            sync_factor = profile.contention.factor(k, ideal_memory=True)
            sat = k / (base_service.mean * sync_factor)
            for load in load_points:
                result = simulate_app(
                    name,
                    SimConfig(
                        qps=load * sat,
                        n_threads=k,
                        configuration="integrated",
                        measure_requests=measure_requests,
                        warmup_requests=max(100, measure_requests // 10),
                        seed=seed,
                        ideal_memory=True,
                    ),
                )
                ideal_vals.append(result.sojourn.p95 / norm)
            series[f"ideal-mem {k}T"] = tuple(ideal_vals)
        results[name] = CaseStudyResult(name, tuple(load_points), series)
    return results


def render_fig8(results: Dict[str, CaseStudyResult]) -> str:
    out = []
    for name, result in results.items():
        headers = ["load"] + list(result.series)
        rows = []
        for i, load in enumerate(result.load_points):
            rows.append(
                [f"{load:.0%}"]
                + [f"{series[i]:.2f}x" for series in result.series.values()]
            )
        out.append(
            ascii_table(
                headers, rows,
                title=f"Fig. 8: {name} (p95 normalized to 1-thread low load)",
            )
        )
        verdict = (
            "memory-bound (ideal memory restores M/G/4)"
            if result.ideal_tracks_mgn(4)
            else "synchronization-bound (ideal memory does not help)"
        )
        out.append(f"{name}: {verdict}")
    return "\n\n".join(out)

"""Fig. 4: 95th percentile latency vs. per-thread load, 1/2/4 threads.

With more threads, requests are less likely to find all workers busy,
so tails grow more slowly with load. masstree and xapian scale as
expected; silo's per-thread saturation drops with thread count
(synchronization), and moses matches at 2 threads but collapses at 4
(memory contention) — the anomalies the Sec. VII case study explains.

All thread counts are swept over the SAME absolute QPS/thread grid
(the paper's x-axis), so per-thread saturation shifts are directly
comparable across curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..sim import network_model_for, paper_profile
from .fig3 import DEFAULT_LOAD_POINTS, LatencyCurve, sweep_app
from .reporting import ascii_table, format_latency

__all__ = ["ThreadScalingResult", "run_fig4", "render_fig4", "FIG4_APPS"]

FIG4_APPS: Tuple[str, ...] = ("silo", "masstree", "xapian", "moses")
THREAD_COUNTS: Tuple[int, ...] = (1, 2, 4)


@dataclass(frozen=True)
class ThreadScalingResult:
    """p95-vs-(QPS/thread) curves for one app at several thread counts.

    Every curve's ``qps`` axis is QPS per thread, on a common grid.
    """

    name: str
    curves: Dict[int, LatencyCurve]

    def per_thread_saturation(self, n_threads: int) -> float:
        """Measured per-thread service capacity (the asymptote).

        Derived from utilization (capacity = qps / utilization), so it
        isolates the thread-count-induced service dilation from M/G/k
        pooling effects on queueing.
        """
        # The curve's qps axis is already per-thread, so qps/util at
        # any probe point is directly the per-thread capacity.
        return self.curves[n_threads].measured_capacity()


def run_fig4(
    measure_requests: int = 10_000,
    seed: int = 0,
    apps: Tuple[str, ...] = FIG4_APPS,
    thread_counts: Tuple[int, ...] = THREAD_COUNTS,
) -> Dict[str, ThreadScalingResult]:
    occupancy = network_model_for("networked").server_occupancy
    results = {}
    for name in apps:
        profile = paper_profile(name)
        # Common per-thread QPS grid anchored at the 1-thread capacity.
        base_capacity = 1.0 / (profile.service.mean + occupancy)
        grid = tuple(load * base_capacity for load in DEFAULT_LOAD_POINTS)
        curves = {}
        for k in thread_counts:
            curve = sweep_app(
                name,
                configuration="networked",
                n_threads=k,
                measure_requests=measure_requests,
                seed=seed,
                absolute_qps_points=tuple(q * k for q in grid),
            )
            curves[k] = LatencyCurve(
                name,
                grid,  # report per-thread QPS
                curve.mean,
                curve.p95,
                curve.p99,
                curve.utilization,
            )
        results[name] = ThreadScalingResult(name, curves)
    return results


def render_fig4(results: Dict[str, ThreadScalingResult]) -> str:
    out = []
    for name, result in results.items():
        thread_counts = sorted(result.curves)
        headers = ["QPS/thread"] + [f"{k} thr p95" for k in thread_counts]
        grid = result.curves[thread_counts[0]].qps
        rows = []
        for i, qps in enumerate(grid):
            rows.append(
                [f"{qps:.1f}"]
                + [
                    format_latency(result.curves[k].p95[i])
                    for k in thread_counts
                ]
            )
        out.append(ascii_table(headers, rows, title=f"Fig. 4: {name}"))
        sats = {
            k: result.per_thread_saturation(k) for k in thread_counts
        }
        out.append(
            "per-thread saturation onset: "
            + ", ".join(f"{k} thr: {v:.0f} qps" for k, v in sats.items())
        )
    return "\n\n".join(out)

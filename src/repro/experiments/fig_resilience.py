"""Resilience extension: reproducing (and curing) metastable failure.

Plays the ``retry_storm`` chaos scenario — one of three replicas
serving every request ~75x slower than normal for a timed window —
against two client/serving stacks:

- **undefended** — deadlines + aggressive retries, nothing else. Every
  attempt routed to the degraded replica times out and is retried onto
  the survivors; the amplified attempt rate exceeds the survivors'
  aggregate capacity, their queues blow past the deadline, *their*
  requests start timing out and retrying too, and the system enters
  the classic metastable state [Bronson et al., HotOS'21; Huang et
  al., OSDI'22]: goodput stays collapsed long after the fault clears,
  because the retry amplification — not the original fault — is now
  the overload.
- **defended** — the identical retry policy plus :mod:`repro.health`:
  outlier ejection routes around the degraded replica within a few
  hundred milliseconds, per-replica circuit breakers stop dead-end
  attempts, and the global retry budget caps amplification at
  ~1.1x. The fault window costs a dip; recovery follows within
  seconds of the window closing.

Both arms run in both execution modes — the live harness (sleep
application) and the discrete-event simulator with the identical
service-time distribution and the identical scenario — extending the
paper's live-vs-simulated validation methodology (Fig. 5/6) to
failure dynamics: the simulator reproduces not just healthy tails but
the *onset and cure of a metastable collapse*. The verdict is judged
on the deterministic simulator; the live arms corroborate it but
carry scheduler noise.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..apps.base import Application, Client
from ..core import HarnessConfig, run_harness
from ..core.resilience import ResilienceConfig
from ..faults import retry_storm
from ..health import HealthConfig
from ..sim import SimConfig, simulate_load
from ..sim.calibration import AppProfile
from ..stats import LogNormal
from .reporting import ascii_table

__all__ = [
    "ResilienceArm",
    "ResilienceComparison",
    "run_fig_resilience",
    "render_fig_resilience",
]

#: Service-time distribution shared by the live sleep app and the
#: simulator: 10 ms mean, moderate tail — long enough that live
#: sleep()/scheduler overhead (tens of microseconds per request) stays
#: second-order even at the storm's amplified attempt rates.
_SERVICE = LogNormal(mean=10e-3, sigma=0.3)

#: Replicas behind the (deliberately blind) round-robin balancer.
_N_SERVERS = 3

#: Offered load as a fraction of aggregate healthy capacity. The
#: separating regime: with one replica out, the survivors sit just
#: *below* capacity under budget-capped amplification (defended arm —
#: stable, if slow, through the fault) but just *above* the timeout
#: threshold once unbounded retries pile on (undefended arm — waits
#: cross the attempt timeout, every timeout spawns retries, and the
#: amplification spiral takes the system supercritical).
_LOAD_FRACTION = 0.58

#: The degraded replica's per-request stall during the fault window:
#: ~75x the mean service time, far beyond the attempt timeout, so the
#: undefended client times out on every attempt it routes there.
_STORM_PAUSE = 0.3


class _StormSleepClient(Client):
    """Draws per-request service times from this experiment's distribution."""

    def __init__(self, seed: int) -> None:
        import random

        self._rng = random.Random(seed ^ 0x570B)

    def next_request(self) -> float:
        return _SERVICE.sample(self._rng)


class _StormSleepApp(Application):
    """Live stand-in: the payload *is* the service time, slept away."""

    name = "synthetic-sleep"

    def setup(self) -> None:
        pass

    def process(self, payload: float) -> float:
        time.sleep(payload)
        return payload

    def make_client(self, seed: int = 0) -> Client:
        return _StormSleepClient(seed)


@dataclass(frozen=True)
class ResilienceArm:
    """One (mode, arm) cell of the comparison."""

    mode: str  # "live" | "sim"
    arm: str  # "undefended" | "defended"
    pre_goodput: float
    fault_goodput: float
    late_goodput: float
    #: Seconds after the fault cleared until goodput reached >= 90% of
    #: pre-fault *and stayed there on average for the rest of the run*.
    #: The second clause matters: the instant the fault lifts, the
    #: degraded replica drains its backlog in a brief goodput burst
    #: even when the retry spiral then re-collapses the system — a
    #: burst is not recovery. inf = never recovered within the run.
    recovered_after: float
    amplification: float
    timed_out: int
    ejections: int
    readmissions: int
    breaker_opens: int
    retries_denied: int

    def recovered_within(self, seconds: float) -> bool:
        return self.recovered_after <= seconds


@dataclass(frozen=True)
class ResilienceComparison:
    """Undefended vs defended under the same retry storm."""

    time_scale: float
    warm: float
    fault_start: float
    fault_end: float
    horizon: float
    offered_qps: float
    #: (mode, arm) -> cell; arms "undefended"/"defended".
    arms: Dict[Tuple[str, str], ResilienceArm]

    def verdict(self) -> Tuple[bool, str]:
        """(reproduced?, sentence), judged on the simulator arms.

        Reproduced means: the undefended arm's goodput is still below
        half its pre-fault level ten (scaled) seconds after the fault
        cleared — the collapse outlived its cause — while the defended
        arm was back to >= 90% of pre-fault within five (scaled)
        seconds.
        """
        scale = self.time_scale
        # Judge on the deterministic simulator when it ran; a live-only
        # invocation is judged on the (noisier) live arms instead.
        mode = "sim" if ("sim", "undefended") in self.arms else "live"
        undefended = self.arms[(mode, "undefended")]
        defended = self.arms[(mode, "defended")]
        collapse_persists = (
            undefended.late_goodput < 0.5 * undefended.pre_goodput
            and not undefended.recovered_within(10.0 * scale)
        )
        defense_recovers = defended.recovered_within(5.0 * scale)
        ok = collapse_persists and defense_recovers
        if ok:
            sentence = (
                f"metastable failure reproduced: {10 * scale:g}s after "
                f"the fault cleared the undefended arm still serves "
                f"{undefended.late_goodput:.0f}/s of a pre-fault "
                f"{undefended.pre_goodput:.0f}/s "
                f"(amplification {undefended.amplification:.2f}x), while "
                f"the defended arm recovered to >=90% within "
                f"{defended.recovered_after:g}s "
                f"({defended.ejections} ejection(s), "
                f"{defended.retries_denied} retries denied by budget)"
            )
        else:
            sentence = (
                "WARNING: expected metastable-collapse separation "
                "between undefended and defended arms did not reproduce"
            )
        return ok, sentence


def _goodput_rate(
    times: Sequence[float], start: float, end: float
) -> float:
    """Successful completions per second inside ``[start, end)``."""
    if end <= start:
        return 0.0
    n = sum(1 for t in times if start <= t < end)
    return n / (end - start)


def _success_times(result) -> List[float]:
    """Success completion instants, relative to the first arrival.

    The resilient collector only ``add()``s deadline-met successes, so
    the retained records *are* the goodput stream; anchoring at the
    earliest generation instant maps live wall-clock stamps and sim
    virtual-time stamps onto the same axis.
    """
    records = result.stats.records
    if not records:
        return []
    t0 = min(r.generated_at for r in records)
    return sorted(
        r.response_received_at - t0
        for r in records
        if r.response_received_at is not None
    )


def _measure_arm(
    mode: str,
    arm: str,
    result,
    *,
    warm: float,
    fault_end: float,
    horizon: float,
    scale: float,
) -> ResilienceArm:
    times = _success_times(result)
    pre = _goodput_rate(times, 0.5 * warm, warm)
    fault_rate = _goodput_rate(times, warm, fault_end)
    late = _goodput_rate(
        times, fault_end + 9.0 * scale, fault_end + 10.0 * scale
    )
    buckets = []
    k = 0
    while fault_end + (k + 1) * scale <= horizon + 1e-9:
        buckets.append(_goodput_rate(
            times, fault_end + k * scale, fault_end + (k + 1) * scale
        ))
        k += 1
    recovered_after = math.inf
    if pre > 0:
        for k in range(len(buckets)):
            tail = buckets[k:]
            sustained = sum(tail) / len(tail) >= 0.9 * pre
            if buckets[k] >= 0.9 * pre and sustained:
                recovered_after = (k + 1) * scale
                break
    health = result.health_counts
    return ResilienceArm(
        mode=mode,
        arm=arm,
        pre_goodput=pre,
        fault_goodput=fault_rate,
        late_goodput=late,
        recovered_after=recovered_after,
        amplification=result.retry_amplification,
        timed_out=result.outcomes.get("timed_out", 0),
        ejections=health.get("ejections", 0),
        readmissions=health.get("readmissions", 0),
        breaker_opens=health.get("breaker_opens", 0),
        retries_denied=health.get("retries_denied", 0),
    )


def run_fig_resilience(
    time_scale: float = 1.0,
    seed: int = 0,
    modes: Tuple[str, ...] = ("live", "sim"),
) -> ResilienceComparison:
    """Run the retry storm through every requested (mode, arm) cell.

    ``time_scale`` stretches the phase timeline (warm 5s, fault 10s,
    recovery 15s at scale 1.0) without touching service times or
    client timeouts, so ``--fast`` shrinks wall-clock while keeping
    the queueing dynamics intact.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    scale = time_scale
    warm = 5.0 * scale
    fault_duration = 10.0 * scale
    post = 15.0 * scale
    fault_end = warm + fault_duration
    horizon = warm + fault_duration + post
    qps = _LOAD_FRACTION * _N_SERVERS / _SERVICE.mean

    scenario = retry_storm(
        server_id=_N_SERVERS - 1,
        start=warm,
        duration=fault_duration,
        pause=_STORM_PAUSE,
    )
    # attempt_timeout is the spiral's trigger: five mean service times,
    # tight enough that survivor queues cross it once the storm's
    # redirected load lands on them, loose enough that healthy replicas
    # at _LOAD_FRACTION almost never do.
    resilience = ResilienceConfig(
        deadline=0.5,
        attempt_timeout=0.05,
        max_retries=3,
        backoff_base=0.005,
        backoff_cap=0.02,
    )
    defense = HealthConfig(enabled=True, probe_interval=50)
    sim_profile = AppProfile(name="synthetic-sleep", service=_SERVICE)

    arms: Dict[Tuple[str, str], ResilienceArm] = {}
    for arm_name, health in (("undefended", None), ("defended", defense)):
        measure = dict(
            warm=warm, fault_end=fault_end, horizon=horizon, scale=scale
        )
        if "sim" in modes:
            sim_config = SimConfig(
                configuration="integrated",
                n_threads=1,
                n_servers=_N_SERVERS,
                balancer="round_robin",
                seed=seed,
                load_profile=((horizon, qps),),
                resilience=resilience,
                scenario=scenario,
            )
            if health is not None:
                sim_config = sim_config.replace(health=health)
            sim = simulate_load(sim_profile, sim_config)
            arms[("sim", arm_name)] = _measure_arm(
                "sim", arm_name, sim, **measure
            )
        if "live" in modes:
            live_config = HarnessConfig(
                configuration="integrated",
                n_threads=1,
                n_servers=_N_SERVERS,
                balancer="round_robin",
                seed=seed,
                load_profile=((horizon, qps),),
                resilience=resilience,
                scenario=scenario,
            )
            if health is not None:
                live_config = live_config.replace(health=health)
            live = run_harness(_StormSleepApp(), live_config)
            arms[("live", arm_name)] = _measure_arm(
                "live", arm_name, live, **measure
            )
    return ResilienceComparison(
        time_scale=scale,
        warm=warm,
        fault_start=warm,
        fault_end=fault_end,
        horizon=horizon,
        offered_qps=qps,
        arms=arms,
    )


def render_fig_resilience(result: ResilienceComparison) -> str:
    headers = [
        "mode", "arm", "pre", "fault", "late", "recovery",
        "ampl", "timeouts", "ejects", "readmits", "denied",
    ]
    rows = []
    for mode in ("live", "sim"):
        for arm_name in ("undefended", "defended"):
            cell = result.arms.get((mode, arm_name))
            if cell is None:
                continue
            recovery = (
                f"{cell.recovered_after:g}s"
                if math.isfinite(cell.recovered_after)
                else "never"
            )
            rows.append([
                mode,
                arm_name,
                f"{cell.pre_goodput:.0f}/s",
                f"{cell.fault_goodput:.0f}/s",
                f"{cell.late_goodput:.0f}/s",
                recovery,
                f"{cell.amplification:.2f}x",
                str(cell.timed_out),
                str(cell.ejections),
                str(cell.readmissions),
                str(cell.retries_denied),
            ])
    table = ascii_table(
        headers,
        rows,
        title=(
            f"Retry storm at {result.offered_qps:.0f} qps over "
            f"{_N_SERVERS} replicas (fault {result.fault_start:g}s-"
            f"{result.fault_end:g}s; 'late' = goodput "
            f"{9 * result.time_scale:g}-{10 * result.time_scale:g}s "
            f"after it cleared)"
        ),
    )
    _, sentence = result.verdict()
    return f"{table}\n{sentence}"

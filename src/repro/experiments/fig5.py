"""Fig. 5: harness-configuration validation (single-threaded).

For each application, compares 95th percentile latency across the
three harness configurations on the "real system" plus the simulated
system under the integrated configuration. The paper's findings to
reproduce:

- integrated ~= loopback ~= networked for the six long-request apps;
- networked/loopback saturate 39% (silo) and 23% (specjbb) below
  integrated, because the network stack occupies a meaningful slice of
  worker time relative to sub-100us requests;
- simulation matches the real system up to a constant per-app
  performance error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..sim import network_model_for, paper_profile
from .fig3 import DEFAULT_LOAD_POINTS, LatencyCurve, sweep_app
from .reporting import ascii_table, format_latency
from .table1 import APP_ORDER

__all__ = ["ConfigComparison", "run_fig5", "render_fig5", "SETUPS"]

#: The four series of Fig. 5: (label, configuration, simulated_system).
SETUPS: Tuple[Tuple[str, str, bool], ...] = (
    ("networked", "networked", False),
    ("loopback", "loopback", False),
    ("integrated", "integrated", False),
    ("simulation", "integrated", True),
)


@dataclass(frozen=True)
class ConfigComparison:
    """Per-setup latency curves for one application."""

    name: str
    curves: Dict[str, LatencyCurve]

    def saturation_qps(self, setup: str) -> float:
        """Analytic saturation rate of one setup."""
        profile = paper_profile(self.name)
        configuration = dict((s[0], s[1]) for s in SETUPS)[setup]
        simulated = dict((s[0], s[2]) for s in SETUPS)[setup]
        model = profile.service_model(
            simulated_system=simulated,
            added_occupancy=network_model_for(configuration).server_occupancy,
        )
        return model.saturation_qps()

    def saturation_drop(self, setup: str, baseline: str = "integrated") -> float:
        """Fractional saturation loss of ``setup`` vs. ``baseline``.

        The green/red percentage annotations of Fig. 5: e.g.
        ``saturation_drop("networked")`` ~= 0.39 for silo.
        """
        base = self.saturation_qps(baseline)
        other = self.saturation_qps(setup)
        return (base - other) / base


def run_fig5(
    measure_requests: int = 10_000,
    seed: int = 0,
    apps: Tuple[str, ...] = APP_ORDER,
    n_threads: int = 1,
) -> Dict[str, ConfigComparison]:
    results = {}
    for name in apps:
        curves = {}
        for label, configuration, simulated in SETUPS:
            curves[label] = sweep_app(
                name,
                configuration=configuration,
                n_threads=n_threads,
                measure_requests=measure_requests,
                seed=seed,
                simulated_system=simulated,
            )
        results[name] = ConfigComparison(name, curves)
    return results


def render_fig5(results: Dict[str, ConfigComparison]) -> str:
    out = []
    for name, comparison in results.items():
        headers = ["load pt"] + [s[0] for s in SETUPS]
        n_points = len(next(iter(comparison.curves.values())).qps)
        rows = []
        for i in range(n_points):
            load = DEFAULT_LOAD_POINTS[i] if i < len(DEFAULT_LOAD_POINTS) else i
            row = [f"{load:.0%}"]
            for label, _, _ in SETUPS:
                curve = comparison.curves[label]
                row.append(
                    f"{curve.qps[i]:8.0f}qps {format_latency(curve.p95[i])}"
                )
            rows.append(row)
        out.append(ascii_table(rows=rows, headers=headers,
                               title=f"Fig. 5: {name} (p95 per setup)"))
        out.append(
            f"saturation drop vs integrated: "
            f"networked {comparison.saturation_drop('networked'):.0%}, "
            f"loopback {comparison.saturation_drop('loopback'):.0%}, "
            f"simulation {comparison.saturation_drop('simulation'):+.0%}"
        )
    return "\n\n".join(out)

"""Experiment drivers: one module per paper table/figure.

Each ``figN.py`` has a ``run_figN(...)`` returning structured data and
a ``render_figN(data)`` producing the ASCII report; ``cli.main`` wires
them to the ``tailbench`` command.
"""

from .cli import EXPERIMENTS, main, run_experiment
from .fig2 import run_fig2, run_fig2_live
from .fig3 import run_fig3, sweep_app
from .fig4 import run_fig4
from .fig5 import run_fig5
from .fig6 import run_fig6
from .fig7 import run_fig7
from .fig8 import run_fig8
from .table1 import PAPER_TABLE1, run_table1

__all__ = [
    "EXPERIMENTS",
    "main",
    "run_experiment",
    "run_fig2",
    "run_fig2_live",
    "run_fig3",
    "sweep_app",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "PAPER_TABLE1",
    "run_table1",
]

"""Caching extension: Zipf closed-form hit rates and the cold-cache spike.

Three claims about the caching tier (:mod:`repro.cache`), each checked
by its own verdict:

1. **Closed-form hit rate.** Under Zipfian popularity with exponent
   theta, a frequency-optimal cache of capacity C holds exactly the C
   most popular keys, so its steady-state hit rate is the sum of the
   top-C popularity mass (:func:`repro.cache.predicted_hit_rate`).
   Sweeping C in {1%, 5%, 20%} of the keyspace, the measured LFU hit
   rate must land within 5% *absolute* of that prediction — in the
   simulator (synthetic Zipf key stream) and, when the live mode runs,
   in the real harness serving vsearch (whose client draws query ids
   from the same Zipfian family). The LRU arm is reported alongside:
   it sits *below* the closed form by construction, because LRU pays
   recency churn the frequency-optimal bound ignores — the gap is the
   policy cost made visible, not a measurement error.

2. **Cold-cache restart spike.** A cached system sized so that the
   *miss* load exceeds capacity is metastable: wiping the cache
   mid-run (``CacheConfig.clear_at`` — a restart that loses cache
   state) sends every request back to full service, the replica
   overloads, and queues push p99 far above the warm arm until the
   popular keys are re-admitted. The verdict: windowed p99 in the
   post-clear recovery window is >= 2x the warm arm's in the same
   window. This is Dean & Barroso's cold-cache failure mode in
   miniature, and the reason caches in front of latency-critical
   tiers are capacity liabilities as much as latency assets.

3. **Bit-identity off.** A run with the cache disabled must be
   bit-identical (fingerprinted samples, outcomes, routing) to a run
   whose config never mentions the cache, per seed — the repo's
   discipline that an off subsystem costs nothing and changes nothing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..cache import predicted_hit_rate
from ..core import CacheConfig, HarnessConfig, run_harness
from ..sim import SimConfig, simulate_load
from ..sim.calibration import paper_profile
from ..stats import quantile
from .reporting import ascii_table

__all__ = [
    "HitRatePoint",
    "ColdRestart",
    "CacheComparison",
    "run_fig_cache",
    "render_fig_cache",
    "DEFAULT_CAPACITY_FRACTIONS",
]

#: Cache capacity as a fraction of the keyspace — the sweep of claim 1.
DEFAULT_CAPACITY_FRACTIONS: Tuple[float, ...] = (0.01, 0.05, 0.20)

#: Synthetic key stream for the sim arms (matches CacheConfig defaults
#: for theta; keyspace sized so 1% capacity is still a real cache).
_SIM_KEYSPACE = 512
_THETA = 0.9

#: Live arm: vsearch query pool = the cacheable keyspace.
_LIVE_KEYSPACE = 256
_LIVE_VECTORS = 2048
_LIVE_NPROBE = 4


@dataclass(frozen=True)
class HitRatePoint:
    """One (mode, policy, capacity) cell: measured vs predicted."""

    mode: str
    policy: str
    fraction: float
    capacity: int
    keyspace: int
    measured: float
    predicted: float
    hits: int
    misses: int

    @property
    def error(self) -> float:
        """Absolute hit-rate error vs the closed form."""
        return abs(self.measured - self.predicted)


@dataclass(frozen=True)
class ColdRestart:
    """Warm-vs-cold arms of the restart experiment (sim)."""

    qps: float
    capacity: int
    clear_at: float
    window: float
    #: p99 sojourn inside the recovery window, per arm.
    warm_window_p99: float
    cold_window_p99: float
    #: Whole-run p99 per arm, for context.
    warm_p99: float
    cold_p99: float

    @property
    def spike_ratio(self) -> float:
        return self.cold_window_p99 / self.warm_window_p99


@dataclass(frozen=True)
class CacheComparison:
    """All three claims' evidence, both modes."""

    fractions: Tuple[float, ...]
    theta: float
    points: Tuple[HitRatePoint, ...]
    cold: Optional[ColdRestart]
    #: Is a cache-disabled run bit-identical to a config that never
    #: mentions the cache, at every probed seed? None if sim didn't run.
    disabled_identical: Optional[bool] = None

    def hit_rate_agreement(self, tolerance: float = 0.05) -> bool:
        """Is every LFU arm within ``tolerance`` absolute of the
        closed-form prediction, in every mode that ran?"""
        return all(
            point.error <= tolerance
            for point in self.points
            if point.policy == "lfu"
        )

    def cold_spike(self, ratio: float = 2.0) -> bool:
        """Did the cold-cache arm spike >= ``ratio`` x the warm arm's
        p99 inside the recovery window?"""
        return self.cold is not None and self.cold.spike_ratio >= ratio


def _fingerprint(result) -> tuple:
    return (
        tuple(round(x, 12) for x in result.stats.samples()),
        dict(result.outcomes),
        tuple(result.routed_counts),
    )


def _hit_rate(counts: Dict[str, int]) -> float:
    looked = counts.get("hits", 0) + counts.get("misses", 0)
    return counts.get("hits", 0) / looked if looked else 0.0


def _windowed_p99(result, start: float, end: float) -> float:
    """p99 sojourn among completions generated inside [start, end)."""
    values = [
        r.sojourn_time
        for r in result.stats.records
        if start <= r.generated_at < end
    ]
    return quantile(values, 0.99) if values else float("nan")


def run_fig_cache(
    measure_requests: int = 8000,
    seed: int = 0,
    fractions: Tuple[float, ...] = DEFAULT_CAPACITY_FRACTIONS,
    modes: Tuple[str, ...] = ("live", "sim"),
) -> CacheComparison:
    """Sweep cache capacity through the simulator and the live harness.

    The sim arms drive the synthetic Zipf key stream against the
    calibrated xapian profile at moderate load (hit rates are
    load-independent, so the load only buys runtime). The live arm
    serves real vsearch queries — the app's own Zipfian client supplies
    the popularity, and ``VsearchApp.cache_key`` the keys.
    """
    warmup = max(100, measure_requests // 10)
    points = []
    cold: Optional[ColdRestart] = None
    disabled_identical: Optional[bool] = None

    if "sim" in modes:
        profile = paper_profile("xapian")
        qps = 0.5 / profile.service.mean
        base = SimConfig(
            qps=qps,
            n_threads=1,
            configuration="integrated",
            warmup_requests=warmup,
            measure_requests=measure_requests,
            seed=seed,
        )
        for fraction in fractions:
            capacity = max(1, int(_SIM_KEYSPACE * fraction))
            for policy in ("lru", "lfu"):
                result = simulate_load(
                    profile,
                    dataclasses.replace(
                        base,
                        cache=CacheConfig(
                            enabled=True,
                            policy=policy,
                            capacity=capacity,
                            sim_keyspace=_SIM_KEYSPACE,
                            sim_theta=_THETA,
                        ),
                    ),
                )
                points.append(
                    HitRatePoint(
                        mode="sim",
                        policy=policy,
                        fraction=fraction,
                        capacity=capacity,
                        keyspace=_SIM_KEYSPACE,
                        measured=_hit_rate(result.cache_counts),
                        predicted=predicted_hit_rate(
                            _SIM_KEYSPACE, _THETA, capacity
                        ),
                        hits=result.cache_counts["hits"],
                        misses=result.cache_counts["misses"],
                    )
                )

        cold = _run_cold_restart(profile, measure_requests, seed)

        # Claim 3: disabled == never-mentioned, per seed, plus rerun
        # determinism of the never-mentioned config itself.
        disabled_identical = True
        for probe_seed in (seed, seed + 1):
            plain = dataclasses.replace(base, seed=probe_seed)
            explicit = dataclasses.replace(
                plain, cache=CacheConfig(enabled=False)
            )
            fp = _fingerprint(simulate_load(profile, plain))
            if fp != _fingerprint(simulate_load(profile, explicit)):
                disabled_identical = False
            if fp != _fingerprint(simulate_load(profile, plain)):
                disabled_identical = False

    if "live" in modes:
        from ..apps.vsearch import VsearchApp

        app = VsearchApp(
            n_vectors=_LIVE_VECTORS,
            nprobe=_LIVE_NPROBE,
            n_queries=_LIVE_KEYSPACE,
            theta=_THETA,
            seed=seed,
        )
        app.setup()
        live_measure = min(measure_requests, 5000)
        for fraction in fractions:
            capacity = max(1, int(_LIVE_KEYSPACE * fraction))
            result = run_harness(
                app,
                HarnessConfig(
                    configuration="integrated",
                    qps=600.0,
                    n_threads=1,
                    warmup_requests=warmup,
                    measure_requests=live_measure,
                    seed=seed,
                    cache=CacheConfig(
                        enabled=True, policy="lfu", capacity=capacity
                    ),
                ),
            )
            points.append(
                HitRatePoint(
                    mode="live",
                    policy="lfu",
                    fraction=fraction,
                    capacity=capacity,
                    keyspace=_LIVE_KEYSPACE,
                    measured=_hit_rate(result.cache_counts),
                    predicted=predicted_hit_rate(
                        _LIVE_KEYSPACE, _THETA, capacity
                    ),
                    hits=result.cache_counts["hits"],
                    misses=result.cache_counts["misses"],
                )
            )

    return CacheComparison(
        fractions=tuple(fractions),
        theta=_THETA,
        points=tuple(points),
        cold=cold,
        disabled_identical=disabled_identical,
    )


def _run_cold_restart(
    profile, measure_requests: int, seed: int
) -> ColdRestart:
    """Claim 2: size the load so the warm cache carries it and the
    cold cache cannot.

    Capacity 20% of the keyspace gives a warm hit rate around 0.67,
    so at ``qps = 1.3 / mean_service`` the warm effective utilization
    is ~0.45 while the all-miss utilization is 1.3 — transient
    overload until the popular keys are re-admitted.
    """
    warmup = max(100, measure_requests // 10)
    capacity = max(1, int(_SIM_KEYSPACE * 0.20))
    qps = 1.3 / profile.service.mean
    # Arrivals span ~(warmup + measure) / qps seconds of virtual time;
    # clear at the midpoint, judge the next quarter of the run.
    span = (warmup + measure_requests) / qps
    clear_at = 0.5 * span
    window = 0.25 * span
    base = SimConfig(
        qps=qps,
        n_threads=1,
        configuration="integrated",
        warmup_requests=warmup,
        measure_requests=measure_requests,
        seed=seed,
    )
    warm_cfg = dataclasses.replace(
        base,
        cache=CacheConfig(
            enabled=True,
            policy="lfu",
            capacity=capacity,
            sim_keyspace=_SIM_KEYSPACE,
            sim_theta=_THETA,
        ),
    )
    cold_cfg = dataclasses.replace(
        warm_cfg,
        cache=dataclasses.replace(warm_cfg.cache, clear_at=clear_at),
    )
    warm = simulate_load(profile, warm_cfg)
    cold_run = simulate_load(profile, cold_cfg)
    return ColdRestart(
        qps=qps,
        capacity=capacity,
        clear_at=clear_at,
        window=window,
        warm_window_p99=_windowed_p99(warm, clear_at, clear_at + window),
        cold_window_p99=_windowed_p99(cold_run, clear_at, clear_at + window),
        warm_p99=quantile(warm.stats.samples(), 0.99),
        cold_p99=quantile(cold_run.stats.samples(), 0.99),
    )


def render_fig_cache(result: CacheComparison) -> str:
    headers = [
        "mode", "policy", "C/keyspace", "capacity", "measured",
        "predicted", "abs err",
    ]
    rows = []
    for point in result.points:
        rows.append([
            point.mode,
            point.policy,
            f"{point.fraction:.0%} of {point.keyspace}",
            str(point.capacity),
            f"{point.measured:.1%}",
            f"{point.predicted:.1%}",
            f"{point.error:.1%}",
        ])
    table = ascii_table(
        headers,
        rows,
        title=(
            "Cache: measured hit rate vs closed-form Zipf prediction "
            f"(theta={result.theta:g})"
        ),
    )
    lines = [table]
    lines.append(
        "LFU hit rate within 5% absolute of the closed-form prediction "
        "at every capacity, every mode"
        if result.hit_rate_agreement()
        else "WARNING: LFU hit rate off by >5% absolute somewhere"
    )
    lru_points = [p for p in result.points if p.policy == "lru"]
    if lru_points and all(
        p.measured <= p.predicted + 0.02 for p in lru_points
    ):
        lines.append(
            "LRU sits at or below the frequency-optimal bound "
            "(recency churn), as expected"
        )
    if result.cold is not None:
        c = result.cold
        lines.append(
            f"cold restart (clear at {c.clear_at:.1f}s, capacity "
            f"{c.capacity}): recovery-window p99 "
            f"{c.cold_window_p99 * 1e3:.1f}ms vs warm "
            f"{c.warm_window_p99 * 1e3:.1f}ms — "
            f"{c.spike_ratio:.1f}x spike "
            f"(whole-run p99 {c.cold_p99 * 1e3:.1f}ms vs "
            f"{c.warm_p99 * 1e3:.1f}ms)"
        )
        lines.append(
            "cold-cache spike >= 2x the warm arm in the recovery window"
            if result.cold_spike()
            else "WARNING: cold-cache spike below 2x"
        )
    if result.disabled_identical is not None:
        lines.append(
            "sim: cache-disabled run bit-identical to a config that "
            "never mentions the cache, per seed"
            if result.disabled_identical
            else "WARNING: cache-disabled run diverges from baseline"
        )
    return "\n".join(lines)

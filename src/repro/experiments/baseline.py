"""Benchmark baselines: machine-stamped metric snapshots.

Every benchmark under ``benchmarks/`` writes a ``BENCH_<name>.json``
next to its rendered table: a small JSON document holding the
benchmark's headline metrics plus a **run-metadata fingerprint**
(Python version/implementation, platform, CPU count). Committed
baselines let a later run — possibly on different hardware — compare
against recorded numbers *knowing* what produced them, instead of
diffing bare numbers across unknown machines.

The module doubles as the CI validator and regression gate::

    python -m repro.experiments.baseline validate benchmarks/results
    python -m repro.experiments.baseline compare benchmarks/results \
        /tmp/fresh-results --tolerance 0.25

``validate`` checks every ``BENCH_*.json`` in the directory against
the schema (exit 1 on the first malformed file); ``compare`` re-reads
two directories of baselines — committed vs freshly produced — and
fails on metric regressions beyond a tolerance band, with per-metric
direction heuristics (``qps`` regressions are drops, ``p99``
regressions are rises).
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "run_fingerprint",
    "run_meta",
    "metric_direction",
    "compare_metrics",
    "compare_directories",
    "write_baseline",
    "load_baseline",
    "validate_baseline",
    "validate_directory",
    "main",
]

Scalar = Union[int, float, str, bool]

#: Top-level keys every baseline document must carry.
_REQUIRED_KEYS = ("name", "fingerprint", "metrics")
#: Fingerprint keys stamped by :func:`run_fingerprint`.
_FINGERPRINT_KEYS = (
    "python", "implementation", "platform", "machine", "cpu_count"
)
#: Meta keys stamped by :func:`run_meta` (the environment block of
#: "Tell-Tale Tail Latencies": record what produced every number).
_META_KEYS = ("python", "cpu_count", "platform", "execution", "git_sha")


def run_fingerprint() -> Dict[str, Scalar]:
    """Metadata identifying what produced a benchmark result."""
    import os

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.system(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 0,
    }


_git_sha_cache: Optional[str] = None


def _git_sha() -> str:
    """Current git commit (short), or ``"unknown"`` outside a checkout."""
    import subprocess

    global _git_sha_cache
    if _git_sha_cache is not None:
        return _git_sha_cache
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        _git_sha_cache = "unknown"
        return _git_sha_cache
    sha = out.stdout.strip()
    _git_sha_cache = sha if out.returncode == 0 and sha else "unknown"
    return _git_sha_cache


def run_meta(execution: str = "threaded") -> Dict[str, Scalar]:
    """The run-metadata ``meta`` block of a baseline document.

    Captures the environment facts a reader needs to judge whether a
    recorded number is comparable to theirs: interpreter, core count,
    OS, which execution substrate ran the replicas, and the exact code
    revision.
    """
    import os

    return {
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 0,
        "platform": platform.system(),
        "execution": execution,
        "git_sha": _git_sha(),
    }


def baseline_path(
    directory: Union[str, pathlib.Path], name: str
) -> pathlib.Path:
    return pathlib.Path(directory) / f"BENCH_{name}.json"


def write_baseline(
    directory: Union[str, pathlib.Path],
    name: str,
    metrics: Dict[str, Scalar],
    execution: str = "threaded",
    audit: Optional[Dict[str, Scalar]] = None,
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``metrics`` must be a flat mapping of JSON scalars — the point is a
    diffable, greppable snapshot, not a dump of experiment internals.
    ``execution`` names the substrate that produced the numbers (it
    lands in the ``meta`` block); ``audit`` optionally attaches the
    run's coordinated-omission audit
    (:meth:`repro.core.CollectedStats.send_audit`) so the fingerprint
    records whether the load generator kept up.
    """
    if not name or any(c in name for c in "/\\"):
        raise ValueError(f"invalid baseline name {name!r}")
    if not metrics:
        raise ValueError("baseline needs at least one metric")
    for key, value in metrics.items():
        if not isinstance(key, str):
            raise TypeError(f"metric keys must be str, got {key!r}")
        if not isinstance(value, (int, float, str, bool)):
            raise TypeError(
                f"metric {key!r} must be a JSON scalar, got {type(value)}"
            )
        if isinstance(value, float) and value != value:
            raise ValueError(f"metric {key!r} is NaN")
    document = {
        "name": name,
        "fingerprint": run_fingerprint(),
        "meta": run_meta(execution=execution),
        "metrics": dict(sorted(metrics.items())),
    }
    if audit:
        document["audit"] = dict(sorted(audit.items()))
    path = baseline_path(directory, name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: Union[str, pathlib.Path]) -> Dict:
    """Read and validate one baseline document."""
    path = pathlib.Path(path)
    document = json.loads(path.read_text())
    validate_baseline(document, source=str(path))
    return document


def validate_baseline(document: Dict, source: str = "<memory>") -> None:
    """Raise ``ValueError`` unless ``document`` is a valid baseline."""
    if not isinstance(document, dict):
        raise ValueError(f"{source}: baseline must be a JSON object")
    for key in _REQUIRED_KEYS:
        if key not in document:
            raise ValueError(f"{source}: missing required key {key!r}")
    if not isinstance(document["name"], str) or not document["name"]:
        raise ValueError(f"{source}: 'name' must be a non-empty string")
    fingerprint = document["fingerprint"]
    if not isinstance(fingerprint, dict):
        raise ValueError(f"{source}: 'fingerprint' must be an object")
    for key in _FINGERPRINT_KEYS:
        if key not in fingerprint:
            raise ValueError(f"{source}: fingerprint missing {key!r}")
    metrics = document["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError(f"{source}: 'metrics' must be a non-empty object")
    for key, value in metrics.items():
        if not isinstance(value, (int, float, str, bool)):
            raise ValueError(
                f"{source}: metric {key!r} is not a JSON scalar"
            )
    # `meta` and `audit` are optional (older baselines predate them)
    # but must be well-formed when present.
    meta = document.get("meta")
    if meta is not None:
        if not isinstance(meta, dict):
            raise ValueError(f"{source}: 'meta' must be an object")
        for key in _META_KEYS:
            if key not in meta:
                raise ValueError(f"{source}: meta missing {key!r}")
    audit = document.get("audit")
    if audit is not None:
        if not isinstance(audit, dict):
            raise ValueError(f"{source}: 'audit' must be an object")
        for key, value in audit.items():
            if not isinstance(value, (int, float)):
                raise ValueError(
                    f"{source}: audit value {key!r} is not numeric"
                )


def validate_directory(
    directory: Union[str, pathlib.Path], require: int = 0
) -> List[str]:
    """Validate every ``BENCH_*.json`` under ``directory``.

    Returns the validated baseline names; raises on the first invalid
    file, or when fewer than ``require`` baselines are present.
    """
    directory = pathlib.Path(directory)
    names = []
    for path in sorted(directory.glob("BENCH_*.json")):
        names.append(load_baseline(path)["name"])
    if len(names) < require:
        raise ValueError(
            f"{directory}: expected >= {require} baselines, found "
            f"{len(names)}"
        )
    return names


# -- regression comparison ---------------------------------------------
#
# Metric names carry their own improvement direction: throughputs
# should not drop, latencies should not rise, and anything
# unrecognized must simply stay inside the band in both directions.
_HIGHER_BETTER = (
    "qps", "throughput", "goodput", "speedup", "scaling", "ratio", "ops",
    "success_rate", "count",
)
_LOWER_BETTER = (
    "p50", "p90", "p95", "p99", "p999", "latency", "overhead", "lag",
    "_s", "_ms", "_us", "seconds", "time",
)


def metric_direction(key: str) -> str:
    """``"higher"``, ``"lower"``, or ``"both"`` — which way is worse.

    Lower-better wins ties: ``"send_lag_p99_s"`` contains both
    ``lag``/``p99`` and nothing higher-better; a name like
    ``"qps_p99"`` reads as a latency-of-throughput-samples and is
    treated as lower-better too.
    """
    lowered = key.lower()
    if any(tok in lowered for tok in _LOWER_BETTER):
        return "lower"
    if any(tok in lowered for tok in _HIGHER_BETTER):
        return "higher"
    return "both"


def compare_metrics(
    baseline: Dict[str, Scalar],
    current: Dict[str, Scalar],
    tolerance: float = 0.25,
    source: str = "<memory>",
) -> List[str]:
    """Regressions of ``current`` against ``baseline`` (empty = pass).

    Numeric metrics must stay inside a relative ``tolerance`` band in
    the metric's *worse* direction (improvements never fail);
    non-numeric metrics must match exactly; metrics present in the
    baseline must still exist. New metrics in ``current`` are fine —
    growth is not a regression.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    regressions: List[str] = []
    for key, base in sorted(baseline.items()):
        if key not in current:
            regressions.append(f"{source}: metric {key!r} disappeared")
            continue
        cur = current[key]
        numeric = (
            isinstance(base, (int, float)) and not isinstance(base, bool)
            and isinstance(cur, (int, float)) and not isinstance(cur, bool)
        )
        if not numeric:
            if base != cur:
                regressions.append(
                    f"{source}: {key} changed {base!r} -> {cur!r}"
                )
            continue
        scale = max(abs(float(base)), 1e-12)
        direction = metric_direction(key)
        drop = (float(base) - float(cur)) / scale
        rise = (float(cur) - float(base)) / scale
        if direction in ("higher", "both") and drop > tolerance:
            regressions.append(
                f"{source}: {key} regressed {base:g} -> {cur:g} "
                f"(-{drop:.1%}, tolerance {tolerance:.0%})"
            )
        elif direction in ("lower", "both") and rise > tolerance:
            regressions.append(
                f"{source}: {key} regressed {base:g} -> {cur:g} "
                f"(+{rise:.1%}, tolerance {tolerance:.0%})"
            )
    return regressions


def _fingerprints_comparable(base: Dict, cur: Dict) -> Tuple[bool, str]:
    diffs = [
        f"{key}: {base.get(key)!r} -> {cur.get(key)!r}"
        for key in _FINGERPRINT_KEYS
        if base.get(key) != cur.get(key)
    ]
    return (not diffs, "; ".join(diffs))


def compare_directories(
    baseline_dir: Union[str, pathlib.Path],
    current_dir: Union[str, pathlib.Path],
    tolerance: float = 0.25,
    fingerprint_policy: str = "warn",
) -> Tuple[List[str], List[str]]:
    """Compare two directories of baselines; return (regressions, notes).

    Every ``BENCH_*.json`` present in *both* directories is compared
    metric by metric. ``fingerprint_policy`` governs documents whose
    environment fingerprints differ (committed baselines usually come
    from a different machine than the CI runner): ``"warn"`` notes the
    difference and compares anyway; ``"strict"`` treats it as a
    regression; ``"skip"`` skips the document.
    """
    if fingerprint_policy not in ("warn", "strict", "skip"):
        raise ValueError(
            "fingerprint_policy must be 'warn', 'strict', or 'skip', "
            f"got {fingerprint_policy!r}"
        )
    baseline_dir = pathlib.Path(baseline_dir)
    current_dir = pathlib.Path(current_dir)
    regressions: List[str] = []
    notes: List[str] = []
    compared = 0
    for base_path in sorted(baseline_dir.glob("BENCH_*.json")):
        cur_path = current_dir / base_path.name
        if not cur_path.exists():
            notes.append(f"{base_path.name}: no fresh result; skipped")
            continue
        base_doc = load_baseline(base_path)
        cur_doc = load_baseline(cur_path)
        same, diff = _fingerprints_comparable(
            base_doc["fingerprint"], cur_doc["fingerprint"]
        )
        if not same:
            if fingerprint_policy == "strict":
                regressions.append(
                    f"{base_path.name}: fingerprint mismatch ({diff})"
                )
                continue
            if fingerprint_policy == "skip":
                notes.append(
                    f"{base_path.name}: fingerprint mismatch ({diff}); "
                    "skipped"
                )
                continue
            notes.append(
                f"{base_path.name}: fingerprint mismatch ({diff}); "
                "comparing anyway"
            )
        compared += 1
        regressions.extend(
            compare_metrics(
                base_doc["metrics"],
                cur_doc["metrics"],
                tolerance=tolerance,
                source=base_path.name,
            )
        )
    if compared == 0 and not regressions:
        notes.append("no comparable baseline pairs found")
    return regressions, notes


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: `baseline <dir> [--require N]` (the original CLI)
    # still validates, without the explicit subcommand.
    if argv and argv[0] not in ("validate", "compare") and not argv[
        0
    ].startswith("-"):
        argv.insert(0, "validate")
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.baseline",
        description=(
            "Validate BENCH_*.json benchmark baselines, or compare two "
            "directories of them for regressions."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_validate = sub.add_parser(
        "validate", help="schema-check every BENCH_*.json in a directory"
    )
    p_validate.add_argument(
        "directory", help="directory holding BENCH_*.json"
    )
    p_validate.add_argument(
        "--require", type=int, default=0, metavar="N",
        help="fail unless at least N baselines are present",
    )
    p_compare = sub.add_parser(
        "compare",
        help="fail on metric regressions of fresh results vs committed",
    )
    p_compare.add_argument(
        "baseline_dir", help="committed baselines (the reference)"
    )
    p_compare.add_argument(
        "current_dir", help="freshly produced baselines (the candidate)"
    )
    p_compare.add_argument(
        "--tolerance", type=float, default=0.25, metavar="FRAC",
        help="relative band a metric may move in its worse direction "
        "(default 0.25)",
    )
    p_compare.add_argument(
        "--fingerprint-policy",
        choices=("warn", "strict", "skip"),
        default="warn",
        help="how to treat documents whose environment fingerprints "
        "differ (default: warn and compare anyway)",
    )
    args = parser.parse_args(argv)
    if args.command == "validate":
        try:
            names = validate_directory(args.directory, require=args.require)
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            print(f"baseline validation failed: {exc}", file=sys.stderr)
            return 1
        for name in names:
            print(f"ok: {name}")
        return 0
    try:
        regressions, notes = compare_directories(
            args.baseline_dir,
            args.current_dir,
            tolerance=args.tolerance,
            fingerprint_policy=args.fingerprint_policy,
        )
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"baseline comparison failed: {exc}", file=sys.stderr)
        return 1
    for note in notes:
        print(f"note: {note}")
    if regressions:
        for regression in regressions:
            print(f"REGRESSION: {regression}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())

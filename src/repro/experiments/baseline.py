"""Benchmark baselines: machine-stamped metric snapshots.

Every benchmark under ``benchmarks/`` writes a ``BENCH_<name>.json``
next to its rendered table: a small JSON document holding the
benchmark's headline metrics plus a **run-metadata fingerprint**
(Python version/implementation, platform, CPU count). Committed
baselines let a later run — possibly on different hardware — compare
against recorded numbers *knowing* what produced them, instead of
diffing bare numbers across unknown machines.

The module doubles as the CI validator::

    python -m repro.experiments.baseline benchmarks/results

which checks every ``BENCH_*.json`` in the directory against the
schema (exit 1 on the first malformed file).
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
from typing import Dict, List, Optional, Union

__all__ = [
    "run_fingerprint",
    "write_baseline",
    "load_baseline",
    "validate_baseline",
    "validate_directory",
    "main",
]

Scalar = Union[int, float, str, bool]

#: Top-level keys every baseline document must carry.
_REQUIRED_KEYS = ("name", "fingerprint", "metrics")
#: Fingerprint keys stamped by :func:`run_fingerprint`.
_FINGERPRINT_KEYS = (
    "python", "implementation", "platform", "machine", "cpu_count"
)


def run_fingerprint() -> Dict[str, Scalar]:
    """Metadata identifying what produced a benchmark result."""
    import os

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.system(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 0,
    }


def baseline_path(
    directory: Union[str, pathlib.Path], name: str
) -> pathlib.Path:
    return pathlib.Path(directory) / f"BENCH_{name}.json"


def write_baseline(
    directory: Union[str, pathlib.Path],
    name: str,
    metrics: Dict[str, Scalar],
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``metrics`` must be a flat mapping of JSON scalars — the point is a
    diffable, greppable snapshot, not a dump of experiment internals.
    """
    if not name or any(c in name for c in "/\\"):
        raise ValueError(f"invalid baseline name {name!r}")
    if not metrics:
        raise ValueError("baseline needs at least one metric")
    for key, value in metrics.items():
        if not isinstance(key, str):
            raise TypeError(f"metric keys must be str, got {key!r}")
        if not isinstance(value, (int, float, str, bool)):
            raise TypeError(
                f"metric {key!r} must be a JSON scalar, got {type(value)}"
            )
        if isinstance(value, float) and value != value:
            raise ValueError(f"metric {key!r} is NaN")
    document = {
        "name": name,
        "fingerprint": run_fingerprint(),
        "metrics": dict(sorted(metrics.items())),
    }
    path = baseline_path(directory, name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: Union[str, pathlib.Path]) -> Dict:
    """Read and validate one baseline document."""
    path = pathlib.Path(path)
    document = json.loads(path.read_text())
    validate_baseline(document, source=str(path))
    return document


def validate_baseline(document: Dict, source: str = "<memory>") -> None:
    """Raise ``ValueError`` unless ``document`` is a valid baseline."""
    if not isinstance(document, dict):
        raise ValueError(f"{source}: baseline must be a JSON object")
    for key in _REQUIRED_KEYS:
        if key not in document:
            raise ValueError(f"{source}: missing required key {key!r}")
    if not isinstance(document["name"], str) or not document["name"]:
        raise ValueError(f"{source}: 'name' must be a non-empty string")
    fingerprint = document["fingerprint"]
    if not isinstance(fingerprint, dict):
        raise ValueError(f"{source}: 'fingerprint' must be an object")
    for key in _FINGERPRINT_KEYS:
        if key not in fingerprint:
            raise ValueError(f"{source}: fingerprint missing {key!r}")
    metrics = document["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError(f"{source}: 'metrics' must be a non-empty object")
    for key, value in metrics.items():
        if not isinstance(value, (int, float, str, bool)):
            raise ValueError(
                f"{source}: metric {key!r} is not a JSON scalar"
            )


def validate_directory(
    directory: Union[str, pathlib.Path], require: int = 0
) -> List[str]:
    """Validate every ``BENCH_*.json`` under ``directory``.

    Returns the validated baseline names; raises on the first invalid
    file, or when fewer than ``require`` baselines are present.
    """
    directory = pathlib.Path(directory)
    names = []
    for path in sorted(directory.glob("BENCH_*.json")):
        names.append(load_baseline(path)["name"])
    if len(names) < require:
        raise ValueError(
            f"{directory}: expected >= {require} baselines, found "
            f"{len(names)}"
        )
    return names


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.baseline",
        description="Validate BENCH_*.json benchmark baselines.",
    )
    parser.add_argument("directory", help="directory holding BENCH_*.json")
    parser.add_argument(
        "--require", type=int, default=0, metavar="N",
        help="fail unless at least N baselines are present",
    )
    args = parser.parse_args(argv)
    try:
        names = validate_directory(args.directory, require=args.require)
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"baseline validation failed: {exc}", file=sys.stderr)
        return 1
    for name in names:
        print(f"ok: {name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

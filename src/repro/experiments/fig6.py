"""Fig. 6: latency vs. *load* (not QPS) for shore and img-dnn.

These two applications show the largest simulation error in Fig. 5.
Plotting against normalized system load instead of absolute QPS makes
the real-system and simulated curves nearly coincide: the simulator's
error is a constant speed factor, so behaviour *at equal load* is
preserved — the key argument that simulation yields accurate insight
into tail-latency behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .fig3 import DEFAULT_LOAD_POINTS, sweep_app
from .fig5 import SETUPS
from .reporting import ascii_table, format_latency

__all__ = ["LoadNormalizedCurves", "run_fig6", "render_fig6", "FIG6_APPS"]

FIG6_APPS: Tuple[str, ...] = ("shore", "img-dnn")


@dataclass(frozen=True)
class LoadNormalizedCurves:
    """p95 at each *load fraction*, per setup."""

    name: str
    load_points: Tuple[float, ...]
    p95_by_setup: Dict[str, Tuple[float, ...]]

    def max_relative_spread(self) -> float:
        """Worst-case spread across setups at any load point.

        Small values mean the curves collapse when plotted against
        load — the paper's Fig. 6 claim. Computed as
        ``(max - min) / min`` per load point, maximized over points.
        """
        worst = 0.0
        for i in range(len(self.load_points)):
            values = [series[i] for series in self.p95_by_setup.values()]
            spread = (max(values) - min(values)) / min(values)
            worst = max(worst, spread)
        return worst


def run_fig6(
    measure_requests: int = 10_000,
    seed: int = 0,
    apps: Tuple[str, ...] = FIG6_APPS,
    load_points: Tuple[float, ...] = DEFAULT_LOAD_POINTS,
) -> Dict[str, LoadNormalizedCurves]:
    results = {}
    for name in apps:
        p95_by_setup: Dict[str, Tuple[float, ...]] = {}
        for label, configuration, simulated in SETUPS:
            curve = sweep_app(
                name,
                configuration=configuration,
                load_points=load_points,
                measure_requests=measure_requests,
                seed=seed,
                simulated_system=simulated,
            )
            p95_by_setup[label] = curve.p95
        results[name] = LoadNormalizedCurves(name, tuple(load_points), p95_by_setup)
    return results


def render_fig6(results: Dict[str, LoadNormalizedCurves]) -> str:
    out: List[str] = []
    for name, curves in results.items():
        headers = ["load"] + list(curves.p95_by_setup)
        rows = []
        for i, load in enumerate(curves.load_points):
            rows.append(
                [f"{load:.0%}"]
                + [
                    format_latency(series[i])
                    for series in curves.p95_by_setup.values()
                ]
            )
        out.append(
            ascii_table(headers, rows, title=f"Fig. 6: {name} (p95 vs load)")
        )
        out.append(
            f"max relative spread across setups: "
            f"{curves.max_relative_spread():.1%}"
        )
    return "\n\n".join(out)

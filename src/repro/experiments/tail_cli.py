"""``tailbench tail <app>`` — why is the p99 high, in one table.

Runs a short traced workload with the streaming SLO engine armed and
prints the tail-attribution report: per-request critical paths are
rebuilt from the trace, the slowest ``100 - pct`` percent are compared
against the body, and the excess tail time is ranked by
component x replica, alongside the windowed SLO summary (burn-rate
alerts, per-window quantiles, slowest-request exemplars)::

    tailbench tail masstree --duration 2
    tailbench tail xapian --qps 2000 --servers 4 --pct 99.9
    tailbench tail silo --live --duration 1

A previously exported trace attributes without re-running anything
(no SLO summary in that case — the burn-rate engine is streaming,
not replayable)::

    tailbench tail --from-jsonl trace.jsonl
"""

from __future__ import annotations

import argparse
import sys

from ..core.config import HarnessConfig, ObservabilityConfig, SloConfig

__all__ = ["main", "run_tail"]


def run_tail(args: argparse.Namespace):
    """Execute the SLO-instrumented run; returns the result."""
    slo = SloConfig(
        enabled=True,
        target=args.target,
        objective=args.objective,
        window=args.window,
        exemplars_per_window=args.exemplars,
    )
    observability = ObservabilityConfig(tracing=True, slo=slo)
    measure = max(int(args.qps * args.duration), 1)
    common = dict(
        qps=args.qps,
        n_threads=args.threads,
        configuration=args.config,
        warmup_requests=0,  # windows anchor at t=0; keep them honest
        measure_requests=measure,
        seed=args.seed,
        n_servers=args.servers,
        balancer=args.balancer,
        observability=observability,
    )
    if args.live:
        from ..apps import create_app
        from ..core.harness import run_harness

        app = create_app(args.app)
        app.setup()
        return run_harness(app, HarnessConfig(**common))
    from ..sim.calibration import EXTENSION_PROFILES, PAPER_PROFILES
    from ..sim.latency_sim import SimConfig, simulate_app

    known = {**PAPER_PROFILES, **EXTENSION_PROFILES}
    if args.app not in known:
        raise SystemExit(
            f"no calibrated profile for {args.app!r} "
            f"(have: {sorted(known)}); use --live to drive "
            "the real application instead"
        )
    return simulate_app(args.app, SimConfig(**common))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="tailbench tail",
        description="Attribute a workload's latency tail to its causes.",
    )
    parser.add_argument(
        "app", nargs="?", default=None,
        help="application name (e.g. masstree); omit with --from-jsonl",
    )
    parser.add_argument(
        "--duration", type=float, default=2.0,
        help="run length in seconds (measured requests = qps * duration)",
    )
    parser.add_argument("--qps", type=float, default=1000.0)
    parser.add_argument("--threads", type=int, default=1)
    parser.add_argument("--servers", type=int, default=1)
    parser.add_argument("--balancer", default="round_robin")
    parser.add_argument(
        "--config", default="integrated",
        choices=("integrated", "loopback", "networked"),
        help="harness configuration (network model in sim mode)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--pct", type=float, default=99.0,
        help="tail percentile to attribute (requests at or beyond it)",
    )
    parser.add_argument(
        "--top", type=int, default=8,
        help="ranked causes to print",
    )
    parser.add_argument(
        "--target", type=float, default=0.1,
        help="SLO latency target in seconds",
    )
    parser.add_argument(
        "--objective", type=float, default=0.99,
        help="fraction of requests that must meet the target",
    )
    parser.add_argument(
        "--window", type=float, default=0.25,
        help="SLO accounting window in seconds",
    )
    parser.add_argument(
        "--exemplars", type=int, default=3,
        help="slowest-request exemplars retained per window",
    )
    parser.add_argument(
        "--live", action="store_true",
        help="drive the real application through the live harness "
        "instead of the virtual-time simulator",
    )
    parser.add_argument(
        "--from-jsonl", metavar="PATH", default=None,
        help="attribute a previously exported JSONL trace instead of "
        "running a workload",
    )
    args = parser.parse_args(argv)

    if args.from_jsonl is not None:
        from ..obs.attribution import tail_report
        from ..obs.exporters import load_trace_jsonl

        events = load_trace_jsonl(args.from_jsonl)
        print(tail_report(events, pct=args.pct, top=args.top).render())
        return 0
    if args.app is None:
        parser.error("app is required unless --from-jsonl is given")

    result = run_tail(args)
    obs = result.obs
    if obs is None:  # pragma: no cover - tracing is forced on above
        raise SystemExit("run produced no observability artifacts")
    print(obs.tail_report(pct=args.pct, top=args.top).render())
    if obs.live is not None:
        print()
        print(obs.live.describe())
    return 0


if __name__ == "__main__":
    sys.exit(main())

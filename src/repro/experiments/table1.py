"""Table I: application characterization.

Regenerates both halves of the paper's Table I:

- microarchitectural rows (L1I/L1D/L2/L3/branch MPKI) via the
  :mod:`repro.archsim` cache hierarchy over per-app synthetic traces;
- tail-latency rows (95th percentile at 20/50/70% load) via the
  virtual-time simulator under the networked configuration, matching
  the paper's multi-node measurement setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..archsim import characterize_app
from ..sim import SimConfig, network_model_for, paper_profile, simulate_app
from .reporting import ascii_table, format_latency

__all__ = ["Table1Row", "run_table1", "render_table1", "APP_ORDER", "PAPER_TABLE1"]

APP_ORDER: Tuple[str, ...] = (
    "xapian", "masstree", "moses", "sphinx",
    "img-dnn", "specjbb", "silo", "shore",
)

LOADS: Tuple[float, ...] = (0.2, 0.5, 0.7)

#: The paper's Table I values for side-by-side comparison:
#: (L1I, L1D, L2, L3, Branch MPKI, p95@20%, p95@50%, p95@70% [seconds]).
PAPER_TABLE1: Dict[str, Tuple[float, ...]] = {
    "xapian": (1.14, 13.69, 8.94, 0.02, 7.22, 2.67e-3, 4.88e-3, 9.48e-3),
    "masstree": (0.23, 11.41, 9.32, 5.41, 5.66, 428e-6, 688e-6, 1.18e-3),
    "moses": (1.79, 26.82, 24.77, 19.95, 2.24, 3.06e-3, 5.41e-3, 11.42e-3),
    "sphinx": (0.06, 23.83, 20.22, 3.51, 6.94, 2.08, 2.78, 3.82),
    "img-dnn": (0.32, 87.49, 16.64, 15.05, 0.35, 2.51e-3, 3.94e-3, 6.91e-3),
    "specjbb": (8.87, 15.62, 14.91, 3.49, 4.99, 293e-6, 507e-6, 739e-6),
    "silo": (1.2, 2.88, 1.92, 0.56, 5.58, 191e-6, 374e-6, 1.33e-3),
    "shore": (22.68, 23.83, 20.22, 3.51, 6.94, 1.99e-3, 2.80e-3, 4.20e-3),
}


@dataclass(frozen=True)
class Table1Row:
    """One application's measured characterization."""

    name: str
    l1i_mpki: float
    l1d_mpki: float
    l2_mpki: float
    l3_mpki: float
    branch_mpki: float
    p95_by_load: Dict[float, float]  # load fraction -> seconds


def run_table1(
    measure_requests: int = 20_000,
    n_instructions: int = 300_000,
    seed: int = 0,
) -> List[Table1Row]:
    """Measure every application; returns one row per app."""
    rows = []
    for name in APP_ORDER:
        mpki = characterize_app(name, n_instructions=n_instructions, seed=seed)
        profile = paper_profile(name)
        occupancy = network_model_for("networked").server_occupancy
        saturation = 1.0 / (profile.service.mean + occupancy)
        p95 = {}
        for load in LOADS:
            result = simulate_app(
                name,
                SimConfig(
                    qps=load * saturation,
                    configuration="networked",
                    measure_requests=measure_requests,
                    warmup_requests=max(100, measure_requests // 10),
                    seed=seed,
                ),
            )
            p95[load] = result.sojourn.p95
        rows.append(
            Table1Row(
                name=name,
                l1i_mpki=mpki.l1i,
                l1d_mpki=mpki.l1d,
                l2_mpki=mpki.l2,
                l3_mpki=mpki.l3,
                branch_mpki=mpki.branch,
                p95_by_load=p95,
            )
        )
    return rows


def render_table1(rows: List[Table1Row], compare: bool = True) -> str:
    """Render the measured table (optionally with paper values)."""
    headers = ["metric"] + [row.name for row in rows]
    def fmt(ours: float, paper: float, latency: bool = False) -> str:
        shown = format_latency(ours) if latency else f"{ours:.2f}"
        if not compare:
            return shown
        ref = format_latency(paper) if latency else f"{paper:.2f}"
        return f"{shown} ({ref})"

    metric_rows = []
    for i, (label, attr) in enumerate(
        [
            ("L1I MPKI", "l1i_mpki"),
            ("L1D MPKI", "l1d_mpki"),
            ("L2 MPKI", "l2_mpki"),
            ("L3 MPKI", "l3_mpki"),
            ("Branch MPKI", "branch_mpki"),
        ]
    ):
        metric_rows.append(
            [label]
            + [fmt(getattr(r, attr), PAPER_TABLE1[r.name][i]) for r in rows]
        )
    for j, load in enumerate(LOADS):
        metric_rows.append(
            [f"95th %ile @ {load:.0%}"]
            + [
                fmt(r.p95_by_load[load], PAPER_TABLE1[r.name][5 + j], latency=True)
                for r in rows
            ]
        )
    title = "Table I: TailBench application characterization"
    if compare:
        title += "  [ours (paper)]"
    return ascii_table(headers, metric_rows, title=title)

"""Fan-out extension: measured tail-at-scale vs the order-statistic law.

Runs the sharded vector-search workload (:mod:`repro.apps.vsearch`)
through a scatter-gather topology at K ∈ {1, 2, 4, 8} shards, in
*both* execution modes:

- **live** — the real harness drives ``VsearchApp(...).sharded(K)``,
  each shard an IVF index over its disjoint corpus partition; one
  logical query fans out to all K shards and completes when the last
  (critical) shard responds;
- **sim** — the discrete-event simulator with the calibrated vsearch
  leaf profile and ``SimConfig(fanout=FanoutConfig(shards=K))``.

The corpus grows with K (``n_vectors = K * shard_size``) so per-shard
work stays constant — the scale-out regime of "The Tail at Scale":
per-shard p99 is roughly flat while the end-to-end p99 climbs with K,
because the gather waits for ``max(L_1..L_K)``.

The reproduced claim: the measured end-to-end p99 matches the
order-statistic prediction ``fanout_quantile(leaves, K, 0.99)`` —
i.e. the leaf's ``0.99**(1/K)`` quantile — within a few percent for
K ∈ {2, 4, 8}, in both modes. The simulator additionally verifies the
degenerate case: a K=1 "sharded" run is bit-identical to the plain
unsharded run under the same seed (fingerprinted samples, outcomes,
and routing).

**Flatness is mode-specific.** The simulator models the real fleet —
K *independent* servers — so its per-shard leaf sojourn stays flat as
K grows. The live arm colocates all K shard replicas in one
interpreter (typically one core in CI), so the K CPU-bound siblings of
a gather serialize and leaf *sojourn* necessarily grows with K; what
stays flat live is the per-shard *service* p99 (constant shard-local
work) and the balance across shards (no straggler). Both flavours are
checked by :meth:`FanoutComparison.per_shard_flat`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..analysis.fanout import fanout_quantile
from ..core import FanoutConfig, HarnessConfig, run_harness
from ..sim import SimConfig, simulate_load
from ..sim.calibration import paper_profile
from ..stats import quantile
from .reporting import ascii_table

__all__ = [
    "FanoutPoint",
    "FanoutComparison",
    "run_fig_fanout",
    "render_fig_fanout",
    "DEFAULT_FANOUTS",
]

DEFAULT_FANOUTS: Tuple[int, ...] = (1, 2, 4, 8)

#: Per-shard corpus size for the live arm; total corpus = K * this, so
#: every shard indexes the same number of vectors at every K. Sized
#: (with ``_NPROBE``) for a few-hundred-microsecond probe, large
#: enough that scheduler-stall noise is second-order in the tail.
_SHARD_VECTORS = 8192
_NPROBE = 12

#: Per-sub-request harness overhead allowance (transport dispatch,
#: collector bookkeeping, thread wakeups) folded into the live load
#: calibration; the probe math alone under-counts the GIL time one
#: sub-request really costs.
_SUBREQUEST_OVERHEAD = 120e-6


@dataclass(frozen=True)
class FanoutPoint:
    """One (mode, K) cell: measured vs predicted end-to-end tail."""

    fanout: int
    qps: float
    #: Measured end-to-end p99 (gather completion, critical shard).
    measured_p99: float
    #: ``fanout_quantile(leaf_samples, K, 0.99)`` from the same run.
    predicted_p99: float
    #: p99 of the pooled per-shard leaf latencies.
    leaf_p99: float
    #: Per-shard leaf p99s (length K).
    shard_p99s: Tuple[float, ...]
    #: Logical gathers measured.
    completed: int
    #: Probe-measured p99 of one shard's bare ``process`` time (live
    #: arm only — the work-constant witness); None in sim.
    service_p99: Optional[float] = None

    @property
    def prediction_error(self) -> float:
        """Relative error of the order-statistic prediction."""
        return abs(self.measured_p99 - self.predicted_p99) / self.predicted_p99


@dataclass(frozen=True)
class FanoutComparison:
    """Measured-vs-predicted tail across fan-out widths, both modes."""

    fanouts: Tuple[int, ...]
    load: float
    #: mode -> one FanoutPoint per fan-out width.
    points: Dict[str, Tuple[FanoutPoint, ...]]
    #: Simulator-only degenerate-case check: is the K=1 sharded run
    #: bit-identical to the plain unsharded run? None if sim didn't run.
    k1_identical: Optional[bool] = None

    def prediction_agreement(self, tolerance: float = 0.10) -> bool:
        """Is measured e2e p99 within ``tolerance`` of the prediction
        at every K > 1, in every mode that ran?"""
        return all(
            point.prediction_error <= tolerance
            for series in self.points.values()
            for point in series
            if point.fanout > 1
        )

    def per_shard_flat(self, tolerance: float = 0.5) -> bool:
        """Is per-shard work flat across K, in every mode that ran?

        The climb in e2e p99 must come from the max over shards, not
        from the shards themselves getting slower. In **sim** the K
        servers are independent, so the pooled leaf *sojourn* p99 must
        stay within ``tolerance`` (relative) of its smallest-K value.
        In **live** the K shard replicas share one interpreter, so
        sibling sub-requests serialize and leaf sojourn grows with K
        by construction; there the work-constant witness is the
        probe-measured *service* p99 (``FanoutPoint.service_p99``),
        which must stay flat instead.
        """
        for series in self.points.values():
            values = [
                p.service_p99 if p.service_p99 is not None else p.leaf_p99
                for p in series
            ]
            base = values[0]
            if any(abs(v - base) > tolerance * base for v in values[1:]):
                return False
        return True

    def shards_balanced(self, tolerance: float = 1.0) -> bool:
        """No straggler shard in the simulated fleet: within every sim
        run, the slowest shard's leaf p99 is within ``tolerance``
        (relative) of the fastest's. k-means partitions are only
        statistically balanced, so the default tolerance is generous.

        Sim-only on purpose: on colocated live shards the dispatch
        position within a gather adds a systematic per-shard offset
        (the last shard waits for K-1 serialized siblings), which is
        shared-hardware skew, not partition imbalance — the live
        spread is still reported in the table.
        """
        return all(
            max(p.shard_p99s) <= (1.0 + tolerance) * min(p.shard_p99s)
            for mode, series in self.points.items()
            if mode == "sim"
            for p in series
        )

    def tail_inflation(self, mode: str) -> float:
        """e2e p99 at the widest fan-out over the K=1 p99."""
        series = self.points[mode]
        return series[-1].measured_p99 / series[0].measured_p99


def _point_from_result(
    result, fanout: int, qps: float,
    service_p99: Optional[float] = None,
) -> FanoutPoint:
    stats = result.fanout
    leaves = sorted(stats.leaf_samples())  # one sort feeds both quantiles
    return FanoutPoint(
        fanout=fanout,
        qps=qps,
        measured_p99=quantile(result.stats.samples(), 0.99),
        predicted_p99=fanout_quantile(leaves, fanout, 0.99, sorted_values=True),
        leaf_p99=quantile(leaves, 0.99, sorted_values=True),
        shard_p99s=tuple(stats.shard_p99(s) for s in range(fanout)),
        completed=stats.completed,
        service_p99=service_p99,
    )


def _fingerprint(result) -> tuple:
    return (
        tuple(round(x, 12) for x in result.stats.samples()),
        dict(result.outcomes),
        tuple(result.routed_counts),
    )


def _probe_service(app, n: int = 128) -> Tuple[float, float]:
    """Wall-clock (mean, p99) of one shard's bare ``process`` over the
    Zipf query mix — the calibration and work-constant probe."""
    client = app.make_client(seed=0)
    shard = app.replica(0)
    payloads = [client.next_request() for _ in range(n)]
    for payload in payloads[:8]:  # cache/branch warm-up
        shard.process(payload)
    times = []
    for payload in payloads:
        # Best-of-3 strips scheduler-stall noise: the probe wants the
        # intrinsic per-query work, the harness measures latency.
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            shard.process(payload)
            best = min(best, time.perf_counter() - start)
        times.append(best)
    return sum(times) / len(times), quantile(times, 0.99)


def run_fig_fanout(
    measure_requests: int = 2500,
    seed: int = 0,
    fanouts: Tuple[int, ...] = DEFAULT_FANOUTS,
    load: float = 0.5,
    modes: Tuple[str, ...] = ("live", "sim"),
) -> FanoutComparison:
    """Sweep fan-out width through the live harness and the simulator.

    ``load`` is the per-shard utilization target; moderate by design,
    so service-time randomness dominates queueing and the iid
    order-statistic prediction holds tightly (see
    :mod:`repro.analysis.fanout` on the correlation caveat).
    """
    from ..apps.vsearch import VsearchApp

    warmup = max(100, measure_requests // 10)
    points: Dict[str, Tuple[FanoutPoint, ...]] = {}
    k1_identical: Optional[bool] = None

    if "live" in modes:
        live_points = []
        for k in fanouts:
            app = VsearchApp(
                n_vectors=k * _SHARD_VECTORS, n_lists=32, nprobe=_NPROBE,
                seed=seed,
            ).sharded(k)
            app.setup()
            # Calibrate offered load to this machine. Every shard sees
            # the full arrival stream, and the K shard replicas share
            # one interpreter (the probe math holds the GIL), so the
            # serialized cost per logical query is ~K x (mean service +
            # harness overhead). Hold the *total sub-request rate* at
            # ``load`` of that serialized capacity, so shard-local
            # conditions are identical at every K and only the fan-out
            # width varies.
            mean_service, service_p99 = _probe_service(app)
            qps = load / (k * (mean_service + _SUBREQUEST_OVERHEAD))
            result = run_harness(
                app,
                HarnessConfig(
                    configuration="integrated",
                    qps=qps,
                    n_threads=1,
                    n_servers=k,
                    warmup_requests=warmup,
                    measure_requests=measure_requests,
                    seed=seed,
                    fanout=FanoutConfig(enabled=True, shards=k),
                ),
            )
            live_points.append(
                _point_from_result(result, k, qps, service_p99=service_p99)
            )
        points["live"] = tuple(live_points)

    if "sim" in modes:
        profile = paper_profile("vsearch")
        qps = load / profile.service.mean
        sim_points = []
        for k in fanouts:
            result = simulate_load(
                profile,
                SimConfig(
                    qps=qps,
                    n_threads=1,
                    configuration="integrated",
                    n_servers=k,
                    warmup_requests=warmup,
                    measure_requests=measure_requests,
                    seed=seed,
                    fanout=FanoutConfig(enabled=True, shards=k),
                ),
            )
            sim_points.append(_point_from_result(result, k, qps))
            if k == 1:
                plain = simulate_load(
                    profile,
                    SimConfig(
                        qps=qps,
                        n_threads=1,
                        configuration="integrated",
                        n_servers=1,
                        warmup_requests=warmup,
                        measure_requests=measure_requests,
                        seed=seed,
                    ),
                )
                k1_identical = _fingerprint(result) == _fingerprint(plain)
        points["sim"] = tuple(sim_points)

    return FanoutComparison(
        fanouts=tuple(fanouts),
        load=load,
        points=points,
        k1_identical=k1_identical,
    )


def render_fig_fanout(result: FanoutComparison) -> str:
    headers = [
        "mode", "K", "qps", "e2e p99", "predicted", "err",
        "leaf p99", "svc p99", "shard p99 spread",
    ]
    rows = []
    for mode, series in result.points.items():
        for point in series:
            # A shard with no measured leaves reports p99 = nan; render
            # the spread as "-" rather than propagating nan arithmetic.
            finite = [p for p in point.shard_p99s if p == p]
            spread = (
                f"{min(finite) * 1e3:.2f}-{max(finite) * 1e3:.2f}ms"
                if finite
                else "-"
            )
            rows.append([
                mode,
                str(point.fanout),
                f"{point.qps:.0f}",
                f"{point.measured_p99 * 1e3:.2f}ms",
                f"{point.predicted_p99 * 1e3:.2f}ms",
                f"{point.prediction_error:.1%}",
                f"{point.leaf_p99 * 1e3:.2f}ms",
                (
                    "-" if point.service_p99 is None
                    else f"{point.service_p99 * 1e3:.2f}ms"
                ),
                spread,
            ])
    table = ascii_table(
        headers,
        rows,
        title=(
            "Fan-out: sharded vector search, measured e2e p99 vs "
            f"fanout_quantile prediction ({result.load:.0%} per-shard load)"
        ),
    )
    lines = [table]
    lines.append(
        "order-statistic prediction within 10% of measured e2e p99 at "
        "every K>1"
        if result.prediction_agreement()
        else "WARNING: prediction off by >10% at some K>1"
    )
    lines.append(
        "per-shard work flat across K (sim: leaf sojourn; live: "
        "service p99)"
        if result.per_shard_flat()
        else "WARNING: per-shard work drifts with K"
    )
    lines.append(
        "sim shards balanced within every run (no straggler shard)"
        if result.shards_balanced()
        else "WARNING: straggler shard detected (sim leaf p99 imbalance)"
    )
    if result.k1_identical is not None:
        lines.append(
            "sim: K=1 sharded run bit-identical to the unsharded run"
            if result.k1_identical
            else "WARNING: sim K=1 sharded run diverges from unsharded"
        )
    for mode in result.points:
        lines.append(
            f"{mode}: e2e p99 inflates {result.tail_inflation(mode):.2f}x "
            f"from K=1 to K={result.fanouts[-1]}"
        )
    return "\n".join(lines)

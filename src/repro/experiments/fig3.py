"""Fig. 3: mean, 95th, and 99th percentile latency vs. request rate.

Single worker thread, sweeping offered load up to saturation. The
headline behaviours: tails grow far faster than means as load rises,
and the gap is larger for applications with more variable service
times — which is why tail latency must be measured directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..sim import SimConfig, network_model_for, paper_profile, simulate_app
from .reporting import ascii_table, format_latency
from .table1 import APP_ORDER

__all__ = ["LatencyCurve", "sweep_app", "run_fig3", "render_fig3",
           "DEFAULT_LOAD_POINTS"]

DEFAULT_LOAD_POINTS: Tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95,
)


@dataclass(frozen=True)
class LatencyCurve:
    """One latency-vs-QPS series."""

    name: str
    qps: Tuple[float, ...]
    mean: Tuple[float, ...]
    p95: Tuple[float, ...]
    p99: Tuple[float, ...]
    #: Measured server utilization per point (empty when not recorded).
    utilization: Tuple[float, ...] = ()

    def measured_capacity(self, index: int = None) -> float:
        """Service capacity inferred from measured utilization.

        ``capacity = qps / utilization`` at a mid-sweep point — the
        vertical asymptote every latency curve runs into, independent
        of queueing (pooling) effects.
        """
        if not self.utilization:
            raise ValueError("utilization was not recorded for this curve")
        if index is None:
            index = len(self.qps) // 2
        if self.utilization[index] <= 0:
            raise ValueError("utilization is zero at the probe point")
        return self.qps[index] / self.utilization[index]

    def saturation_onset(self, threshold_ratio: float = 5.0) -> float:
        """QPS where p95 first exceeds ``threshold_ratio`` x low-load p95.

        A robust "knee" locator used by tests to confirm that tails
        blow up close to the analytic saturation rate.
        """
        if not self.qps:
            raise ValueError("empty curve")
        base = self.p95[0]
        for q, p in zip(self.qps, self.p95):
            if p > threshold_ratio * base:
                return q
        return self.qps[-1]


def sweep_app(
    name: str,
    configuration: str = "networked",
    n_threads: int = 1,
    load_points: Tuple[float, ...] = DEFAULT_LOAD_POINTS,
    measure_requests: int = 10_000,
    seed: int = 0,
    simulated_system: bool = False,
    ideal_memory: bool = False,
    absolute_qps_points: Tuple[float, ...] = None,
) -> LatencyCurve:
    """Sweep offered load for one app.

    By default the sweep visits ``load_points`` fractions of this
    configuration's own saturation rate. Pass ``absolute_qps_points``
    to sweep a fixed QPS grid instead (needed when comparing setups
    whose capacities differ, e.g. Fig. 4's common QPS/thread axis).
    """
    profile = paper_profile(name)
    model = profile.service_model(
        n_threads=n_threads,
        ideal_memory=ideal_memory,
        simulated_system=simulated_system,
        added_occupancy=network_model_for(configuration).server_occupancy,
    )
    saturation = model.saturation_qps(n_threads)
    if absolute_qps_points is not None:
        sweep = [(q / saturation, q) for q in absolute_qps_points]
    else:
        sweep = [(load, load * saturation) for load in load_points]
    qps_list, means, p95s, p99s, utils = [], [], [], [], []
    for load, qps in sweep:
        result = simulate_app(
            name,
            SimConfig(
                qps=qps,
                n_threads=n_threads,
                configuration=configuration,
                measure_requests=measure_requests,
                warmup_requests=max(100, measure_requests // 10),
                seed=seed,
                simulated_system=simulated_system,
                ideal_memory=ideal_memory,
            ),
        )
        summary = result.sojourn
        qps_list.append(qps)
        means.append(summary.mean)
        p95s.append(summary.p95)
        p99s.append(summary.p99)
        utils.append(result.utilization)
    return LatencyCurve(
        name, tuple(qps_list), tuple(means), tuple(p95s), tuple(p99s),
        tuple(utils),
    )


def run_fig3(
    measure_requests: int = 10_000, seed: int = 0,
    apps: Tuple[str, ...] = APP_ORDER,
) -> Dict[str, LatencyCurve]:
    """Latency-vs-QPS curves for the whole suite (1 thread)."""
    return {
        name: sweep_app(name, measure_requests=measure_requests, seed=seed)
        for name in apps
    }


def render_fig3(curves: Dict[str, LatencyCurve]) -> str:
    out: List[str] = []
    for name, curve in curves.items():
        headers = ["QPS", "mean", "p95", "p99"]
        rows = [
            [f"{q:.1f}", format_latency(m), format_latency(a), format_latency(b)]
            for q, m, a, b in zip(curve.qps, curve.mean, curve.p95, curve.p99)
        ]
        out.append(ascii_table(headers, rows, title=f"Fig. 3: {name} (1 thread)"))
    return "\n\n".join(out)

"""Extension experiments (beyond the paper's tables/figures).

Registered on the CLI as ``ext-colocation`` and ``ext-energy``; not
part of ``tailbench all`` (which regenerates only the paper's
artifacts).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..energy import DeepSleep, NoSleep, QueueBoost, StaticFrequency, simulate_energy
from ..sim import (
    BatchColocation,
    SimConfig,
    max_safe_batch_share,
    paper_profile,
    simulate_colocated,
)
from .reporting import ascii_table, format_latency

__all__ = [
    "run_ext_colocation",
    "render_ext_colocation",
    "run_ext_energy",
    "render_ext_energy",
]


def run_ext_colocation(
    app: str = "xapian",
    loads: Tuple[float, ...] = (0.2, 0.4, 0.6),
    shares: Tuple[float, ...] = (0.0, 0.2, 0.4, 0.6),
    slo_seconds: float = 8e-3,
    measure_requests: int = 5000,
    seed: int = 0,
) -> Dict:
    """Tail latency vs batch share, plus the max safe share per load."""
    profile = paper_profile(app)
    saturation = 1.0 / profile.service.mean
    qps = 0.3 * saturation
    sweep = []
    for share in shares:
        result = simulate_colocated(
            profile,
            SimConfig(qps=qps, measure_requests=measure_requests, seed=seed),
            BatchColocation(cpu_share=share, mem_pressure=share * 0.3),
        )
        sweep.append((share, result.sojourn.p95, result.sojourn.p99))
    safe = [
        (
            load,
            max_safe_batch_share(
                profile,
                load * saturation,
                slo_seconds=slo_seconds,
                measure_requests=measure_requests,
            ),
        )
        for load in loads
    ]
    return {"app": app, "qps": qps, "sweep": sweep, "safe": safe,
            "slo": slo_seconds}


def render_ext_colocation(data: Dict) -> str:
    sweep_rows = [
        [f"{share:.0%}", format_latency(p95), format_latency(p99)]
        for share, p95, p99 in data["sweep"]
    ]
    safe_rows = [
        [f"{load:.0%}", f"{share:.0%}"] for load, share in data["safe"]
    ]
    return "\n\n".join(
        [
            ascii_table(
                ["batch share", "p95", "p99"],
                sweep_rows,
                title=f"Colocation: {data['app']} @ {data['qps']:.0f} qps",
            ),
            ascii_table(
                ["LC load", "max safe batch share"],
                safe_rows,
                title=f"Batch share keeping p95 under "
                f"{format_latency(data['slo'])}",
            ),
        ]
    )


def run_ext_energy(
    app: str = "masstree",
    loads: Tuple[float, ...] = (0.15, 0.3, 0.6),
    measure_requests: int = 8000,
    seed: int = 0,
) -> Dict:
    """p95 and average power for four power-management policies."""
    profile = paper_profile(app)
    saturation = 1.0 / profile.service.mean
    policies = (
        ("static-max", StaticFrequency(1.0), NoSleep()),
        ("static-0.6x", StaticFrequency(0.6), NoSleep()),
        ("queue-boost", QueueBoost(low=0.6, high=1.0), NoSleep()),
        ("deep-sleep", StaticFrequency(1.0), DeepSleep()),
    )
    rows = []
    for load in loads:
        for label, freq, sleep in policies:
            result = simulate_energy(
                profile.service,
                load * saturation,
                frequency_policy=freq,
                sleep_policy=sleep,
                measure_requests=measure_requests,
                seed=seed,
            )
            rows.append(
                (load, label, result.sojourn.p95, result.average_power)
            )
    return {"app": app, "rows": rows}


def render_ext_energy(data: Dict) -> str:
    rows = [
        [f"{load:.0%}", label, format_latency(p95), f"{power:.2f}x"]
        for load, label, p95, power in data["rows"]
    ]
    return ascii_table(
        ["load", "policy", "p95", "avg power"],
        rows,
        title=f"Energy policies: {data['app']}",
    )

"""Fig. 2: cumulative distribution functions of request service times.

Two sources are supported: the calibrated per-app service models
(fast, deterministic — the benchmark default) or live measurement of
the Python mini-apps via
:func:`repro.sim.service_models.profile_application`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..apps import create_app
from ..sim import paper_profile, profile_application
from ..stats import quantile
from .reporting import ascii_table, format_latency
from .table1 import APP_ORDER

__all__ = ["ServiceCdf", "run_fig2", "run_fig2_live", "render_fig2"]

_CDF_QUANTILES = (0.05, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99)


@dataclass(frozen=True)
class ServiceCdf:
    """One application's empirical service-time CDF."""

    name: str
    samples: Tuple[float, ...]

    def cdf_points(self, n_points: int = 100) -> List[Tuple[float, float]]:
        """Evenly spaced (value, cumulative probability) points."""
        if n_points < 2:
            raise ValueError("need at least 2 points")
        data = sorted(self.samples)
        return [
            (data[min(len(data) - 1, int(i / (n_points - 1) * (len(data) - 1)))],
             i / (n_points - 1))
            for i in range(n_points)
        ]

    def quantiles(self) -> Dict[float, float]:
        return {q: quantile(self.samples, q) for q in _CDF_QUANTILES}


def run_fig2(n_samples: int = 20_000, seed: int = 0) -> Dict[str, ServiceCdf]:
    """Sample each calibrated service-time model (simulation source)."""
    out = {}
    for name in APP_ORDER:
        profile = paper_profile(name)
        rng = random.Random(seed + hash(name) % 1000)
        samples = tuple(profile.service.sample(rng) for _ in range(n_samples))
        out[name] = ServiceCdf(name, samples)
    return out


def run_fig2_live(
    n_samples: int = 200, seed: int = 0, apps: Tuple[str, ...] = APP_ORDER,
    app_kwargs: Dict[str, dict] = None,
) -> Dict[str, ServiceCdf]:
    """Measure the live Python mini-apps back-to-back (no queueing)."""
    app_kwargs = app_kwargs or {}
    out = {}
    for name in apps:
        app = create_app(name, **app_kwargs.get(name, {}))
        app.setup()
        empirical = profile_application(app, n_requests=n_samples, seed=seed)
        out[name] = ServiceCdf(name, tuple(empirical.values))
    return out


def render_fig2(cdfs: Dict[str, ServiceCdf]) -> str:
    """Render the CDFs as a quantile table (one row per app)."""
    headers = ["app"] + [f"p{int(q * 100)}" for q in _CDF_QUANTILES]
    rows = []
    for name, cdf in cdfs.items():
        quantiles = cdf.quantiles()
        rows.append(
            [name] + [format_latency(quantiles[q]) for q in _CDF_QUANTILES]
        )
    return ascii_table(
        headers, rows, title="Fig. 2: service-time distribution quantiles"
    )

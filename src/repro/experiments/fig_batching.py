"""Batching extension: the throughput-vs-p99 frontier of dynamic batching.

Sweeps ``max_batch_size`` at a fixed offered load past one worker's
unbatched capacity, in both execution modes:

- **live** — the real worker loop batching a sleep application whose
  batched service window costs one full member plus a marginal fraction
  of each additional member (the amortization profile of a vectorized
  ``handle_batch``).
- **sim** — the discrete-event simulator with the identical service
  distribution and ``sim_marginal_cost``, forming the same
  size-or-deadline batches via the shared :class:`~repro.batching.BatchPolicy`.

The expected shape is a *frontier*: size 1 (batching off) saturates —
queues grow without bound and p99 explodes — while growing batch sizes
amortize per-request cost, restore headroom, and collapse the tail, at
the price of up to ``max_batch_delay`` of added latency per request at
low occupancy. Past the knee, bigger batches buy little: the server is
already unsaturated and the delay bound dominates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Tuple

from ..apps.base import Application, Client
from ..batching import BatchingConfig
from ..core import HarnessConfig, run_harness
from ..sim import SimConfig, simulate_load
from ..sim.calibration import AppProfile
from ..stats import LogNormal
from .reporting import ascii_table

__all__ = [
    "BatchingCell",
    "BatchingFrontier",
    "run_fig_batching",
    "render_fig_batching",
]

#: Per-request service-time distribution (shared by both modes).
_SERVICE = LogNormal(mean=1e-3, sigma=0.5)
#: Marginal cost of each batch member past the first, as a fraction of
#: its full service draw — the amortization a vectorized ``handle_batch``
#: buys (matmul batching, grouped lookups).
_MARGINAL = 0.35
#: Offered load as a multiple of one worker's *unbatched* capacity.
_OVERLOAD = 1.3


class _BatchSleepClient(Client):
    """Draws per-request service times from the shared distribution."""

    def __init__(self, seed: int) -> None:
        import random

        self._rng = random.Random(seed ^ 0xBA7C)

    def next_request(self) -> float:
        return _SERVICE.sample(self._rng)


class _BatchSleepApp(Application):
    """Sleep app with the amortized batch profile.

    The payload *is* the service time. A batch sleeps the first
    member's full draw plus ``_MARGINAL`` of every further member's —
    the same window the simulator charges, so live and sim frontiers
    are directly comparable.
    """

    name = "synthetic-batch-sleep"

    def setup(self) -> None:
        pass

    def process(self, payload: float) -> float:
        time.sleep(payload)
        return payload

    def handle_batch(self, payloads):
        if payloads:
            time.sleep(payloads[0] + _MARGINAL * sum(payloads[1:]))
        return list(payloads)

    def make_client(self, seed: int = 0) -> Client:
        return _BatchSleepClient(seed)


@dataclass(frozen=True)
class BatchingCell:
    """One (mode, max_batch_size) point of the frontier."""

    mode: str  # "live" | "sim"
    max_batch_size: int  # 1 = batching disabled
    throughput_qps: float
    p99: float
    mean_occupancy: float
    utilization: float


@dataclass(frozen=True)
class BatchingFrontier:
    """The throughput-vs-p99 frontier, live and simulated."""

    offered_qps: float
    max_batch_delay: float
    batch_sizes: Tuple[int, ...]
    #: (mode, max_batch_size) -> cell.
    cells: Dict[Tuple[str, int], BatchingCell]

    def verdict(self) -> Tuple[bool, str]:
        """(reproduced?, sentence). Judged on the deterministic
        simulator; the live arms corroborate but carry scheduler
        noise."""
        off = self.cells[("sim", 1)]
        best = max(
            (self.cells[("sim", size)] for size in self.batch_sizes[1:]),
            key=lambda cell: cell.throughput_qps,
        )
        ok = (
            best.throughput_qps > 1.15 * off.throughput_qps
            and best.p99 < off.p99
        )
        if ok:
            sentence = (
                f"batching moves the frontier: size {best.max_batch_size} "
                f"serves {best.throughput_qps:.0f}/s at "
                f"p99 {best.p99 * 1e3:.1f}ms vs the unbatched "
                f"{off.throughput_qps:.0f}/s at {off.p99 * 1e3:.1f}ms "
                f"(mean occupancy {best.mean_occupancy:.1f})"
            )
        else:
            sentence = (
                "WARNING: batching did not dominate the unbatched arm "
                "on both throughput and p99"
            )
        return ok, sentence


def run_fig_batching(
    measure_requests: int = 3000,
    seed: int = 0,
    batch_sizes: Tuple[int, ...] = (1, 2, 4, 8),
    max_batch_delay: float = 0.002,
) -> BatchingFrontier:
    """Sweep ``max_batch_size`` live and simulated at fixed overload.

    Size 1 is the baseline: batching stays *disabled* (not a 1-batch),
    so the sweep includes the exact pre-batching code path.
    """
    offered = _OVERLOAD / _SERVICE.mean
    warmup = max(100, measure_requests // 10)
    sim_profile = AppProfile(name="synthetic-batch-sleep", service=_SERVICE)

    cells: Dict[Tuple[str, int], BatchingCell] = {}
    for size in batch_sizes:
        batching = (
            BatchingConfig(
                enabled=True,
                max_batch_size=size,
                max_batch_delay=max_batch_delay,
                sim_marginal_cost=_MARGINAL,
            )
            if size > 1
            else BatchingConfig()
        )
        live = run_harness(
            _BatchSleepApp(),
            HarnessConfig(
                configuration="integrated",
                qps=offered,
                n_threads=1,
                warmup_requests=warmup,
                measure_requests=measure_requests,
                seed=seed,
                batching=batching,
            ),
        )
        cells[("live", size)] = BatchingCell(
            mode="live",
            max_batch_size=size,
            throughput_qps=live.achieved_qps,
            p99=live.sojourn.p99,
            mean_occupancy=live.stats.mean_batch_size,
            utilization=0.0,  # the live harness does not measure this
        )
        sim = simulate_load(
            sim_profile,
            SimConfig(
                configuration="integrated",
                qps=offered,
                n_threads=1,
                warmup_requests=warmup,
                measure_requests=measure_requests,
                seed=seed,
                batching=batching,
            ),
        )
        cells[("sim", size)] = BatchingCell(
            mode="sim",
            max_batch_size=size,
            throughput_qps=sim.stats.count / sim.virtual_time,
            p99=sim.sojourn.p99,
            mean_occupancy=sim.stats.mean_batch_size,
            utilization=sim.utilization,
        )
    return BatchingFrontier(
        offered_qps=offered,
        max_batch_delay=max_batch_delay,
        batch_sizes=tuple(batch_sizes),
        cells=cells,
    )


def render_fig_batching(result: BatchingFrontier) -> str:
    headers = [
        "mode", "max_batch", "throughput", "p99", "occupancy", "util",
    ]
    rows = []
    for mode in ("live", "sim"):
        for size in result.batch_sizes:
            cell = result.cells[(mode, size)]
            rows.append([
                mode,
                "off" if size == 1 else str(size),
                f"{cell.throughput_qps:.0f}/s",
                f"{cell.p99 * 1e3:.2f}ms",
                f"{cell.mean_occupancy:.2f}",
                "-" if mode == "live" else f"{cell.utilization:.2f}",
            ])
    table = ascii_table(
        headers,
        rows,
        title=(
            f"Dynamic batching frontier at {result.offered_qps:.0f} qps "
            f"offered (delay bound "
            f"{result.max_batch_delay * 1e3:.0f}ms)"
        ),
    )
    _, sentence = result.verdict()
    return f"{table}\n{sentence}"

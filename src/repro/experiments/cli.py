"""Command-line entry point: ``tailbench <experiment>``.

Regenerates any of the paper's tables/figures from the terminal::

    tailbench table1
    tailbench fig5 --fast
    tailbench all
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Tuple

from .fig2 import render_fig2, run_fig2
from .fig3 import render_fig3, run_fig3
from .fig4 import render_fig4, run_fig4
from .fig5 import render_fig5, run_fig5
from .fig6 import render_fig6, run_fig6
from .fig7 import render_fig7, run_fig7
from .extensions import (
    render_ext_colocation,
    render_ext_energy,
    run_ext_colocation,
    run_ext_energy,
)
from .fig8 import render_fig8, run_fig8
from .fig_batching import render_fig_batching, run_fig_batching
from .fig_cache import render_fig_cache, run_fig_cache
from .fig_control import render_fig_control, run_fig_control
from .fig_fanout import render_fig_fanout, run_fig_fanout
from .fig_live import render_fig_live, run_fig_live
from .fig_resilience import render_fig_resilience, run_fig_resilience
from .fig_topology import render_fig_topology, run_fig_topology
from .table1 import render_table1, run_table1

__all__ = ["main", "EXPERIMENTS", "EXTENSIONS"]

#: name -> (runner(measure_kwargs) -> data, renderer(data) -> str)
EXPERIMENTS: Dict[str, Tuple[Callable, Callable]] = {
    "table1": (run_table1, render_table1),
    "fig2": (run_fig2, render_fig2),
    "fig3": (run_fig3, render_fig3),
    "fig4": (run_fig4, render_fig4),
    "fig5": (run_fig5, render_fig5),
    "fig6": (run_fig6, render_fig6),
    "fig7": (run_fig7, render_fig7),
    "fig8": (run_fig8, render_fig8),
}

#: Extension studies (not paper artifacts; excluded from "all").
EXTENSIONS: Dict[str, Tuple[Callable, Callable]] = {
    "ext-colocation": (run_ext_colocation, render_ext_colocation),
    "ext-energy": (run_ext_energy, render_ext_energy),
    # Multi-server topology: round-robin vs JSQ at 4 replicas, run both
    # live and simulated (runs the live harness — minutes, not seconds).
    "fig-topology": (run_fig_topology, render_fig_topology),
    # Control plane: static vs SLO-controlled server under a 0.5x->1.5x
    # load step, live and simulated (runs the live harness — seconds).
    "fig-control": (run_fig_control, render_fig_control),
    # Dynamic batching: max_batch_size sweep at fixed overload, the
    # throughput-vs-p99 frontier, live and simulated (seconds).
    "fig-batching": (run_fig_batching, render_fig_batching),
    # Failure-aware serving: retry-storm chaos scenario, undefended
    # metastable collapse vs health-layer recovery, live and simulated
    # (live arms run ~30s each at full scale).
    "fig-resilience": (run_fig_resilience, render_fig_resilience),
    # Sharded vector search: scatter-gather fan-out at K in {1,2,4,8},
    # measured e2e p99 vs the order-statistic prediction, live and
    # simulated (live arms build IVF indexes — a minute or two).
    "fig-fanout": (run_fig_fanout, render_fig_fanout),
    # Caching tier: Zipf closed-form hit rates at C in {1%,5%,20%} of
    # keyspace, the cold-cache restart spike, and off-run bit-identity,
    # live and simulated (live arm serves vsearch — tens of seconds).
    "fig-cache": (run_fig_cache, render_fig_cache),
    # Live SLO engine: slow-replica burn caught by multi-window
    # burn-rate alerting and explained by tail attribution, live and
    # simulated (live arm runs ~16s at full scale).
    "fig-live": (run_fig_live, render_fig_live),
}

_FAST_KWARGS = {
    "table1": {"measure_requests": 4000, "n_instructions": 100_000},
    "fig2": {"n_samples": 4000},
    "fig3": {"measure_requests": 3000},
    "fig4": {"measure_requests": 3000},
    "fig5": {"measure_requests": 3000},
    "fig6": {"measure_requests": 3000},
    "fig7": {"measure_requests": 3000},
    "fig8": {"measure_requests": 5000},
    "ext-colocation": {"measure_requests": 2500},
    "ext-energy": {"measure_requests": 3000},
    "fig-topology": {"measure_requests": 1200},
    "fig-control": {"step_seconds": 0.75},
    "fig-batching": {"measure_requests": 1200},
    "fig-fanout": {"measure_requests": 1500, "modes": ("sim",)},
    "fig-cache": {"measure_requests": 5000, "modes": ("sim",)},
    "fig-resilience": {"time_scale": 0.2, "modes": ("sim",)},
    "fig-live": {"time_scale": 0.25, "modes": ("sim",)},
}


def run_experiment(name: str, fast: bool = False, seed: int = 0) -> str:
    """Run one experiment and return its rendered output."""
    registry = {**EXPERIMENTS, **EXTENSIONS}
    try:
        runner, renderer = registry[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(registry)}"
        ) from None
    kwargs = dict(_FAST_KWARGS[name]) if fast else {}
    kwargs["seed"] = seed
    return renderer(runner(**kwargs))


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "trace":
        # ``tailbench trace <app> ...`` has its own option surface;
        # delegate before the experiment parser rejects it.
        from .trace_cli import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "tail":
        # ``tailbench tail <app> ...`` — tail attribution, same idea.
        from .tail_cli import main as tail_main

        return tail_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="tailbench",
        description="Regenerate TailBench (IISWC 2016) tables and figures"
        " (or inspect one workload: tailbench trace <app> --help, "
        "tailbench tail <app> --help).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + sorted(EXTENSIONS) + ["all"],
        help="which table/figure to regenerate ('all' covers the "
        "paper artifacts; ext-* studies run individually)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="smaller sample sizes (quick look, noisier tails)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--save", metavar="DIR", default=None,
        help="also write each experiment's output to DIR/<name>.txt",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        output = run_experiment(name, fast=args.fast, seed=args.seed)
        print(output)
        print()
        if args.save:
            import pathlib

            directory = pathlib.Path(args.save)
            directory.mkdir(parents=True, exist_ok=True)
            (directory / f"{name}.txt").write_text(output + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

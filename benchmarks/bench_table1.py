"""Table I: application characterization (latency + MPKI rows).

Regenerates both halves of Table I and checks the reproduction's shape
criteria: latencies within 3x of the paper's cells and the headline
MPKI orderings preserved.
"""

from repro.experiments.table1 import (
    APP_ORDER,
    PAPER_TABLE1,
    render_table1,
    run_table1,
)

MEASURE_REQUESTS = 8000
N_INSTRUCTIONS = 200_000


def test_table1(benchmark, save_result, save_baseline):
    rows = benchmark.pedantic(
        run_table1,
        kwargs={
            "measure_requests": MEASURE_REQUESTS,
            "n_instructions": N_INSTRUCTIONS,
        },
        rounds=1,
        iterations=1,
    )
    text = render_table1(rows)
    print("\n" + text)
    save_result("table1", text)

    by_name = {row.name: row for row in rows}
    assert [row.name for row in rows] == list(APP_ORDER)

    # Latency rows: within 3x of every paper cell, monotone in load.
    for row in rows:
        paper = PAPER_TABLE1[row.name]
        for j, load in enumerate((0.2, 0.5, 0.7)):
            ours, theirs = row.p95_by_load[load], paper[5 + j]
            assert theirs / 3 < ours < theirs * 3, (row.name, load)
        assert row.p95_by_load[0.2] < row.p95_by_load[0.5] < row.p95_by_load[0.7]

    # MPKI rows: the paper's strongest cross-app contrasts.
    assert by_name["shore"].l1i_mpki > 10 * by_name["masstree"].l1i_mpki
    assert by_name["img-dnn"].l1d_mpki > 2 * by_name["moses"].l1d_mpki
    assert by_name["silo"].l1d_mpki < by_name["masstree"].l1d_mpki
    assert by_name["moses"].l3_mpki > by_name["xapian"].l3_mpki + 10
    assert by_name["img-dnn"].branch_mpki < 1.0

    benchmark.extra_info["apps"] = len(rows)
    save_baseline("table1", {
        "apps": len(rows),
        "masstree_p95_load_0.5_ms": by_name["masstree"].p95_by_load[0.5],
        "shore_l1i_mpki": by_name["shore"].l1i_mpki,
        "masstree_l1i_mpki": by_name["masstree"].l1i_mpki,
        "moses_l3_mpki": by_name["moses"].l3_mpki,
        "xapian_l3_mpki": by_name["xapian"].l3_mpki,
    })

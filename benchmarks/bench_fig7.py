"""Fig. 7: harness-configuration validation with 4 worker threads.

Shape criteria: same story as Fig. 5 at 4 threads — configuration
agreement for long-request apps, early saturation for specjbb on the
networked/loopback paths.
"""

from repro.experiments.fig7 import render_fig7, run_fig7

MEASURE_REQUESTS = 4000


def test_fig7(benchmark, save_result, save_baseline):
    results = benchmark.pedantic(
        run_fig7,
        kwargs={"measure_requests": MEASURE_REQUESTS},
        rounds=1,
        iterations=1,
    )
    text = render_fig7(results)
    print("\n" + text)
    save_result("fig7", text)

    # specjbb still saturates early under networked/loopback.
    assert 0.12 < results["specjbb"].saturation_drop("networked") < 0.35
    assert 0.10 < results["specjbb"].saturation_drop("loopback") < 0.35

    # Long-request apps: configurations agree at 4 threads too.
    # (masstree's ~200 us requests make the ~100 us wire RTT visible at
    # low load, where 4 threads leave almost no queueing to mask it.)
    for name in ("masstree", "xapian", "img-dnn"):
        comparison = results[name]
        assert comparison.saturation_drop("networked") < 0.07, name
        tolerance = 0.8 if name == "masstree" else 0.3
        for i in range(5):
            values = [
                comparison.curves[setup].p95[i]
                for setup in ("networked", "loopback", "integrated")
            ]
            spread = (max(values) - min(values)) / min(values)
            assert spread < tolerance, (name, i)
    benchmark.extra_info["apps"] = len(results)
    save_baseline("fig7", {
        "apps": len(results),
        "specjbb_networked_drop": (
            results["specjbb"].saturation_drop("networked")
        ),
        "specjbb_loopback_drop": (
            results["specjbb"].saturation_drop("loopback")
        ),
    })

"""Fig. 3: mean/p95/p99 latency vs. request rate, single thread.

Shape criteria: latencies rise with load for every app; tails blow up
near saturation much faster than means; saturation rates sit near the
per-app analytic capacity.
"""

import pytest

from repro.experiments.fig3 import render_fig3, run_fig3
from repro.sim import network_model_for, paper_profile

MEASURE_REQUESTS = 6000


def test_fig3(benchmark, save_result, save_baseline):
    curves = benchmark.pedantic(
        run_fig3,
        kwargs={"measure_requests": MEASURE_REQUESTS},
        rounds=1,
        iterations=1,
    )
    text = render_fig3(curves)
    print("\n" + text)
    save_result("fig3", text)

    occupancy = network_model_for("networked").server_occupancy
    for name, curve in curves.items():
        # Latency ordering within every point: mean <= p95 <= p99.
        for m, a, b in zip(curve.mean, curve.p95, curve.p99):
            assert m <= a <= b
        # Monotone-ish in load (tails rise overall).
        assert curve.p95[-1] > 3 * curve.p95[0], name
        assert curve.mean[-1] > curve.mean[0], name
        # Tail blow-up: in absolute terms the p99 opens a much larger
        # gap than the mean as load approaches saturation.
        p99_gap = curve.p99[-1] - curve.p99[0]
        mean_gap = curve.mean[-1] - curve.mean[0]
        assert p99_gap > 1.5 * mean_gap, name
        # Saturation sits at the analytic capacity for this config.
        capacity = 1.0 / (paper_profile(name).service.mean + occupancy)
        assert curve.qps[-1] == pytest.approx(0.95 * capacity, rel=1e-6), name
    benchmark.extra_info["apps"] = len(curves)
    metrics = {"apps": len(curves)}
    for name, curve in curves.items():
        metrics[f"{name}_sat_qps"] = curve.qps[-1]
        metrics[f"{name}_p99_low_load_s"] = curve.p99[0]
    save_baseline("fig3", metrics)

"""Ablations of the methodology's design choices.

Each test removes one element of the TailBench methodology (open-loop
arrivals, Poisson interarrivals, warmup, HDR precision, DRRIP, the
interrupt-steering assumption in the network model) and quantifies how
much the measured result would change — the evidence for why the
methodology is built the way it is.
"""

import random

from repro.core import StatsCollector
from repro.sim import (
    AppProfile,
    Engine,
    ServiceTimeModel,
    SimConfig,
    SimulatedServer,
    simulate_app,
    simulate_load,
)
from repro.sim.network_model import NETWORK_MODELS
from repro.stats import Exponential, HdrHistogram, percentile


def test_ablation_closed_loop_underestimates_tail(
    benchmark, save_result, save_baseline
):
    """Coordinated omission: closed-loop load testing vs open-loop."""
    service_mean = 1e-3
    profile = AppProfile(name="ab", service=Exponential.from_mean(service_mean))

    def run_both():
        open_result = simulate_load(
            profile,
            SimConfig(qps=0.8 / service_mean, measure_requests=20_000,
                      warmup_requests=2000),
        )
        # Closed loop: 1 client, next request only after the response.
        engine = Engine()
        collector = StatsCollector()
        server = SimulatedServer(
            engine, ServiceTimeModel(profile.service),
            NETWORK_MODELS["integrated"], 1, collector, random.Random(0),
        )
        state = {"sent": 0}

        def send_next():
            if state["sent"] < 20_000:
                state["sent"] += 1
                server.submit(engine.now)

        original = server._on_response

        def on_response(request):
            original(request)
            send_next()

        server._on_response = on_response
        send_next()
        engine.run()
        closed_p99 = collector.snapshot().summary("sojourn").p99
        return open_result.sojourn.p99, closed_p99

    open_p99, closed_p99 = benchmark.pedantic(run_both, rounds=1, iterations=1)
    error = open_p99 / closed_p99
    text = (
        f"open-loop p99: {open_p99 * 1e3:.2f} ms\n"
        f"closed-loop p99: {closed_p99 * 1e3:.2f} ms\n"
        f"closed loop underestimates by {error:.1f}x"
    )
    print("\n" + text)
    save_result("ablation_closed_loop", text)
    # Prior work reports orders-of-magnitude errors; at 80% load the
    # factor must be large.
    assert error > 3.0
    save_baseline("ablation_closed_loop", {
        "open_p99_s": open_p99,
        "closed_p99_s": closed_p99,
        "underestimate_factor": error,
    })


def test_ablation_deterministic_arrivals_hide_queueing(
    benchmark, save_result, save_baseline
):
    """Poisson vs fixed interarrivals: burstiness drives tails."""

    def run_both():
        poisson = simulate_app(
            "masstree", SimConfig(qps=4000, measure_requests=15_000)
        )
        uniform = simulate_app(
            "masstree",
            SimConfig(qps=4000, measure_requests=15_000,
                      deterministic_arrivals=True),
        )
        return poisson.sojourn.p99, uniform.sojourn.p99

    poisson_p99, uniform_p99 = benchmark.pedantic(run_both, rounds=1, iterations=1)
    text = (
        f"Poisson p99: {poisson_p99 * 1e6:.0f} us\n"
        f"deterministic p99: {uniform_p99 * 1e6:.0f} us\n"
        f"evenly-spaced arrivals hide {poisson_p99 / uniform_p99:.2f}x of the tail"
    )
    print("\n" + text)
    save_result("ablation_arrivals", text)
    assert poisson_p99 > 1.3 * uniform_p99
    save_baseline("ablation_arrivals", {
        "poisson_p99_s": poisson_p99,
        "deterministic_p99_s": uniform_p99,
        "tail_ratio": poisson_p99 / uniform_p99,
    })


def test_ablation_hdr_precision(benchmark, save_result, save_baseline):
    """HDR histogram vs exact samples: error stays within the 1% claim."""

    def run():
        rng = random.Random(0)
        import math

        samples = [rng.lognormvariate(math.log(1e-3), 1.0) for _ in range(100_000)]
        hist = HdrHistogram()
        hist.record_many(samples)
        errors = {}
        for pct in (50.0, 95.0, 99.0, 99.9):
            exact = percentile(samples, pct)
            approx = hist.percentile(pct)
            errors[pct] = abs(approx - exact) / exact
        return errors

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(
        f"p{pct:g}: relative error {err:.4%}" for pct, err in errors.items()
    ) + f"\nbuckets used: 900 vs {100_000} raw samples"
    print("\n" + text)
    save_result("ablation_hdr", text)
    # Bucket midpoint reporting: worst-case half-bucket error ~4.5%,
    # typical well under the 1%-of-value bucket resolution.
    assert all(err < 0.05 for err in errors.values())
    save_baseline("ablation_hdr", {
        f"p{pct:g}_rel_error": err for pct, err in errors.items()
    })


def test_ablation_skipping_warmup_biases_tail(
    benchmark, save_result, save_baseline
):
    """Cold-start contamination without the warmup discard."""
    profile = AppProfile(name="warm", service=Exponential.from_mean(1e-3))

    def run_both():
        biased = simulate_load(
            profile,
            SimConfig(qps=900.0, measure_requests=5000, warmup_requests=0,
                      seed=3),
        )
        clean = simulate_load(
            profile,
            SimConfig(qps=900.0, measure_requests=5000, warmup_requests=1000,
                      seed=3),
        )
        return biased.sojourn.p95, clean.sojourn.p95

    biased_p95, clean_p95 = benchmark.pedantic(run_both, rounds=1, iterations=1)
    text = (
        f"without warmup p95: {biased_p95 * 1e3:.2f} ms\n"
        f"with warmup p95:    {clean_p95 * 1e3:.2f} ms\n"
        "(at 90% load the queue takes long to reach steady state; the\n"
        "unwarmed run *underestimates* the tail because its early\n"
        "requests see an empty system)"
    )
    print("\n" + text)
    save_result("ablation_warmup", text)
    assert biased_p95 < clean_p95
    save_baseline("ablation_warmup", {
        "unwarmed_p95_s": biased_p95,
        "warmed_p95_s": clean_p95,
    })


def test_ablation_drrip_vs_lru_on_scans(benchmark, save_result, save_baseline):
    """DRRIP's scan resistance vs plain LRU in the L3."""
    from repro.archsim import DrripPolicy, LruPolicy, SetAssociativeCache

    def run_policy(policy):
        cache = SetAssociativeCache(
            256 * 1024, ways=16, line_bytes=64, policy=policy
        )
        hot = [i * 64 for i in range(2048)]  # 128 KB hot set
        scan_ptr = 0x4000_0000
        for _ in range(30):
            for addr in hot:
                cache.access(addr)
            for i in range(8192):  # 512 KB scan >> cache
                cache.access(scan_ptr)
                scan_ptr += 64
        cache.reset_stats()
        for addr in hot:
            cache.access(addr)
        return cache.hits / len(hot)

    def run_both():
        return run_policy(LruPolicy()), run_policy(DrripPolicy())

    lru_hit, drrip_hit = benchmark.pedantic(run_both, rounds=1, iterations=1)
    text = (
        f"hot-set hit rate after scans: LRU {lru_hit:.1%}, "
        f"DRRIP {drrip_hit:.1%}"
    )
    print("\n" + text)
    save_result("ablation_drrip", text)
    assert drrip_hit > lru_hit
    save_baseline("ablation_drrip", {
        "lru_hot_hit_rate": lru_hit,
        "drrip_hot_hit_rate": drrip_hit,
    })


def test_ablation_interrupt_steering(benchmark, save_result, save_baseline):
    """What if NIC interrupts ran on application cores? (Sec. VI-A)

    The paper steers interrupts away from app cores; our networked
    model therefore charges only ~12 us of stack work to the worker.
    Charging the full per-end 25 us instead (no steering) roughly
    doubles silo's capacity loss.
    """
    from repro.sim import paper_profile

    def run_both():
        profile = paper_profile("silo")
        steered = profile.service_model(added_occupancy=12e-6)
        unsteered = profile.service_model(added_occupancy=25e-6)
        base = profile.service_model()
        drop_steered = 1 - steered.saturation_qps() / base.saturation_qps()
        drop_unsteered = 1 - unsteered.saturation_qps() / base.saturation_qps()
        return drop_steered, drop_unsteered

    drop_steered, drop_unsteered = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    text = (
        f"silo saturation loss with interrupt steering:    {drop_steered:.0%}\n"
        f"silo saturation loss without interrupt steering: {drop_unsteered:.0%}"
    )
    print("\n" + text)
    save_result("ablation_interrupts", text)
    assert drop_unsteered > drop_steered * 1.4
    save_baseline("ablation_interrupts", {
        "steered_drop": drop_steered,
        "unsteered_drop": drop_unsteered,
    })


def test_ablation_cpi_memory_boundness(benchmark, save_result, save_baseline):
    """Trace-grounded cross-check of the Fig. 8 case study.

    The CPI timing model over the synthetic traces independently ranks
    apps by memory-boundness: moses (and img-dnn) near the top, silo
    at the bottom — agreeing with the simulator's ideal-memory
    experiment without sharing any calibration with it.
    """
    from repro.archsim import estimate_cpi

    def run():
        return {
            name: estimate_cpi(name, n_instructions=120_000)
            for name in ("moses", "img-dnn", "silo", "xapian", "masstree")
        }

    estimates = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(
        f"{name:9s} CPI {e.cpi:5.2f}  memory-bound {e.memory_boundness:4.0%}  "
        f"ideal-memory speedup {e.ideal_memory_speedup:4.2f}x"
        for name, e in estimates.items()
    )
    print("\n" + text)
    save_result("ablation_cpi", text)
    save_baseline("ablation_cpi", {
        f"{name}_memory_boundness": e.memory_boundness
        for name, e in estimates.items()
    })
    assert estimates["moses"].memory_boundness > 0.7
    assert estimates["silo"].memory_boundness < 0.5
    assert (
        estimates["moses"].ideal_memory_speedup
        > 2 * estimates["silo"].ideal_memory_speedup
    )


def test_ablation_energy_policies(benchmark, save_result, save_baseline):
    """Extension study: power-management policies vs. tail latency.

    The canonical shape: reactive DVFS dominates static-low on latency
    at comparable energy; deep sleep saves power but shifts its wakeup
    latency into the tail.
    """
    from repro.energy import (
        DeepSleep,
        NoSleep,
        QueueBoost,
        StaticFrequency,
        simulate_energy,
    )
    from repro.sim import paper_profile

    def run():
        profile = paper_profile("masstree")
        qps = 0.3 / profile.service.mean
        results = {}
        for label, freq, sleep in (
            ("max", StaticFrequency(1.0), NoSleep()),
            ("low", StaticFrequency(0.6), NoSleep()),
            ("boost", QueueBoost(low=0.6, high=1.0), NoSleep()),
            ("sleep", StaticFrequency(1.0), DeepSleep()),
        ):
            results[label] = simulate_energy(
                profile.service, qps, frequency_policy=freq,
                sleep_policy=sleep, measure_requests=8000,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(
        f"{label:6s} p95 {r.sojourn.p95 * 1e6:7.1f} us  "
        f"avg power {r.average_power:.3f}x"
        for label, r in results.items()
    )
    print("\n" + text)
    save_result("ablation_energy", text)
    save_baseline("ablation_energy", {
        f"{label}_{metric}": value
        for label, r in results.items()
        for metric, value in (
            ("p95_s", r.sojourn.p95), ("avg_power", r.average_power)
        )
    })
    assert results["low"].average_power < results["max"].average_power
    assert results["boost"].sojourn.p95 < results["low"].sojourn.p95
    assert results["boost"].average_power < results["max"].average_power
    assert results["sleep"].average_power < results["max"].average_power
    assert results["sleep"].sojourn.p95 > results["max"].sojourn.p95


def test_ablation_shared_vs_partitioned_queue(
    benchmark, save_result, save_baseline
):
    """Why the harness uses one shared request queue (Fig. 1).

    Random per-worker dispatch strands requests behind busy workers
    while others idle; the shared queue is work-conserving. Same
    offered load, several-fold tail difference.
    """
    from repro.sim import SimConfig, compare_dispatch, paper_profile

    def run():
        profile = paper_profile("masstree")
        config = SimConfig(
            qps=0.7 * 4 / profile.service.mean,
            n_threads=4,
            measure_requests=15_000,
        )
        return compare_dispatch(profile, config)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    shared, partitioned = results["shared"], results["random"]
    text = (
        f"shared queue:    p95 {shared.sojourn.p95 * 1e6:7.1f} us, "
        f"p99 {shared.sojourn.p99 * 1e6:7.1f} us\n"
        f"random dispatch: p95 {partitioned.sojourn.p95 * 1e6:7.1f} us, "
        f"p99 {partitioned.sojourn.p99 * 1e6:7.1f} us"
    )
    print("\n" + text)
    save_result("ablation_dispatch", text)
    assert shared.sojourn.p95 < 0.6 * partitioned.sojourn.p95
    save_baseline("ablation_dispatch", {
        "shared_p95_s": shared.sojourn.p95,
        "random_p95_s": partitioned.sojourn.p95,
    })


def test_ablation_bursty_traffic(benchmark, save_result, save_baseline):
    """Tails under MMPP burst traffic vs Poisson at equal offered load."""
    import random as _random

    from repro.core import ArrivalSchedule, BurstyArrivals, PoissonArrivals
    from repro.core.collector import StatsCollector
    from repro.sim import Engine, ServiceTimeModel, SimulatedServer
    from repro.sim.network_model import NETWORK_MODELS
    from repro.stats import Exponential

    service = Exponential.from_mean(1e-3)
    qps = 600.0

    def measure(process):
        engine = Engine()
        collector = StatsCollector(warmup_requests=2000)
        server = SimulatedServer(
            engine, ServiceTimeModel(service),
            NETWORK_MODELS["integrated"], 1, collector, _random.Random(1),
        )
        for t in ArrivalSchedule.generate(process, 30_000, seed=4):
            server.submit(t)
        engine.run()
        return collector.snapshot().summary("sojourn")

    def run():
        return (
            measure(PoissonArrivals(qps)),
            measure(BurstyArrivals(qps=qps, burstiness=6.0, burst_fraction=0.15)),
        )

    poisson, bursty = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        f"Poisson @600qps: p99 {poisson.p99 * 1e3:.2f} ms\n"
        f"MMPP    @600qps: p99 {bursty.p99 * 1e3:.2f} ms\n"
        f"burstiness inflates p99 by {bursty.p99 / poisson.p99:.1f}x at "
        f"equal offered load"
    )
    print("\n" + text)
    save_result("ablation_bursty", text)
    assert bursty.p99 > 1.5 * poisson.p99
    save_baseline("ablation_bursty", {
        "poisson_p99_s": poisson.p99,
        "bursty_p99_s": bursty.p99,
        "inflation": bursty.p99 / poisson.p99,
    })

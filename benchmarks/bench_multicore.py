"""Multi-core scaling of the process execution engine (img-dnn).

The GIL caps every threaded topology at roughly one core of aggregate
application work, no matter how many replicas the topology declares.
``ExecutionConfig(mode="process")`` moves each replica's worker pool
into its own OS process, so aggregate saturated throughput should
scale with replica count until the machine runs out of cores.

This benchmark measures saturated aggregate QPS of img-dnn at 1 and 4
single-threaded process replicas (offered load ~60% above measured
capacity, achieved throughput reported) and asserts the scaling floor
of the acceptance criterion — ≥3x at 4 replicas — whenever the machine
actually has 4+ cores. On smaller machines the numbers are still
measured and recorded (the baseline's ``meta.cpu_count`` says what to
make of them), but the floor is not asserted: a 1-core box cannot
scale by adding processes.

Run directly for a table::

    PYTHONPATH=src python benchmarks/bench_multicore.py [--replicas 4]

or through pytest (CI runs the 2-replica smoke)::

    PYTHONPATH=src python -m pytest benchmarks/bench_multicore.py -q
"""

import argparse
import os
import sys
import time

from repro.apps import create_app
from repro.core import ExecutionConfig, HarnessConfig, run_harness

_APP_KWARGS = dict(train_samples=300, epochs=3)
_CALIBRATE_OPS = 40
_OVERSUBSCRIBE = 1.6
#: Target per-request service time. One raw img-dnn inference is tens
#: of microseconds — IPC framing would dominate and the benchmark
#: would measure the pipe, not the substrate — so requests run a
#: calibrated ensemble of inferences sized to ~1 ms, the realistic
#: end of the app's latency range and large enough to amortize IPC.
_TARGET_SERVICE = 1e-3


class EnsembleApp:
    """img-dnn serving an ensemble: ``repeat`` inferences per request."""

    def __init__(self, app, repeat: int) -> None:
        self._app = app
        self.repeat = repeat

    def setup(self) -> None:
        self._app.setup()

    def process(self, payload):
        out = None
        for _ in range(self.repeat):
            out = self._app.process(payload)
        return out

    def make_client(self, seed: int = 0):
        return self._app.make_client(seed=seed)


def _build_app():
    app = create_app("img-dnn", **_APP_KWARGS)
    app.setup()
    single = _calibrate(app)
    return EnsembleApp(app, repeat=max(1, round(_TARGET_SERVICE / single)))


def _calibrate(app, seed: int = 0) -> float:
    """Measured single-thread service time (seconds/op)."""
    client = app.make_client(seed=seed)
    payloads = [client.next_request() for _ in range(_CALIBRATE_OPS)]
    for p in payloads[:5]:  # warm caches outside the timed window
        app.process(p)
    start = time.perf_counter()
    for p in payloads:
        app.process(p)
    return (time.perf_counter() - start) / len(payloads)


def measure_capacity(
    app,
    n_servers: int,
    mode: str,
    service_time: float,
    measure_requests: int = 600,
):
    """Achieved QPS under saturating open-loop load.

    Offered load is set ``_OVERSUBSCRIBE`` above the replicas' nominal
    capacity, so achieved throughput reports what the topology can
    actually sustain, not the offered rate.
    """
    qps = (n_servers / service_time) * _OVERSUBSCRIBE
    config = HarnessConfig(
        qps=qps,
        warmup_requests=max(40, measure_requests // 10),
        measure_requests=measure_requests,
        n_threads=1,
        n_servers=n_servers,
        balancer="round_robin",
        seed=7,
        execution=ExecutionConfig(mode=mode),
    )
    return run_harness(app, config)


def run_scaling(max_replicas: int = 4, measure_requests: int = 600):
    """The benchmark body: returns (rows, service_time)."""
    app = _build_app()
    service_time = _calibrate(app)
    rows = []
    for n_servers, mode in (
        (1, "process"),
        (max_replicas, "process"),
        (max_replicas, "threaded"),
    ):
        result = measure_capacity(
            app, n_servers, mode, service_time,
            measure_requests=measure_requests * n_servers,
        )
        rows.append((n_servers, mode, result))
    return rows, service_time


def render(rows, service_time: float) -> str:
    base_qps = rows[0][2].achieved_qps
    lines = [
        "multi-core scaling: img-dnn, single-threaded replicas, "
        f"service_time={service_time * 1e3:.2f} ms "
        f"(cpu_count={os.cpu_count()})",
        f"{'replicas':>8} {'mode':>9} {'achieved qps':>13} "
        f"{'speedup':>8} {'p99 ms':>8}",
    ]
    for n_servers, mode, result in rows:
        p99 = result.sojourn.percentiles.get(99.0, float("nan"))
        lines.append(
            f"{n_servers:>8} {mode:>9} {result.achieved_qps:>13.1f} "
            f"{result.achieved_qps / base_qps:>8.2f} {p99 * 1e3:>8.2f}"
        )
    return "\n".join(lines)


def _check_attribution(result, n_servers: int) -> None:
    per = result.stats.per_server()
    assert len(per) == n_servers, (
        f"expected records from {n_servers} replicas, got {sorted(per)}"
    )
    assert sum(s.count for s in per.values()) == result.stats.count
    assert not result.server_errors, result.server_errors[:3]


def test_multicore_scaling(save_baseline, save_result):
    """1 vs 4 process replicas; the ≥3x floor is asserted on 4+ cores."""
    rows, service_time = run_scaling(max_replicas=4)
    one, four, threaded = (row[2] for row in rows)
    _check_attribution(one, 1)
    _check_attribution(four, 4)
    speedup = four.achieved_qps / one.achieved_qps
    save_result("multicore", render(rows, service_time))
    save_baseline(
        "multicore",
        {
            "service_time_ms": service_time * 1e3,
            "qps_1proc": one.achieved_qps,
            "qps_4proc": four.achieved_qps,
            "qps_4threaded": threaded.achieved_qps,
            "speedup_4proc": speedup,
        },
        execution="process",
        audit=four.stats.send_audit(),
    )
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 3.0, (
            f"4 process replicas achieved only {speedup:.2f}x the "
            f"single-replica throughput on a {os.cpu_count()}-core machine"
        )


def test_multicore_smoke():
    """Fast 2-replica process-mode sanity: correct counts, no errors."""
    app = _build_app()
    service_time = _calibrate(app)
    result = measure_capacity(
        app, 2, "process", service_time, measure_requests=240
    )
    _check_attribution(result, 2)
    assert result.stats.count == 240
    if (os.cpu_count() or 1) >= 2:
        single = measure_capacity(
            app, 1, "process", service_time, measure_requests=120
        )
        assert result.achieved_qps > 1.15 * single.achieved_qps, (
            f"2 replicas: {result.achieved_qps:.0f} qps vs "
            f"{single.achieved_qps:.0f} on {os.cpu_count()} cores"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--replicas", type=int, default=4)
    parser.add_argument("--measure", type=int, default=600,
                        help="measured requests per replica")
    args = parser.parse_args(argv)
    rows, service_time = run_scaling(
        max_replicas=args.replicas, measure_requests=args.measure
    )
    print(render(rows, service_time))
    return 0


if __name__ == "__main__":
    sys.exit(main())

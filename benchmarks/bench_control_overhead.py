"""Control-plane overhead: repeated A/B runs on the integrated config.

Quantifies what the closed-loop control plane costs on the hot path:

- control **disabled** (the default): structurally zero — the queue's
  gate/buffer hooks are ``None``, the transport's classify/observe
  hooks are one ``is None`` test each, and no control thread exists;
  A/B deltas are indistinguishable from run-to-run noise.
- control **enabled** (admission + priority + autoscaler at a healthy
  operating point): each send takes one seeded-RNG classification and
  one gate decision under a lock, each completion appends one float to
  the AIMD window, and a 20 ms control loop reads snapshots in the
  background. The run is sized so no controller *acts* (no sheds, no
  scaling), isolating pure mechanism cost from policy effects.

Run:  pytest benchmarks/bench_control_overhead.py --benchmark-only
The rendered table lands in benchmarks/results/control_overhead.txt.
"""

import statistics

from repro.control import (
    AdmissionConfig,
    AutoscalerConfig,
    ControlPlaneConfig,
    NO_CONTROL,
    PriorityConfig,
    RequestClassSpec,
)
from repro.core import HarnessConfig
from repro.core.harness import run_harness

REPEATS = 5
#: ~300us of busy-work per request at 60% load, far from every control
#: threshold so the A/B measures mechanism, not shedding or scaling.
CONFIG = dict(qps=1200, warmup_requests=50, measure_requests=800)

CONTROL_ON = ControlPlaneConfig(
    enabled=True,
    tick_interval=0.02,
    admission=AdmissionConfig(target_p99=0.5, initial_limit=4096),
    priority=PriorityConfig(
        classes=(
            RequestClassSpec("interactive", priority=1, fraction=0.9),
            RequestClassSpec("batch", priority=0, fraction=0.1),
        ),
        mode="strict",
    ),
    autoscaler=AutoscalerConfig(
        min_servers=1, max_servers=2, scale_up_depth=1e9,
        scale_down_util=0.0,
    ),
)


class ConstantApp:
    def __init__(self, iterations=3000):
        self.iterations = iterations

    def setup(self):
        pass

    def process(self, payload):
        acc = 0
        for i in range(self.iterations):
            acc += i * i
        return acc

    def make_client(self, seed=0):
        class _Client:
            def next_request(self):
                return None

        return _Client()


def _runs(control, seeds, app):
    results = []
    for seed in seeds:
        config = HarnessConfig(seed=seed, control=control, **CONFIG)
        results.append(run_harness(app, config))
    return results


def test_control_overhead(benchmark, save_result, save_baseline):
    """Median p50/p99 delta, control plane enabled vs disabled."""
    app = ConstantApp()
    seeds = list(range(REPEATS))
    off = _runs(NO_CONTROL, seeds, app)
    on = _runs(CONTROL_ON, seeds, app)

    def med(results, pct):
        return statistics.median(getattr(r.sojourn, pct) for r in results)

    lines = [
        "control-plane overhead (integrated, 1200 qps, ~300us service, "
        f"medians of {REPEATS} runs):"
    ]
    deltas = {}
    for pct in ("p50", "p99"):
        base, controlled = med(off, pct), med(on, pct)
        delta = 100.0 * (controlled - base) / base if base else 0.0
        deltas[pct] = delta
        lines.append(
            f"  {pct}: off={base * 1e6:.1f}us on={controlled * 1e6:.1f}us "
            f"delta={delta:+.2f}%"
        )
    counts = on[0].control_counts
    lines.append(
        f"  controlled run: ticks={counts['ticks']} "
        f"admitted={counts['admitted']} sheds="
        f"{counts['codel_dropped'] + counts['limit_dropped']} "
        f"scale_actions={counts['scale_ups'] + counts['scale_downs']}"
    )
    report = "\n".join(lines)
    print(report)
    save_result("control_overhead", report)

    benchmark(lambda: None)  # timing lives in the A/B above
    # Every controlled run must have admitted everything: the A/B is
    # invalid if policy (shedding/scaling) contaminated it.
    for result in on:
        assert result.outcomes.get("shed", 0) == 0
        assert result.control_counts["scale_ups"] == 0
    # The enabled path costs a few us per request (classify + gate +
    # window append); bound the stable p50 with CI-container headroom.
    assert deltas["p50"] < 15.0
    save_baseline("control_overhead", {
        "p50_delta_pct": deltas["p50"],
        "p99_delta_pct": deltas["p99"],
        "ticks": counts["ticks"],
    })

"""Fig. 5: harness-configuration validation, single-threaded.

Shape criteria (the paper's annotations): networked/loopback saturate
~39% (silo) and ~23% (specjbb) below integrated; the six long-request
apps agree across configurations; simulation differs from integrated by
each app's constant speed factor (red annotations: 10-32%).
"""

import pytest

from repro.experiments.fig5 import render_fig5, run_fig5

MEASURE_REQUESTS = 4000

#: Fig. 5's red annotations: simulation-vs-integrated saturation gap.
PAPER_SIM_ERROR = {
    "xapian": 0.10, "masstree": 0.16, "moses": 0.20, "sphinx": 0.16,
    "img-dnn": 0.31, "shore": 0.32,
}


def test_fig5(benchmark, save_result, save_baseline):
    results = benchmark.pedantic(
        run_fig5,
        kwargs={"measure_requests": MEASURE_REQUESTS},
        rounds=1,
        iterations=1,
    )
    text = render_fig5(results)
    print("\n" + text)
    save_result("fig5", text)

    # Green annotations: short-request apps lose capacity on the wire.
    assert results["silo"].saturation_drop("networked") == pytest.approx(
        0.39, abs=0.08
    )
    assert results["specjbb"].saturation_drop("networked") == pytest.approx(
        0.23, abs=0.08
    )

    # Long-request apps: all three real-system configurations agree.
    # masstree's ~200 us requests sit between the extremes: the ~100 us
    # wire RTT is visible at low load (as in Table I's masstree row)
    # but still far from silo/specjbb's capacity loss.
    for name in ("xapian", "masstree", "moses", "sphinx", "img-dnn", "shore"):
        comparison = results[name]
        assert comparison.saturation_drop("networked") < 0.07, name
        # p95 curves nearly coincide at moderate loads.
        tolerance = 0.6 if name == "masstree" else 0.25
        for i in range(5):  # loads 10%..50%
            values = [
                comparison.curves[setup].p95[i]
                for setup in ("networked", "loopback", "integrated")
            ]
            spread = (max(values) - min(values)) / min(values)
            assert spread < tolerance, (name, i)

    # Red annotations: simulated system faster by the per-app factor.
    for name, gap in PAPER_SIM_ERROR.items():
        drop = results[name].saturation_drop("simulation")
        assert drop == pytest.approx(-gap, abs=0.05), name
    benchmark.extra_info["apps"] = len(results)
    save_baseline("fig5", {
        "apps": len(results),
        "silo_networked_drop": results["silo"].saturation_drop("networked"),
        "specjbb_networked_drop": (
            results["specjbb"].saturation_drop("networked")
        ),
        "xapian_sim_drop": results["xapian"].saturation_drop("simulation"),
    })

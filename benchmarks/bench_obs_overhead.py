"""Observability overhead: repeated A/B runs on the integrated config.

Quantifies what the tracing/metrics layer costs:

- tracing **disabled** (the default): structurally zero — each hot
  point guards with one ``is None`` test and nothing is allocated;
  A/B deltas are indistinguishable from run-to-run noise (<1%).
- tracing **enabled**: full lifecycle tracing (~6 ring events per
  request), the send-delay histogram, and the 50 ms sampler thread.
  Cost is a fixed few microseconds per request, so the relative
  overhead depends on service time: ~3% of p50 at ~300 us service
  times, ~10% in an adversarial ~30 us microbenchmark. p99 deltas
  are dominated by scheduler noise at this scale, so the assertion
  bounds the (stable) p50.
- streaming SLO engine **on top of tracing**: windowed HdrHistogram
  sketches, burn-rate accounting, and exemplar capture add two more
  hook calls per request (one at send, one at completion). The third
  arm measures that *incremental* cost against the tracing arm.

Run:  pytest benchmarks/bench_obs_overhead.py --benchmark-only
The rendered table lands in benchmarks/results/obs_overhead.txt; the
medians here are the numbers DESIGN.md quotes.
"""

import statistics

from repro.core import HarnessConfig, ObservabilityConfig
from repro.core.harness import run_harness

REPEATS = 5
#: ~300us of busy-work per request at 60% load: large enough that the
#: per-request tracing cost is realistic, small enough to finish fast.
CONFIG = dict(qps=1200, warmup_requests=50, measure_requests=800)


class ConstantApp:
    def __init__(self, iterations=3000):
        self.iterations = iterations

    def setup(self):
        pass

    def process(self, payload):
        acc = 0
        for i in range(self.iterations):
            acc += i * i
        return acc

    def make_client(self, seed=0):
        class _Client:
            def next_request(self):
                return None

        return _Client()


def _runs(observability, seeds, app):
    results = []
    for seed in seeds:
        config = HarnessConfig(
            seed=seed, observability=observability, **CONFIG
        )
        results.append(run_harness(app, config))
    return results


def test_obs_overhead(benchmark, save_result, save_baseline):
    """Median p50/p99 deltas: tracing vs off, SLO engine vs tracing."""
    from repro.core.config import SloConfig

    app = ConstantApp()
    seeds = list(range(REPEATS))
    off = _runs(ObservabilityConfig(), seeds, app)
    on = _runs(ObservabilityConfig(tracing=True), seeds, app)
    slo = ObservabilityConfig(
        tracing=True,
        slo=SloConfig(enabled=True, target=0.01, objective=0.99,
                      window=0.25),
    )
    live = _runs(slo, seeds, app)

    def med(results, pct):
        return statistics.median(getattr(r.sojourn, pct) for r in results)

    lines = [
        "observability overhead (integrated, 1200 qps, ~300us service, "
        f"medians of {REPEATS} runs):"
    ]
    deltas = {}
    for label, base_results, arm_results in (
        ("tracing", off, on),
        ("slo", on, live),
    ):
        for pct in ("p50", "p99"):
            base, armed = med(base_results, pct), med(arm_results, pct)
            delta = 100.0 * (armed - base) / base if base else 0.0
            deltas[f"{label}_{pct}"] = delta
            lines.append(
                f"  {label} {pct}: base={base * 1e6:.1f}us "
                f"on={armed * 1e6:.1f}us delta={delta:+.2f}%"
            )
    lines.append(f"  events per run: {len(on[0].obs.events)}")
    lines.append(
        f"  slo windows per run: {len(live[0].obs.live.windows)}"
    )
    report = "\n".join(lines)
    print(report)
    save_result("obs_overhead", report)

    benchmark(lambda: None)  # timing lives in the A/B above
    # The issue's <2% bar applies to the DISABLED path, which is
    # structurally free (see tests/obs/test_overhead.py). Enabled
    # tracing pays a few us per request; bound the stable p50 metric
    # with headroom for noisy CI containers. The SLO engine's target
    # is <=5% incremental p50 over tracing (two sketch updates per
    # request), with the same noise headroom.
    assert deltas["tracing_p50"] < 15.0
    assert deltas["slo_p50"] < 12.0
    save_baseline("obs_overhead", {
        "p50_delta_pct": deltas["tracing_p50"],
        "p99_delta_pct": deltas["tracing_p99"],
        "slo_p50_delta_pct": deltas["slo_p50"],
        "slo_p99_delta_pct": deltas["slo_p99"],
        "events_per_run": len(on[0].obs.events),
    })

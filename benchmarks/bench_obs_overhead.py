"""Observability overhead: repeated A/B runs on the integrated config.

Quantifies what the tracing/metrics layer costs:

- tracing **disabled** (the default): structurally zero — each hot
  point guards with one ``is None`` test and nothing is allocated;
  A/B deltas are indistinguishable from run-to-run noise (<1%).
- tracing **enabled**: full lifecycle tracing (~6 ring events per
  request), the send-delay histogram, and the 50 ms sampler thread.
  Cost is a fixed few microseconds per request, so the relative
  overhead depends on service time: ~3% of p50 at ~300 us service
  times, ~10% in an adversarial ~30 us microbenchmark. p99 deltas
  are dominated by scheduler noise at this scale, so the assertion
  bounds the (stable) p50.

Run:  pytest benchmarks/bench_obs_overhead.py --benchmark-only
The rendered table lands in benchmarks/results/obs_overhead.txt; the
medians here are the numbers DESIGN.md quotes.
"""

import statistics

from repro.core import HarnessConfig, ObservabilityConfig
from repro.core.harness import run_harness

REPEATS = 5
#: ~300us of busy-work per request at 60% load: large enough that the
#: per-request tracing cost is realistic, small enough to finish fast.
CONFIG = dict(qps=1200, warmup_requests=50, measure_requests=800)


class ConstantApp:
    def __init__(self, iterations=3000):
        self.iterations = iterations

    def setup(self):
        pass

    def process(self, payload):
        acc = 0
        for i in range(self.iterations):
            acc += i * i
        return acc

    def make_client(self, seed=0):
        class _Client:
            def next_request(self):
                return None

        return _Client()


def _runs(observability, seeds, app):
    results = []
    for seed in seeds:
        config = HarnessConfig(
            seed=seed, observability=observability, **CONFIG
        )
        results.append(run_harness(app, config))
    return results


def test_obs_overhead(benchmark, save_result, save_baseline):
    """Median p50/p99 delta, tracing enabled vs disabled."""
    app = ConstantApp()
    seeds = list(range(REPEATS))
    off = _runs(ObservabilityConfig(), seeds, app)
    on = _runs(ObservabilityConfig(tracing=True), seeds, app)

    def med(results, pct):
        return statistics.median(getattr(r.sojourn, pct) for r in results)

    lines = [
        "observability overhead (integrated, 1200 qps, ~300us service, "
        f"medians of {REPEATS} runs):"
    ]
    deltas = {}
    for pct in ("p50", "p99"):
        base, traced = med(off, pct), med(on, pct)
        delta = 100.0 * (traced - base) / base if base else 0.0
        deltas[pct] = delta
        lines.append(
            f"  {pct}: off={base * 1e6:.1f}us on={traced * 1e6:.1f}us "
            f"delta={delta:+.2f}%"
        )
    lines.append(f"  events per run: {len(on[0].obs.events)}")
    report = "\n".join(lines)
    print(report)
    save_result("obs_overhead", report)

    benchmark(lambda: None)  # timing lives in the A/B above
    # The issue's <2% bar applies to the DISABLED path, which is
    # structurally free (see tests/obs/test_overhead.py). Enabled
    # tracing pays a few us per request; bound the stable p50 metric
    # with headroom for noisy CI containers.
    assert deltas["p50"] < 15.0
    save_baseline("obs_overhead", {
        "p50_delta_pct": deltas["p50"],
        "p99_delta_pct": deltas["p99"],
        "events_per_run": len(on[0].obs.events),
    })

"""Substrate microbenchmarks (pytest-benchmark timing targets).

Throughput of the building blocks every experiment leans on: HDR
recording, event-engine dispatch, B+tree/masstree ops, OCC and shore
transactions, BM25 search, stack decoding, Viterbi decoding, DNN
inference, and cache simulation. These catch performance regressions
in the substrates themselves.
"""

import random

from repro.apps import create_app
from repro.stats import HdrHistogram
from repro.workloads import TpccScale, TpccWorkload, YcsbWorkload


def test_hdr_record_throughput(benchmark, save_baseline):
    hist = HdrHistogram()
    rng = random.Random(0)
    values = [rng.expovariate(1000.0) for _ in range(10_000)]

    def record_all():
        for v in values:
            hist.record(v)

    benchmark(record_all)
    save_baseline("substrate_hdr", {
        "mean_s": benchmark.stats.stats.mean,
        "records_per_call": len(values),
    })


def test_event_engine_throughput(benchmark, save_baseline):
    from repro.sim import Engine

    def run_events():
        engine = Engine()
        for i in range(5000):
            engine.at(i * 1e-6, lambda: None)
        engine.run()

    benchmark(run_events)
    save_baseline("substrate_engine", {
        "mean_s": benchmark.stats.stats.mean,
        "events_per_call": 5000,
    })


def test_simulated_load_throughput(benchmark):
    from repro.sim import SimConfig, simulate_app

    benchmark(
        simulate_app,
        "masstree",
        SimConfig(qps=4000, measure_requests=3000, warmup_requests=300),
    )


def test_btree_put_get(benchmark, save_baseline):
    from repro.apps.masstree import BPlusTree

    keys = random.Random(1).sample(range(100_000), 5000)

    def workload():
        tree = BPlusTree(order=16)
        for k in keys:
            tree.put(k, k)
        for k in keys:
            tree.get(k)

    benchmark(workload)
    save_baseline("substrate_btree", {
        "mean_s": benchmark.stats.stats.mean,
        "keys_per_call": len(keys),
    })


def test_masstree_ycsb_ops(benchmark):
    app = create_app("masstree", n_records=2000)
    app.setup()
    workload = YcsbWorkload(n_records=2000, seed=2)
    ops = [workload.next_operation() for _ in range(2000)]

    def run_ops():
        for op in ops:
            app.process(op)

    benchmark(run_ops)


def test_xapian_search(benchmark):
    app = create_app("xapian", n_docs=500, vocab_size=1500, mean_doc_len=80)
    app.setup()
    client = app.make_client(seed=3)
    queries = [client.next_request() for _ in range(100)]

    def run_queries():
        for q in queries:
            app.process(q)

    benchmark(run_queries)


def test_silo_tpcc_throughput(benchmark):
    app = create_app("silo", scale=TpccScale.small())
    app.setup()
    workload = TpccWorkload(scale=TpccScale.small(), seed=4)
    txns = [workload.next_transaction() for _ in range(300)]

    def run_txns():
        for t in txns:
            app.process(t)

    benchmark(run_txns)


def test_shore_tpcc_throughput(benchmark):
    app = create_app("shore", scale=TpccScale.small(), buffer_capacity=64)
    app.setup()
    workload = TpccWorkload(scale=TpccScale.small(), seed=5)
    txns = [workload.next_transaction() for _ in range(150)]

    def run_txns():
        for t in txns:
            app.process(t)

    benchmark(run_txns)
    app.teardown()


def test_moses_decode(benchmark):
    app = create_app("moses", vocab_size=80, n_sentences=400, stack_size=8)
    app.setup()
    client = app.make_client(seed=6)
    sentences = [client.next_request() for _ in range(20)]

    def decode_all():
        for s in sentences:
            app.process(s)

    benchmark(decode_all)


def test_sphinx_decode(benchmark):
    app = create_app("sphinx", beam=40.0)
    app.setup()
    client = app.make_client(seed=7)
    utterances = [client.next_request() for _ in range(5)]

    def decode_all():
        for u in utterances:
            app.process(u)

    benchmark(decode_all)


def test_img_dnn_inference(benchmark):
    app = create_app("img-dnn", train_samples=300, epochs=3)
    app.setup()
    client = app.make_client(seed=8)
    images = [client.next_request() for _ in range(500)]

    def classify_all():
        for img in images:
            app.process(img)

    benchmark(classify_all)


def test_cache_hierarchy_throughput(benchmark):
    from repro.archsim import characterize_app

    benchmark(characterize_app, "silo", n_instructions=30_000)

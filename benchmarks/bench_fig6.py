"""Fig. 6: p95 vs. load (not QPS) for shore and img-dnn.

Shape criterion: plotted against normalized load, the four setups'
curves nearly collapse — simulation error is a constant speed factor,
so behaviour at equal load is preserved. Contrast with equal-QPS
comparison, where the same setups diverge unboundedly near saturation.
"""

from repro.experiments.fig3 import sweep_app
from repro.experiments.fig6 import render_fig6, run_fig6

MEASURE_REQUESTS = 5000


def test_fig6(benchmark, save_result, save_baseline):
    results = benchmark.pedantic(
        run_fig6,
        kwargs={"measure_requests": MEASURE_REQUESTS},
        rounds=1,
        iterations=1,
    )
    text = render_fig6(results)
    print("\n" + text)
    save_result("fig6", text)

    for name, curves in results.items():
        # At equal load the setups stay within bounded constant
        # factors of each other at every point...
        assert curves.max_relative_spread() < 0.6, name

    # ...whereas at equal QPS the simulated system (fig. 5 view) sits
    # at a lower load and diverges hugely near real-system saturation.
    real = sweep_app("img-dnn", configuration="integrated",
                     measure_requests=MEASURE_REQUESTS)
    # Simulate the sim system at the REAL system's near-saturation QPS.
    from repro.sim import SimConfig, simulate_app

    qps = real.qps[-1]
    sim = simulate_app(
        "img-dnn",
        SimConfig(qps=qps, measure_requests=MEASURE_REQUESTS,
                  simulated_system=True),
    )
    equal_qps_gap = abs(real.p95[-1] - sim.sojourn.p95) / min(
        real.p95[-1], sim.sojourn.p95
    )
    worst_equal_load_gap = max(
        c.max_relative_spread() for c in results.values()
    )
    assert equal_qps_gap > 2 * worst_equal_load_gap
    benchmark.extra_info["apps"] = len(results)
    save_baseline("fig6", {
        "apps": len(results),
        "worst_equal_load_spread": worst_equal_load_gap,
        "equal_qps_gap": equal_qps_gap,
    })

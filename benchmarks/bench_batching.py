"""Dynamic-batching gain: repeated A/B runs on the real img-dnn app.

Measures what adaptive batching buys on an actually vectorizable
workload: img-dnn's ``handle_batch`` stacks the batch into one
``(batch, pixels)`` matrix, so every layer's matmul runs once per batch
instead of once per request. At a saturating offered load the achieved
throughput is the server's service capacity, so the A/B ratio is the
end-to-end amortization factor — BLAS batching plus the per-dequeue
overhead the batched worker loop pays once per batch.

The disabled arm runs the untouched single-request worker loop
(structurally zero batching cost); the enabled arm forms
size-or-deadline batches of up to 16.

Run:  pytest benchmarks/bench_batching.py --benchmark-only
The rendered table lands in benchmarks/results/batching_gain.txt.
"""

import statistics

from repro.apps.img_dnn import ImgDnnApp
from repro.batching import BatchingConfig
from repro.core import HarnessConfig, run_harness

REPEATS = 3
#: Offered well past both arms' capacity so achieved == service rate.
CONFIG = dict(qps=25_000, warmup_requests=200, measure_requests=4000,
              n_threads=1)

BATCHING_ON = BatchingConfig(
    enabled=True, max_batch_size=16, max_batch_delay=0.002
)


def _runs(batching, seeds):
    results = []
    for seed in seeds:
        app = ImgDnnApp(train_samples=300, epochs=4, seed=0)
        app.setup()
        config = HarnessConfig(seed=seed, batching=batching, **CONFIG)
        results.append(run_harness(app, config))
    return results


def test_batching_gain(benchmark, save_result, save_baseline):
    """Median achieved-throughput ratio, batching on vs off."""
    seeds = list(range(REPEATS))
    off = _runs(BatchingConfig(), seeds)
    on = _runs(BATCHING_ON, seeds)

    off_qps = statistics.median(r.achieved_qps for r in off)
    on_qps = statistics.median(r.achieved_qps for r in on)
    ratio = on_qps / off_qps
    occupancy = statistics.median(r.stats.mean_batch_size for r in on)
    lines = [
        "dynamic-batching gain (img-dnn, saturating load, medians of "
        f"{REPEATS} runs):",
        f"  off: {off_qps:.0f}/s  "
        f"p99={statistics.median(r.sojourn.p99 for r in off) * 1e3:.1f}ms",
        f"  on : {on_qps:.0f}/s  "
        f"p99={statistics.median(r.sojourn.p99 for r in on) * 1e3:.1f}ms  "
        f"occupancy={occupancy:.1f}",
        f"  throughput ratio: {ratio:.2f}x",
    ]
    report = "\n".join(lines)
    print(report)
    save_result("batching_gain", report)

    benchmark(lambda: None)  # timing lives in the A/B above
    # Sanity: every request completed in both arms, and batches formed.
    for result in off + on:
        assert result.stats.count == CONFIG["measure_requests"]
        assert not result.server_errors
    assert occupancy > 4.0
    # The acceptance bar: vectorized batching is a >=1.3x capacity win
    # at the chosen operating point (observed ~1.6x; margin for CI).
    assert ratio >= 1.3
    save_baseline("batching_gain", {
        "throughput_ratio": ratio,
        "occupancy": occupancy,
        "off_qps": off_qps,
        "on_qps": on_qps,
    })

"""Fig. 4: p95 vs per-thread load at 1/2/4 threads.

Shape criteria: masstree and xapian keep per-thread saturation roughly
constant as threads grow; silo's per-thread saturation degrades at
every step (synchronization); moses is fine at 2 threads but collapses
below its single-thread rate at 4 (memory contention).
"""

from repro.experiments.fig4 import render_fig4, run_fig4

MEASURE_REQUESTS = 5000


def test_fig4(benchmark, save_result, save_baseline):
    results = benchmark.pedantic(
        run_fig4,
        kwargs={"measure_requests": MEASURE_REQUESTS},
        rounds=1,
        iterations=1,
    )
    text = render_fig4(results)
    print("\n" + text)
    save_result("fig4", text)

    def per_thread_sat(name, k):
        return results[name].per_thread_saturation(k)

    # Well-scaling apps: 4-thread per-thread saturation within ~12% of
    # single-thread.
    for name in ("masstree", "xapian"):
        assert per_thread_sat(name, 4) > 0.85 * per_thread_sat(name, 1), name

    # silo: monotone degradation with thread count (Fig. 4).
    assert per_thread_sat("silo", 2) < 0.97 * per_thread_sat("silo", 1)
    assert per_thread_sat("silo", 4) < per_thread_sat("silo", 2)

    # moses: fine at 2 threads, collapses below 1-thread rate at 4.
    assert per_thread_sat("moses", 2) > 0.8 * per_thread_sat("moses", 1)
    assert per_thread_sat("moses", 4) < 0.75 * per_thread_sat("moses", 1)
    benchmark.extra_info["apps"] = len(results)
    save_baseline("fig4", {
        "apps": len(results),
        "masstree_scaling_4t": (
            per_thread_sat("masstree", 4) / per_thread_sat("masstree", 1)
        ),
        "silo_scaling_4t": (
            per_thread_sat("silo", 4) / per_thread_sat("silo", 1)
        ),
        "moses_scaling_4t": (
            per_thread_sat("moses", 4) / per_thread_sat("moses", 1)
        ),
    })

"""Shared benchmark fixtures.

Every table/figure benchmark writes its rendered output under
``benchmarks/results/`` so regenerated artifacts are inspectable after
a ``pytest benchmarks/ --benchmark-only`` run, plus a machine-stamped
``BENCH_<name>.json`` metric baseline (see
:mod:`repro.experiments.baseline`) that CI validates.
"""

import pathlib

import pytest

from repro.experiments.baseline import write_baseline

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_result(results_dir):
    """Write one experiment's rendered output to results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _save


@pytest.fixture()
def save_baseline(results_dir):
    """Write one benchmark's headline metrics to results/BENCH_<name>.json."""

    def _save(name: str, metrics: dict) -> None:
        write_baseline(results_dir, name, metrics)

    return _save

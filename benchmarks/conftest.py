"""Shared benchmark fixtures.

Every table/figure benchmark writes its rendered output under
``benchmarks/results/`` so regenerated artifacts are inspectable after
a ``pytest benchmarks/ --benchmark-only`` run, plus a machine-stamped
``BENCH_<name>.json`` metric baseline (see
:mod:`repro.experiments.baseline`) that CI validates.
"""

import os
import pathlib

import pytest

from repro.experiments.baseline import write_baseline

#: Where rendered outputs and BENCH_*.json baselines land. CI's
#: regression gate points this somewhere fresh (REPRO_RESULTS_DIR) and
#: compares the rerun against the committed benchmarks/results/.
RESULTS_DIR = pathlib.Path(
    os.environ.get(
        "REPRO_RESULTS_DIR", pathlib.Path(__file__).parent / "results"
    )
)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_result(results_dir):
    """Write one experiment's rendered output to results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _save


@pytest.fixture()
def save_baseline(results_dir):
    """Write one benchmark's headline metrics to results/BENCH_<name>.json.

    Accepts the optional ``execution``/``audit`` pass-throughs of
    :func:`repro.experiments.baseline.write_baseline`, so benchmarks
    can stamp the execution substrate and the run's
    coordinated-omission audit into the baseline document.
    """

    def _save(name: str, metrics: dict, execution: str = "threaded",
              audit: dict = None) -> None:
        write_baseline(
            results_dir, name, metrics, execution=execution, audit=audit
        )

    return _save

"""vsearch recall/latency frontier: the nprobe knob, measured.

IVF search probes the ``nprobe`` posting lists nearest the query, so
per-request work — and with it the latency distribution — scales with
probed mass while recall@10 climbs toward the brute-force ground
truth. This benchmark sweeps nprobe over the unsharded app, measuring
recall directly against brute force and tail latency through the real
harness at a per-point calibrated moderate load.

Recall is fully deterministic (seeded corpus, seeded k-means), so it
anchors the CI baseline; wall-clock latency figures land in the
rendered report but stay out of the baseline to keep the regression
gate machine-portable.

Run:  pytest benchmarks/bench_vsearch.py --benchmark-only
The rendered table lands in benchmarks/results/vsearch_frontier.txt.
"""

import time

from repro.apps.vsearch import VsearchApp
from repro.core import HarnessConfig, run_harness
from repro.stats import quantile

NPROBES = (1, 2, 4, 8)
LOAD = 0.4
MEASURE_REQUESTS = 1500


def _mean_service(app, nprobe, n=96):
    client = app.make_client(seed=0)
    payloads = [client.next_request() for _ in range(n)]
    index, queries = app.index, app.corpus.queries
    for payload in payloads[:8]:
        index.search(queries[payload], k=app.top_k, nprobe=nprobe)
    start = time.perf_counter()
    for payload in payloads:
        index.search(queries[payload], k=app.top_k, nprobe=nprobe)
    return (time.perf_counter() - start) / n


def test_vsearch_frontier(benchmark, save_result, save_baseline):
    """Recall@10 vs p99 across the nprobe sweep."""
    app = VsearchApp(n_vectors=4096, n_lists=32, n_queries=256, seed=0)
    app.setup()

    rows = []
    recalls = {}
    for nprobe in NPROBES:
        recall = app.recall_at_k(nprobe=nprobe, sample=128)
        mean = _mean_service(app, nprobe)
        sweep_app = VsearchApp(
            n_vectors=4096, n_lists=32, nprobe=nprobe, n_queries=256, seed=0
        )
        sweep_app.setup()
        result = run_harness(
            sweep_app,
            HarnessConfig(
                configuration="integrated",
                qps=LOAD / mean,
                n_threads=1,
                warmup_requests=150,
                measure_requests=MEASURE_REQUESTS,
                seed=0,
            ),
        )
        p99 = quantile(result.stats.samples(), 0.99)
        recalls[nprobe] = recall
        rows.append((nprobe, recall, mean, p99, result))

    lines = ["vsearch recall/latency frontier (nprobe sweep, 40% load):"]
    for nprobe, recall, mean, p99, _ in rows:
        lines.append(
            f"  nprobe={nprobe}: recall@10={recall:.3f}  "
            f"service={mean * 1e6:.0f}us  p99={p99 * 1e3:.2f}ms"
        )
    report = "\n".join(lines)
    print(report)
    save_result("vsearch_frontier", report)

    benchmark(lambda: None)  # timing lives in the sweep above

    # Sanity: every run completed cleanly.
    for _, _, _, _, result in rows:
        assert result.stats.count == MEASURE_REQUESTS
        assert not result.server_errors
    # Recall climbs monotonically with probed mass and is near-exact
    # by nprobe=8 (a quarter of the 32 lists probed).
    recall_values = [recalls[n] for n in NPROBES]
    assert all(
        a <= b + 1e-9 for a, b in zip(recall_values, recall_values[1:])
    )
    assert recalls[1] > 0.5
    assert recalls[8] > 0.95
    # Work grows with nprobe: the widest probe costs measurably more.
    assert rows[-1][2] > rows[0][2]

    save_baseline("vsearch", {
        "recall_nprobe_1": recalls[1],
        "recall_nprobe_2": recalls[2],
        "recall_nprobe_4": recalls[4],
        "recall_nprobe_8": recalls[8],
        "measure_requests": MEASURE_REQUESTS,
    })

"""Caching tier: Zipf hit rates, cold-restart spike, policy op cost.

The deterministic half runs the virtual-time simulator — hit rates and
the cold-restart spike depend only on seeded RNG streams, so they
anchor the CI baseline (``BENCH_cache.json``) byte-for-byte across
machines. The wall-clock half times raw policy lookup/store ops via
pytest-benchmark; it lands in the rendered report, not the baseline.

Run:  pytest benchmarks/bench_cache.py --benchmark-only
The rendered table lands in benchmarks/results/cache_hit_rates.txt.
"""

import dataclasses
import random

from repro.cache import make_policy, predicted_hit_rate
from repro.cache.policies import HIT
from repro.core import CacheConfig
from repro.sim import SimConfig, simulate_load
from repro.sim.calibration import paper_profile
from repro.stats import ZipfianGenerator

KEYSPACE = 512
THETA = 0.9
MEASURE_REQUESTS = 5000


def _hit_rate(counts):
    looked = counts["hits"] + counts["misses"]
    return counts["hits"] / looked if looked else 0.0


def test_cache_hit_rates(benchmark, save_result, save_baseline):
    """Measured sim hit rates vs the closed form, plus policy op cost."""
    profile = paper_profile("xapian")
    base = SimConfig(
        qps=0.5 / profile.service.mean,
        n_threads=1,
        configuration="integrated",
        warmup_requests=500,
        measure_requests=MEASURE_REQUESTS,
        seed=0,
    )

    rates = {}
    for policy in ("lru", "lfu", "tinylfu"):
        for fraction in (0.05, 0.20):
            capacity = max(1, int(KEYSPACE * fraction))
            result = simulate_load(
                profile,
                dataclasses.replace(
                    base,
                    cache=CacheConfig(
                        enabled=True,
                        policy=policy,
                        capacity=capacity,
                        sim_keyspace=KEYSPACE,
                        sim_theta=THETA,
                    ),
                ),
            )
            rates[(policy, fraction)] = _hit_rate(result.cache_counts)

    lines = [
        f"cache hit rates (sim, keyspace={KEYSPACE}, theta={THETA}):"
    ]
    for (policy, fraction), rate in sorted(rates.items()):
        capacity = max(1, int(KEYSPACE * fraction))
        predicted = predicted_hit_rate(KEYSPACE, THETA, capacity)
        lines.append(
            f"  {policy:8s} C={fraction:.0%} ({capacity:3d}): "
            f"measured={rate:.3f}  closed-form={predicted:.3f}"
        )
    report = "\n".join(lines)
    print(report)
    save_result("cache_hit_rates", report)

    # Wall-clock op cost: one Zipfian lookup+store cycle against LRU.
    policy = make_policy("lru", 128)
    zipf = ZipfianGenerator(KEYSPACE, theta=THETA)
    rng = random.Random(0)

    def one_op():
        key = zipf.sample(rng)
        status, _ = policy.lookup(key, 0.0)
        if status != HIT:
            policy.store(key, True, 0.0)

    benchmark(one_op)

    # Sanity: frequency-aware policies beat LRU under Zipf, and every
    # measured rate respects the frequency-optimal bound (plus noise).
    for fraction in (0.05, 0.20):
        capacity = max(1, int(KEYSPACE * fraction))
        bound = predicted_hit_rate(KEYSPACE, THETA, capacity)
        assert rates[("lfu", fraction)] > rates[("lru", fraction)]
        for policy_name in ("lru", "lfu", "tinylfu"):
            assert rates[(policy_name, fraction)] <= bound + 0.02

    save_baseline("cache", {
        "lru_hit_rate_c5": rates[("lru", 0.05)],
        "lfu_hit_rate_c5": rates[("lfu", 0.05)],
        "tinylfu_hit_rate_c5": rates[("tinylfu", 0.05)],
        "lru_hit_rate_c20": rates[("lru", 0.20)],
        "lfu_hit_rate_c20": rates[("lfu", 0.20)],
        "tinylfu_hit_rate_c20": rates[("tinylfu", 0.20)],
        "predicted_c20": predicted_hit_rate(
            KEYSPACE, THETA, int(KEYSPACE * 0.20)
        ),
        "measure_requests": MEASURE_REQUESTS,
    })

"""Fig. 8: the Sec. VII case study — moses vs silo thread scaling.

Shape criteria: moses's ideal-memory simulation tracks the M/G/n
queueing model at both thread counts (its real-system collapse was
memory contention); silo's 4-thread ideal-memory curve stays above
M/G/4 (synchronization overheads survive ideal memory).
"""

from repro.experiments.fig8 import render_fig8, run_fig8

MEASURE_REQUESTS = 12_000


def test_fig8(benchmark, save_result, save_baseline):
    results = benchmark.pedantic(
        run_fig8,
        kwargs={"measure_requests": MEASURE_REQUESTS},
        rounds=1,
        iterations=1,
    )
    text = render_fig8(results)
    print("\n" + text)
    save_result("fig8", text)

    # The paper's headline conclusions.
    assert results["moses"].ideal_tracks_mgn(1)
    assert results["moses"].ideal_tracks_mgn(4)
    assert not results["silo"].ideal_tracks_mgn(4)

    # silo's divergence is one-sided: ideal memory >= model everywhere
    # at moderate loads (sync overhead only ever hurts).
    silo = results["silo"]
    for i, load in enumerate(silo.load_points):
        if load > 0.75:
            continue
        assert (
            silo.series["ideal-mem 4T"][i] >= silo.series["M/G/4"][i] * 0.99
        )

    # Normalization anchor: 1-thread low-load point sits near 1x.
    for result in results.values():
        assert 0.5 < result.series["M/G/1"][0] < 2.0
    benchmark.extra_info["apps"] = len(results)
    save_baseline("fig8", {
        "apps": len(results),
        "moses_ideal_tracks_mgn_4t": bool(results["moses"].ideal_tracks_mgn(4)),
        "silo_ideal_tracks_mgn_4t": bool(results["silo"].ideal_tracks_mgn(4)),
        "moses_mg1_low_load": results["moses"].series["M/G/1"][0],
    })

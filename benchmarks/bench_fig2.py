"""Fig. 2: service-time CDFs for all eight applications.

Shape criteria: masstree/img-dnn near-constant; xapian/moses broad;
specjbb/shore narrow body with a long tail; sphinx seconds-scale.
"""

from repro.experiments.fig2 import render_fig2, run_fig2

N_SAMPLES = 20_000


def test_fig2(benchmark, save_result, save_baseline):
    cdfs = benchmark.pedantic(
        run_fig2, kwargs={"n_samples": N_SAMPLES}, rounds=1, iterations=1
    )
    text = render_fig2(cdfs)
    print("\n" + text)
    save_result("fig2", text)

    q = {name: cdf.quantiles() for name, cdf in cdfs.items()}

    # Near-constant service times (tight p5-p95 spread).
    assert q["masstree"][0.95] / q["masstree"][0.05] < 3.0
    assert q["img-dnn"][0.95] / q["img-dnn"][0.05] < 3.0
    # Broad distributions.
    assert q["xapian"][0.95] / q["xapian"][0.05] > 5.0
    # Long-tailed: p99 well beyond p75 relative to body width.
    for name in ("specjbb", "shore", "silo"):
        body = q[name][0.75] / q[name][0.25]
        tail = q[name][0.99] / q[name][0.75]
        assert tail > body, name
    # Timescale span: sphinx requests take seconds, silo microseconds.
    assert q["sphinx"][0.5] > 0.1
    assert q["silo"][0.5] < 100e-6
    # Fig. 2 x-axis ranges (rough absolute anchors, in seconds).
    assert 0.0002 < q["xapian"][0.95] < 0.006
    assert 0.0005 < q["moses"][0.95] < 0.008
    benchmark.extra_info["apps"] = len(cdfs)
    save_baseline("fig2", {
        "apps": len(cdfs),
        "masstree_p95_over_p5": q["masstree"][0.95] / q["masstree"][0.05],
        "xapian_p95_over_p5": q["xapian"][0.95] / q["xapian"][0.05],
        "sphinx_p50_s": q["sphinx"][0.5],
        "silo_p50_s": q["silo"][0.5],
    })

"""Tests for Zipfian query sampling."""

from collections import Counter

import pytest

from repro.workloads import ZipfQuerySampler


class TestZipfQuerySampler:
    def test_query_terms_from_vocabulary(self):
        vocab = [f"term{i}" for i in range(100)]
        sampler = ZipfQuerySampler(vocab, seed=0)
        for _ in range(100):
            for term in sampler.next_terms():
                assert term in vocab

    def test_query_length_range(self):
        sampler = ZipfQuerySampler(["a", "b", "c", "d", "e"],
                                   min_terms=2, max_terms=3, seed=1)
        for _ in range(100):
            assert 2 <= len(sampler.next_terms()) <= 3

    def test_no_duplicate_terms_in_query(self):
        sampler = ZipfQuerySampler([f"t{i}" for i in range(50)],
                                   min_terms=4, max_terms=4, seed=2)
        for _ in range(100):
            terms = sampler.next_terms()
            assert len(terms) == len(set(terms))

    def test_popular_terms_dominate(self):
        vocab = [f"t{i}" for i in range(200)]
        sampler = ZipfQuerySampler(vocab, theta=1.0, seed=3)
        counts = Counter()
        for _ in range(5000):
            counts.update(sampler.next_terms())
        assert counts["t0"] > counts["t100"]

    def test_next_query_joins_terms(self):
        sampler = ZipfQuerySampler(["alpha", "beta"], seed=4)
        query = sampler.next_query()
        assert all(t in ("alpha", "beta") for t in query.split())

    def test_tiny_vocabulary_terminates(self):
        sampler = ZipfQuerySampler(["only"], min_terms=1, max_terms=4, seed=5)
        assert sampler.next_terms() == ["only"]

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfQuerySampler([])
        with pytest.raises(ValueError):
            ZipfQuerySampler(["a"], min_terms=3, max_terms=2)


class TestZipfRankSampler:
    def test_deterministic_per_seed(self):
        from repro.workloads import ZipfRankSampler

        a = ZipfRankSampler(100, seed=7)
        b = ZipfRankSampler(100, seed=7)
        c = ZipfRankSampler(100, seed=8)
        draws_a = [a.next_rank() for _ in range(300)]
        draws_b = [b.next_rank() for _ in range(300)]
        draws_c = [c.next_rank() for _ in range(300)]
        assert draws_a == draws_b
        assert draws_a != draws_c

    def test_ranks_in_range_and_skewed(self):
        from repro.workloads import ZipfRankSampler

        sampler = ZipfRankSampler(50, theta=1.0, seed=0)
        draws = [sampler.next_rank() for _ in range(5000)]
        assert all(0 <= r < 50 for r in draws)
        counts = Counter(draws)
        # Rank 0 is the hottest under Zipfian popularity.
        assert counts[0] == max(counts.values())
        assert counts[0] > counts.get(40, 0)

    def test_shared_rng_with_query_sampler(self):
        # ZipfQuerySampler composes ZipfRankSampler on one shared RNG:
        # rank draws and length draws interleave deterministically.
        vocab = [f"t{i}" for i in range(30)]
        a = ZipfQuerySampler(vocab, seed=9)
        b = ZipfQuerySampler(vocab, seed=9)
        assert [a.next_query() for _ in range(50)] == [
            b.next_query() for _ in range(50)
        ]


class TestShortQueryBiasFix:
    """Regression: queries must honor the drawn length whenever the
    vocabulary has enough distinct terms (the old dedup loop bailed
    out short once duplicate ranks exhausted a small vocabulary)."""

    def test_min_terms_honored_on_small_vocabulary(self):
        # 4 distinct terms, min_terms=3: every query must reach 3.
        sampler = ZipfQuerySampler(["a", "b", "c", "d"], theta=1.2,
                                   min_terms=3, max_terms=3, seed=0)
        for _ in range(500):
            assert len(sampler.next_terms()) == 3

    def test_length_capped_at_vocabulary_size(self):
        # Drawn lengths above |vocab| are capped, not spun on forever
        # (and never silently under-filled below the cap).
        sampler = ZipfQuerySampler(["x", "y"], min_terms=1, max_terms=4,
                                   seed=1)
        lengths = [len(sampler.next_terms()) for _ in range(300)]
        assert all(1 <= n <= 2 for n in lengths)
        assert 2 in lengths  # the cap is reachable

    def test_min_terms_above_vocabulary_rejected(self):
        with pytest.raises(ValueError):
            ZipfQuerySampler(["a", "b"], min_terms=3, max_terms=5)

    def test_rng_stream_unchanged_for_large_vocabulary(self):
        # The fix must not perturb the draw sequence in the common case
        # (vocabulary >> max_terms): same seed, same queries as a
        # reference reimplementation of the original loop logic.
        import random as _random

        vocab = [f"t{i}" for i in range(500)]
        sampler = ZipfQuerySampler(vocab, min_terms=1, max_terms=4, seed=3)

        from repro.stats import ZipfianGenerator

        rng = _random.Random(3)
        zipf = ZipfianGenerator(len(vocab), theta=0.9)

        def reference_next_terms():
            n = rng.randint(1, 4)
            terms, seen = [], set()
            while len(terms) < n:
                term = vocab[zipf.sample(rng)]
                if term not in seen:
                    seen.add(term)
                    terms.append(term)
            return terms

        for _ in range(200):
            assert sampler.next_terms() == reference_next_terms()

"""Tests for TPC-C workload generation."""

import random
from collections import Counter

import pytest

from repro.workloads import (
    STANDARD_MIX,
    TpccScale,
    TpccWorkload,
    make_last_name,
    nurand,
)


class TestLastName:
    def test_known_values(self):
        # Clause 4.3.2.3 examples: 0 -> BARBARBAR, 371 -> PRIPRICALLY... etc.
        assert make_last_name(0) == "BARBARBAR"
        assert make_last_name(999) == "EINGEINGEING"
        assert make_last_name(123) == "OUGHTABLEPRI"

    def test_range_validated(self):
        with pytest.raises(ValueError):
            make_last_name(1000)
        with pytest.raises(ValueError):
            make_last_name(-1)

    def test_exactly_1000_distinct_names(self):
        assert len({make_last_name(i) for i in range(1000)}) == 1000


class TestNurand:
    def test_in_range(self):
        rng = random.Random(0)
        for _ in range(500):
            value = nurand(rng, 1023, 1, 3000)
            assert 1 <= value <= 3000

    def test_non_uniform(self):
        # NURand must be visibly skewed relative to uniform.
        rng = random.Random(1)
        counts = Counter(nurand(rng, 255, 0, 999) for _ in range(50000))
        top_decile = sum(c for v, c in counts.items() if v < 100)
        assert top_decile != pytest.approx(5000, rel=0.05)

    def test_validates_range(self):
        with pytest.raises(ValueError):
            nurand(random.Random(0), 255, 10, 5)


class TestScale:
    def test_standard_cardinalities(self):
        scale = TpccScale()
        assert scale.districts_per_warehouse == 10
        assert scale.customers_per_district == 3000
        assert scale.items == 100_000

    def test_small_scale_is_consistent(self):
        scale = TpccScale.small(warehouses=3)
        assert scale.warehouses == 3
        assert scale.items < 100_000

    def test_validates(self):
        with pytest.raises(ValueError):
            TpccScale(warehouses=0)


class TestTransactionMix:
    def test_mix_frequencies(self):
        workload = TpccWorkload(scale=TpccScale.small(), seed=0)
        counts = Counter(
            workload.next_transaction().kind for _ in range(20000)
        )
        for kind, expected in STANDARD_MIX.items():
            assert counts[kind] / 20000 == pytest.approx(expected, abs=0.02)

    def test_custom_mix(self):
        workload = TpccWorkload(
            scale=TpccScale.small(),
            mix={"new_order": 1.0, "payment": 0.0, "order_status": 0.0,
                 "delivery": 0.0, "stock_level": 0.0},
        )
        assert all(
            workload.next_transaction().kind == "new_order" for _ in range(50)
        )

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            TpccWorkload(mix={"new_order": 0.5})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TpccWorkload(mix={"new_order": 0.5, "teleport": 0.5})

    def test_deterministic_given_seed(self):
        a = TpccWorkload(scale=TpccScale.small(), seed=42)
        b = TpccWorkload(scale=TpccScale.small(), seed=42)
        for _ in range(20):
            ta, tb = a.next_transaction(), b.next_transaction()
            assert ta == tb


class TestParameterValidity:
    @pytest.fixture()
    def workload(self):
        return TpccWorkload(scale=TpccScale.small(warehouses=2), seed=3)

    def test_new_order_params(self, workload):
        scale = workload.scale
        for _ in range(200):
            txn = workload.new_order()
            p = txn.params
            assert 1 <= p["w_id"] <= scale.warehouses
            assert 1 <= p["d_id"] <= scale.districts_per_warehouse
            assert 1 <= p["c_id"] <= scale.customers_per_district
            assert 5 <= len(p["lines"]) <= 15
            for line in p["lines"]:
                assert 1 <= line["item_id"] <= scale.items
                assert 1 <= line["quantity"] <= 10
                assert 1 <= line["supply_w_id"] <= scale.warehouses

    def test_payment_params(self, workload):
        by_name = by_id = 0
        for _ in range(300):
            p = workload.payment().params
            assert 1.0 <= p["amount"] <= 5000.0
            if "c_last" in p:
                by_name += 1
            else:
                by_id += 1
        # Clause 2.5.1.2: ~60% select the customer by last name.
        assert by_name / 300 == pytest.approx(0.6, abs=0.1)

    def test_stock_level_threshold(self, workload):
        for _ in range(50):
            p = workload.stock_level().params
            assert 10 <= p["threshold"] <= 20

    def test_delivery_carrier(self, workload):
        for _ in range(50):
            p = workload.delivery().params
            assert 1 <= p["carrier_id"] <= 10

"""Tests for the YCSB-style key-value workload."""

from collections import Counter

import pytest

from repro.workloads import YcsbWorkload, make_key, make_value


class TestKeysAndValues:
    def test_keys_deterministic(self):
        assert make_key(5) == make_key(5)
        assert make_key(5) != make_key(6)

    def test_key_format(self):
        assert make_key(0).startswith("user")

    def test_values_deterministic_and_sized(self):
        assert make_value(3, size=64) == make_value(3, size=64)
        assert len(make_value(3, size=64)) == 64
        assert len(make_value(3, size=1000)) == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            make_key(-1)
        with pytest.raises(ValueError):
            make_value(0, size=0)


class TestWorkload:
    def test_initial_records_cover_keyspace(self):
        workload = YcsbWorkload(n_records=100)
        records = workload.initial_records()
        assert len(records) == 100
        assert make_key(0) in records

    def test_mycsb_a_mix(self):
        # mycsb-a: 50% GETs / 50% PUTs (Sec. III).
        workload = YcsbWorkload(n_records=1000, seed=1)
        counts = Counter(workload.next_operation().op for _ in range(10000))
        assert counts["get"] / 10000 == pytest.approx(0.5, abs=0.03)
        assert counts["put"] / 10000 == pytest.approx(0.5, abs=0.03)

    def test_get_fraction_configurable(self):
        workload = YcsbWorkload(n_records=100, get_fraction=1.0)
        assert all(workload.next_operation().op == "get" for _ in range(50))

    def test_keys_are_zipfian_skewed(self):
        workload = YcsbWorkload(n_records=1000, seed=2)
        counts = Counter(workload.next_operation().key for _ in range(20000))
        most_common = counts.most_common(10)
        top10_share = sum(c for _, c in most_common) / 20000
        assert top10_share > 0.15  # far above uniform's 1%

    def test_operations_stay_in_keyspace(self):
        workload = YcsbWorkload(n_records=50, seed=3)
        valid = set(workload.initial_records())
        for _ in range(500):
            assert workload.next_operation().key in valid

    def test_put_values_fresh(self):
        workload = YcsbWorkload(n_records=10, get_fraction=0.0, seed=4)
        values = [workload.next_operation().value for _ in range(20)]
        assert len(set(values)) == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            YcsbWorkload(n_records=0)
        with pytest.raises(ValueError):
            YcsbWorkload(get_fraction=1.5)

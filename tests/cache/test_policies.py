"""Unit semantics of the replacement/admission policies."""

import pytest

from repro.cache.policies import (
    EXPIRED,
    HIT,
    MISS,
    FrequencySketch,
    LFUCache,
    LRUCache,
    TinyLFUCache,
    TTLCache,
    make_policy,
)


class TestLRU:
    def test_hit_after_store(self):
        cache = LRUCache(2)
        assert cache.lookup("a", 0.0) == (MISS, None)
        cache.store("a", 1, 0.0)
        assert cache.lookup("a", 1.0) == (HIT, 1)

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.store("a", 1, 0.0)
        cache.store("b", 2, 1.0)
        cache.lookup("a", 2.0)  # refresh a; b is now LRU
        admitted, evicted = cache.store("c", 3, 3.0)
        assert admitted and evicted == ["b"]
        assert cache.lookup("a", 4.0)[0] == HIT
        assert cache.lookup("b", 4.0)[0] == MISS

    def test_restore_refreshes_value_without_eviction(self):
        cache = LRUCache(1)
        cache.store("a", 1, 0.0)
        admitted, evicted = cache.store("a", 2, 1.0)
        assert admitted and evicted == []
        assert cache.lookup("a", 2.0) == (HIT, 2)

    def test_discard_and_clear_and_len(self):
        cache = LRUCache(4)
        cache.store("a", 1, 0.0)
        cache.store("b", 2, 0.0)
        assert len(cache) == 2
        cache.discard("a")
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestLFU:
    def test_evicts_least_frequent(self):
        cache = LFUCache(2)
        cache.lookup("a", 0.0)
        cache.store("a", 1, 0.0)
        cache.lookup("b", 0.0)
        cache.store("b", 2, 0.0)
        for t in range(3):  # heat up a
            assert cache.lookup("a", float(t)) == (HIT, 1)
        # c has been seen twice -> beats b (seen once), not a.
        cache.lookup("c", 5.0)
        cache.lookup("c", 6.0)
        admitted, evicted = cache.store("c", 3, 6.0)
        assert admitted and evicted == ["b"]
        assert cache.lookup("a", 7.0)[0] == HIT

    def test_admission_refuses_one_hit_wonder(self):
        cache = LFUCache(1)
        cache.lookup("hot", 0.0)
        cache.store("hot", 1, 0.0)
        cache.lookup("hot", 1.0)
        # cold was seen once; hot twice -> store refused, hot stays.
        cache.lookup("cold", 2.0)
        admitted, evicted = cache.store("cold", 2, 2.0)
        assert not admitted and evicted == []
        assert cache.lookup("hot", 3.0)[0] == HIT

    def test_frequency_survives_eviction(self):
        # Perfect-LFU property: an evicted key's history persists, so
        # it re-enters ahead of colder keys instead of restarting.
        cache = LFUCache(1)
        for t in range(5):
            cache.lookup("a", float(t))
        cache.store("a", 1, 4.0)
        cache.discard("a")
        cache.lookup("b", 5.0)
        cache.store("b", 2, 5.0)
        cache.lookup("a", 6.0)
        admitted, evicted = cache.store("a", 1, 6.0)
        assert admitted and evicted == ["b"]

    def test_clear_drops_history(self):
        cache = LFUCache(1)
        for t in range(5):
            cache.lookup("a", float(t))
        cache.clear()
        cache.lookup("b", 5.0)
        cache.store("b", 2, 5.0)
        cache.lookup("a", 6.0)
        # post-clear, a (seen once) does not outrank b (seen once):
        # strict inequality required for admission.
        admitted, _ = cache.store("a", 1, 6.0)
        assert not admitted


class TestTTL:
    def test_expires_after_ttl(self):
        cache = TTLCache(LRUCache(4), ttl=10.0)
        cache.store("a", 1, 0.0)
        assert cache.lookup("a", 5.0) == (HIT, 1)
        assert cache.lookup("a", 10.0) == (EXPIRED, None)
        # the expired entry was removed: next lookup is a plain miss
        assert cache.lookup("a", 11.0) == (MISS, None)

    def test_store_refreshes_expiry(self):
        cache = TTLCache(LRUCache(4), ttl=10.0)
        cache.store("a", 1, 0.0)
        cache.store("a", 2, 8.0)
        assert cache.lookup("a", 12.0) == (HIT, 2)

    def test_rejects_nonpositive_ttl(self):
        with pytest.raises(ValueError):
            TTLCache(LRUCache(4), ttl=0.0)


class TestFrequencySketch:
    def test_estimates_track_increments(self):
        sketch = FrequencySketch(width=256, sample_size=10_000)
        for _ in range(5):
            sketch.increment("hot")
        sketch.increment("cold")
        assert sketch.estimate("hot") >= 5
        assert sketch.estimate("hot") > sketch.estimate("cold")
        assert sketch.estimate("never") <= sketch.estimate("cold")

    def test_aging_halves_counts(self):
        sketch = FrequencySketch(width=64, sample_size=8)
        for _ in range(8):  # the 8th increment triggers halving
            sketch.increment("k")
        assert sketch.estimate("k") == 4

    def test_deterministic_across_instances(self):
        # The hash must not depend on PYTHONHASHSEED: two sketches fed
        # identically must agree exactly.
        a = FrequencySketch(width=128, sample_size=1000)
        b = FrequencySketch(width=128, sample_size=1000)
        for key in ("x", "y", ("tuple", 3), 42):
            for _ in range(3):
                a.increment(key)
                b.increment(key)
            assert a.estimate(key) == b.estimate(key)


class TestTinyLFU:
    def test_scan_resistance(self):
        # A stream of one-hit wonders must not displace the hot set.
        cache = TinyLFUCache(2)
        for t in range(6):
            cache.lookup("hot", float(t))
            cache.store("hot", 1, float(t))
        for i in range(20):
            key = f"scan{i}"
            cache.lookup(key, 10.0 + i)
            cache.store(key, i, 10.0 + i)
        assert cache.lookup("hot", 50.0)[0] == HIT

    def test_admits_into_spare_capacity(self):
        cache = TinyLFUCache(4)
        cache.lookup("a", 0.0)
        admitted, evicted = cache.store("a", 1, 0.0)
        assert admitted and evicted == []


class TestMakePolicy:
    def test_builds_each_policy(self):
        assert isinstance(make_policy("lru", 4), LRUCache)
        assert isinstance(make_policy("lfu", 4), LFUCache)
        assert isinstance(make_policy("tinylfu", 4), TinyLFUCache)
        wrapped = make_policy("ttl", 4, ttl=1.0)
        assert isinstance(wrapped, TTLCache)
        assert isinstance(wrapped.inner, LRUCache)

    def test_ttl_wraps_any_base(self):
        wrapped = make_policy("lfu", 4, ttl=1.0)
        assert isinstance(wrapped, TTLCache)
        assert isinstance(wrapped.inner, LFUCache)

    def test_ttl_policy_requires_ttl(self):
        with pytest.raises(ValueError):
            make_policy("ttl", 4)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("arc", 4)

"""Live-harness integration: the worker hit path end to end."""

import time

import pytest

from repro.apps.base import Application, Client
from repro.batching import BatchingConfig
from repro.core import CacheConfig, FanoutConfig, HarnessConfig, run_harness
from repro.core.config import ExecutionConfig, ObservabilityConfig


class _CyclingClient(Client):
    """Deterministic key stream: 0,1,...,n-1,0,1,... — every key
    repeats, so a cache of capacity >= n hits on all but the first
    pass."""

    def __init__(self, n_keys):
        self._n = n_keys
        self._i = 0

    def next_request(self):
        key = self._i % self._n
        self._i += 1
        return key


class _SleepApp(Application):
    """Keyed busy-sleep app: misses cost real time, hits must not."""

    name = "sleep-keyed"
    domain = "synthetic"

    def __init__(self, n_keys=8, service=0.002):
        self._n_keys = n_keys
        self._service = service
        self.processed = 0

    def setup(self):
        pass

    def process(self, payload):
        self.processed += 1
        time.sleep(self._service)
        return ("value", payload)

    def make_client(self, seed=0):
        return _CyclingClient(self._n_keys)

    def cache_key(self, payload):
        return payload


class _UncacheableApp(_SleepApp):
    name = "sleep-unkeyed"

    def cache_key(self, payload):
        return None


def _config(**kwargs):
    defaults = dict(
        configuration="integrated",
        qps=300.0,
        n_threads=1,
        warmup_requests=20,
        measure_requests=200,
        seed=0,
    )
    defaults.update(kwargs)
    return HarnessConfig(**defaults)


class TestWorkerHitPath:
    def test_hits_short_circuit_service(self):
        app = _SleepApp(n_keys=8)
        result = run_harness(
            app,
            _config(cache=CacheConfig(enabled=True, capacity=16,
                                      hit_cost=0.0)),
        )
        counts = result.cache_counts
        # 220 requests over 8 cycling keys: 8 compulsory misses, the
        # rest hits.
        assert counts["misses"] == 8
        assert counts["hits"] == 212
        assert app.processed == 8
        # the result records carry the flag
        flagged = [r for r in result.stats.records if r.cache_hit]
        assert flagged
        # hit service time is near-zero; a miss pays the full sleep
        hit_service = [
            r.service_time for r in result.stats.records if r.cache_hit
        ]
        assert hit_service and max(hit_service) < 0.001
        assert "cache:" in result.describe()

    def test_uncacheable_app_bypasses_cache(self):
        app = _UncacheableApp(n_keys=8)
        result = run_harness(
            app, _config(cache=CacheConfig(enabled=True, capacity=16)),
        )
        assert result.cache_counts["hits"] == 0
        assert result.cache_counts["misses"] == 0
        assert app.processed == 220

    def test_disabled_cache_reports_no_counts(self):
        result = run_harness(_SleepApp(), _config())
        assert result.cache_counts == {}

    def test_trace_events_emitted_live(self):
        result = run_harness(
            _SleepApp(n_keys=4),
            _config(
                measure_requests=60,
                cache=CacheConfig(enabled=True, capacity=8),
                observability=ObservabilityConfig(tracing=True),
            ),
        )
        kinds = {event.kind for event in result.obs.events}
        assert "cache_hit" in kinds and "cache_miss" in kinds

    def test_cold_restart_live(self):
        # clear_at in wall seconds from run start: ~220 requests at
        # 300 qps span ~0.73s, so 0.3s lands mid-run.
        app = _SleepApp(n_keys=8)
        result = run_harness(
            app,
            _config(cache=CacheConfig(enabled=True, capacity=16,
                                      clear_at=0.3)),
        )
        # the wiped cache forces a second compulsory-miss pass
        assert result.cache_counts["misses"] >= 16
        assert app.processed >= 16


class TestHarnessComposition:
    def test_rejects_batching(self):
        with pytest.raises(ValueError):
            _config(
                cache=CacheConfig(enabled=True),
                batching=BatchingConfig(enabled=True),
            )

    def test_rejects_fanout(self):
        with pytest.raises(ValueError):
            _config(
                cache=CacheConfig(enabled=True),
                fanout=FanoutConfig(enabled=True, shards=2),
            )

    def test_rejects_process_execution(self):
        with pytest.raises(ValueError):
            _config(
                cache=CacheConfig(enabled=True),
                execution=ExecutionConfig(mode="process"),
            )

"""Simulator integration: bit-identity, hit economics, composition."""

import dataclasses

import pytest

from repro.batching import BatchingConfig
from repro.cache import predicted_hit_rate
from repro.control import AutoscalerConfig, ControlPlaneConfig
from repro.core import CacheConfig, FanoutConfig, ResilienceConfig
from repro.sim import SimConfig, simulate_load
from repro.sim.calibration import paper_profile

PROFILE = paper_profile("xapian")


def _fingerprint(result):
    return (
        tuple(round(x, 12) for x in result.stats.samples()),
        dict(result.outcomes),
        tuple(result.routed_counts),
    )


def _base(seed=0, **kwargs):
    defaults = dict(
        qps=0.5 / PROFILE.service.mean,
        n_threads=1,
        configuration="integrated",
        warmup_requests=100,
        measure_requests=1500,
        seed=seed,
    )
    defaults.update(kwargs)
    return SimConfig(**defaults)


class TestBitIdentity:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_disabled_equals_unconfigured(self, seed):
        # A config that never mentions the cache and one that names it
        # disabled must produce byte-identical runs: the subsystem off
        # is the subsystem absent.
        plain = simulate_load(PROFILE, _base(seed=seed))
        explicit = simulate_load(
            PROFILE,
            _base(seed=seed, cache=CacheConfig(enabled=False)),
        )
        assert _fingerprint(plain) == _fingerprint(explicit)

    def test_enabled_run_is_deterministic(self):
        config = _base(cache=CacheConfig(enabled=True, capacity=64))
        a = simulate_load(PROFILE, config)
        b = simulate_load(PROFILE, config)
        assert _fingerprint(a) == _fingerprint(b)
        assert a.cache_counts == b.cache_counts

    def test_enabled_differs_but_off_unaffected(self):
        # Running a cached sim must not perturb a later disabled run.
        before = _fingerprint(simulate_load(PROFILE, _base()))
        simulate_load(
            PROFILE, _base(cache=CacheConfig(enabled=True, capacity=64))
        )
        after = _fingerprint(simulate_load(PROFILE, _base()))
        assert before == after


class TestHitEconomics:
    def test_hits_are_cheap_and_counted(self):
        result = simulate_load(
            PROFILE,
            _base(
                measure_requests=3000,
                cache=CacheConfig(
                    enabled=True, policy="lfu", capacity=102,
                    sim_keyspace=512, sim_theta=0.9,
                ),
            ),
        )
        counts = result.cache_counts
        rate = counts["hits"] / (counts["hits"] + counts["misses"])
        predicted = predicted_hit_rate(512, 0.9, 102)
        assert abs(rate - predicted) <= 0.05
        # cached load completes the same requests with less busy time
        baseline = simulate_load(PROFILE, _base(measure_requests=3000))
        assert result.utilization < baseline.utilization
        assert "cache:" in result.describe()

    def test_ttl_expires_in_virtual_time(self):
        result = simulate_load(
            PROFILE,
            _base(cache=CacheConfig(
                enabled=True, capacity=512, ttl=0.25,
            )),
        )
        assert result.cache_counts["expirations"] > 0

    def test_cold_restart_clears_midrun(self):
        warm_cfg = _base(cache=CacheConfig(enabled=True, capacity=102))
        cold_cfg = _base(cache=CacheConfig(
            enabled=True, capacity=102, clear_at=1.0,
        ))
        warm = simulate_load(PROFILE, warm_cfg)
        cold = simulate_load(PROFILE, cold_cfg)
        # the wiped cache re-pays misses it had already absorbed
        assert cold.cache_counts["misses"] > warm.cache_counts["misses"]

    def test_routed_multiserver_path_feeds_keys(self):
        result = simulate_load(
            PROFILE,
            _base(
                n_servers=2,
                cache=CacheConfig(enabled=True, capacity=64),
            ),
        )
        assert result.cache_counts["hits"] > 0


class TestControlComposition:
    def test_autoscaler_reacts_to_cold_cache_overload(self):
        # Warm cache carries the load on one replica; wiping it pushes
        # effective utilization past 1 and queue depth up, which is the
        # signal the autoscaler scales on — the tentpole's
        # cached-steady-state -> cold restart -> overload -> recovery
        # composition, in one assertion.
        qps = 1.3 / PROFILE.service.mean
        span = 3000 / qps
        control = ControlPlaneConfig(
            enabled=True,
            tick_interval=0.05,
            autoscaler=AutoscalerConfig(
                min_servers=1, max_servers=3,
                scale_up_depth=4.0, scale_down_util=0.1,
                hysteresis_ticks=2, cooldown=0.2,
            ),
        )
        base = dict(
            qps=qps, n_threads=1, configuration="integrated",
            warmup_requests=200, measure_requests=2800, seed=0,
            control=control,
        )
        warm = simulate_load(PROFILE, SimConfig(
            cache=CacheConfig(enabled=True, policy="lfu", capacity=102),
            **base,
        ))
        cold = simulate_load(PROFILE, SimConfig(
            cache=CacheConfig(
                enabled=True, policy="lfu", capacity=102,
                clear_at=0.5 * span,
            ),
            **base,
        ))
        assert cold.control_counts["scale_ups"] >= warm.control_counts[
            "scale_ups"
        ]
        assert cold.cache_counts["misses"] > warm.cache_counts["misses"]


class TestComposition:
    def test_rejects_batching(self):
        with pytest.raises(ValueError):
            _base(
                cache=CacheConfig(enabled=True),
                batching=BatchingConfig(enabled=True),
            )

    def test_rejects_fanout(self):
        with pytest.raises(ValueError):
            _base(
                cache=CacheConfig(enabled=True),
                fanout=FanoutConfig(enabled=True, shards=2),
            )

    def test_rejects_resilience(self):
        with pytest.raises(ValueError):
            _base(
                cache=CacheConfig(enabled=True),
                resilience=ResilienceConfig(deadline=0.05, max_retries=2),
            )

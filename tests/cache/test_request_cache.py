"""The counting/tracing front door, including the cold-restart model."""

import pytest

from repro.cache import RequestCache, build_cache
from repro.cache.policies import LRUCache, TTLCache
from repro.core import CacheConfig
from repro.obs.metrics import MetricsRegistry


class _Recorder:
    """Minimal tracer double: records (kind, ts, kwargs)."""

    def __init__(self):
        self.events = []

    def emit(self, kind, ts, **kwargs):
        self.events.append((kind, ts, kwargs))

    def kinds(self):
        return [kind for kind, _, _ in self.events]


class TestCounters:
    def test_hit_miss_and_rate(self):
        cache = RequestCache(LRUCache(2))
        hit, value = cache.lookup("a", 0.0)
        assert not hit and value is None
        cache.store("a", 41, 0.0)
        hit, value = cache.lookup("a", 1.0)
        assert hit and value == 41
        assert cache.counts()["hits"] == 1
        assert cache.counts()["misses"] == 1
        assert cache.hit_rate == 0.5

    def test_eviction_and_expiry_counters(self):
        cache = RequestCache(TTLCache(LRUCache(1), ttl=5.0))
        cache.store("a", 1, 0.0)
        cache.store("b", 2, 1.0)          # evicts a
        assert cache.counts()["evictions"] == 1
        hit, _ = cache.lookup("b", 6.0)   # expired
        assert not hit
        assert cache.counts()["expirations"] == 1
        # an expired lookup is also a miss
        assert cache.counts()["misses"] == 1

    def test_rejects_negative_hit_cost(self):
        with pytest.raises(ValueError):
            RequestCache(LRUCache(2), hit_cost=-1.0)


class TestTraceEvents:
    def test_hit_miss_evict_expire_emitted(self):
        tracer = _Recorder()
        cache = RequestCache(TTLCache(LRUCache(1), ttl=5.0), tracer=tracer)
        cache.lookup("a", 0.0, request_id=1)
        cache.store("a", 1, 0.0, request_id=1)
        cache.lookup("a", 1.0, request_id=2)
        cache.store("b", 2, 2.0, request_id=3)   # evicts a
        cache.lookup("b", 9.0, request_id=4)     # expired -> miss
        assert tracer.kinds() == [
            "cache_miss", "cache_hit", "cache_evict",
            "cache_expire", "cache_miss",
        ]
        # the expire/miss pair shares the request's identity
        expire = tracer.events[3]
        assert expire[2]["request_id"] == 4

    def test_clear_event_carries_dropped_count(self):
        tracer = _Recorder()
        cache = RequestCache(LRUCache(4), clear_at=10.0, tracer=tracer)
        cache.store("a", 1, 0.0)
        cache.store("b", 2, 1.0)
        cache.lookup("a", 10.5)
        clears = [e for e in tracer.events if e[0] == "cache_clear"]
        assert len(clears) == 1
        assert clears[0][2]["value"] == 2.0


class TestColdRestart:
    def test_clears_once_past_clear_at(self):
        cache = RequestCache(LRUCache(4), clear_at=10.0)
        cache.store("a", 1, 0.0)
        hit, _ = cache.lookup("a", 9.9)
        assert hit
        hit, _ = cache.lookup("a", 10.0)   # wiped at this access
        assert not hit and len(cache) == 0
        # refills normally afterwards — the clear fires only once
        cache.store("a", 1, 11.0)
        hit, _ = cache.lookup("a", 12.0)
        assert hit

    def test_origin_shifts_clear_instant(self):
        cache = RequestCache(LRUCache(4), clear_at=10.0)
        cache.set_origin(100.0)
        cache.store("a", 1, 105.0)
        assert cache.lookup("a", 109.0)[0]
        assert not cache.lookup("a", 110.0)[0]


class TestMetrics:
    def test_gauges_and_histogram_registered(self):
        registry = MetricsRegistry()
        cache = RequestCache(LRUCache(2))
        cache.register_metrics(registry)
        cache.lookup("a", 0.0)
        cache.store("a", 1, 0.0)
        cache.lookup("a", 1.0)
        snapshot = registry.snapshot()
        assert snapshot["tb_cache_hit_rate"] == 0.5
        assert snapshot["tb_cache_occupancy"] == 1.0
        assert "tb_cache_occupancy_ratio" in snapshot


class TestBuildCache:
    def test_builds_from_config(self):
        cache = build_cache(
            CacheConfig(enabled=True, policy="lru", capacity=8,
                        hit_cost=1e-6, clear_at=5.0)
        )
        assert isinstance(cache, RequestCache)
        assert cache.hit_cost == 1e-6
        assert cache._policy.capacity == 8

    def test_refuses_disabled_config(self):
        with pytest.raises(ValueError):
            build_cache(CacheConfig(enabled=False))

    def test_ttl_config_wraps(self):
        cache = build_cache(
            CacheConfig(enabled=True, policy="lfu", capacity=8, ttl=2.0)
        )
        assert isinstance(cache._policy, TTLCache)


class TestConfigValidation:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            CacheConfig(enabled=True, policy="arc")

    def test_rejects_bad_capacity_ttl_costs(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity=0)
        with pytest.raises(ValueError):
            CacheConfig(ttl=0.0)
        with pytest.raises(ValueError):
            CacheConfig(hit_cost=-1e-6)
        with pytest.raises(ValueError):
            CacheConfig(clear_at=0.0)

    def test_ttl_policy_requires_ttl(self):
        with pytest.raises(ValueError):
            CacheConfig(policy="ttl")

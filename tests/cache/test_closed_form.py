"""Closed-form Zipf hit-rate prediction vs empirical policy behavior."""

import random

import pytest

from repro.cache import capacity_for_hit_rate, predicted_hit_rate
from repro.cache.policies import HIT, make_policy
from repro.stats import ZipfianGenerator

KEYSPACE = 512
N_DRAWS = 20_000


def _empirical_hit_rate(policy_name, capacity, theta, seed=11,
                        n=N_DRAWS, keyspace=KEYSPACE):
    policy = make_policy(policy_name, capacity)
    rng = random.Random(seed)
    zipf = ZipfianGenerator(keyspace, theta=theta)
    hits = 0
    for i in range(n):
        key = zipf.sample(rng)
        status, _ = policy.lookup(key, float(i))
        if status == HIT:
            hits += 1
        else:
            policy.store(key, True, float(i))
    return hits / n


class TestPredictedHitRate:
    def test_is_top_c_popularity_mass(self):
        zipf = ZipfianGenerator(100, theta=0.9)
        expected = sum(zipf.probability(rank) for rank in range(10))
        assert predicted_hit_rate(100, 0.9, 10) == pytest.approx(expected)

    def test_saturates_at_full_keyspace(self):
        assert predicted_hit_rate(100, 0.9, 100) == pytest.approx(1.0)
        assert predicted_hit_rate(100, 0.9, 500) == pytest.approx(1.0)

    def test_monotone_in_capacity_and_theta(self):
        rates = [predicted_hit_rate(256, 0.9, c) for c in (4, 16, 64)]
        assert rates[0] < rates[1] < rates[2]
        # more skew -> the same capacity covers more mass
        assert (
            predicted_hit_rate(256, 1.1, 16)
            > predicted_hit_rate(256, 0.6, 16)
        )

    def test_capacity_inverse(self):
        capacity = capacity_for_hit_rate(256, 0.9, 0.5)
        assert predicted_hit_rate(256, 0.9, capacity) >= 0.5
        assert predicted_hit_rate(256, 0.9, capacity - 1) < 0.5


class TestEmpiricalAgreement:
    @pytest.mark.parametrize("theta", [0.6, 0.9, 1.1])
    @pytest.mark.parametrize("fraction", [0.01, 0.05, 0.20])
    def test_lfu_within_five_percent_absolute(self, theta, fraction):
        capacity = max(1, int(KEYSPACE * fraction))
        predicted = predicted_hit_rate(KEYSPACE, theta, capacity)
        measured = _empirical_hit_rate("lfu", capacity, theta)
        assert abs(measured - predicted) <= 0.05

    @pytest.mark.parametrize("theta", [0.6, 0.9, 1.1])
    def test_lru_below_frequency_optimal_bound(self, theta):
        # LRU pays recency churn: it must sit at (or below) the
        # closed-form bound, never meaningfully above it.
        capacity = max(1, int(KEYSPACE * 0.05))
        predicted = predicted_hit_rate(KEYSPACE, theta, capacity)
        measured = _empirical_hit_rate("lru", capacity, theta)
        assert measured <= predicted + 0.02
        # ...and the gap is real, which is what makes LFU worth having.
        assert measured < predicted

    def test_tinylfu_beats_lru_under_zipf(self):
        capacity = max(1, int(KEYSPACE * 0.05))
        lru = _empirical_hit_rate("lru", capacity, 0.9)
        tiny = _empirical_hit_rate("tinylfu", capacity, 0.9)
        assert tiny > lru

"""Tests for the branch predictor, hierarchy, traces, and MPKI driver."""

import pytest

from repro.archsim import (
    TRACE_PROFILES,
    CacheHierarchy,
    GsharePredictor,
    TraceGenerator,
    TraceProfile,
    characterize_app,
)
from repro.archsim.trace import BRANCH, FETCH, MEM


class TestGshare:
    def test_learns_always_taken(self):
        predictor = GsharePredictor()
        for _ in range(200):
            predictor.update(0x400, True)
        before = predictor.mispredictions
        for _ in range(100):
            predictor.update(0x400, True)
        assert predictor.mispredictions == before

    def test_learns_alternating_pattern_via_history(self):
        predictor = GsharePredictor(history_bits=4)
        outcome = True
        for _ in range(400):
            predictor.update(0x400, outcome)
            outcome = not outcome
        predictor.predictions = predictor.mispredictions = 0
        for _ in range(200):
            predictor.update(0x400, outcome)
            outcome = not outcome
        assert predictor.misprediction_rate < 0.1

    def test_random_outcomes_mispredict_half(self):
        import random

        rng = random.Random(0)
        predictor = GsharePredictor()
        for _ in range(5000):
            predictor.update(0x400, rng.random() < 0.5)
        assert predictor.misprediction_rate == pytest.approx(0.5, abs=0.08)

    def test_mpki(self):
        predictor = GsharePredictor()
        predictor.mispredictions = 12
        assert predictor.mpki(3000) == pytest.approx(4.0)

    def test_init_value(self):
        taken_init = GsharePredictor(init_value=2)
        assert taken_init.predict(0x400) is True
        nt_init = GsharePredictor(init_value=1)
        assert nt_init.predict(0x400) is False

    def test_validation(self):
        with pytest.raises(ValueError):
            GsharePredictor(table_bits=0)
        with pytest.raises(ValueError):
            GsharePredictor(init_value=4)
        with pytest.raises(ValueError):
            GsharePredictor().mpki(0)


class TestCacheHierarchy:
    def test_levels_sized_per_table2(self):
        h = CacheHierarchy()
        assert h.l1i.size_bytes == 32 * 1024
        assert h.l1d.size_bytes == 32 * 1024
        assert h.l2.size_bytes == 256 * 1024
        assert h.l3.size_bytes == 20 * 1024 * 1024
        assert h.l3.ways == 20

    def test_miss_propagates_down(self):
        h = CacheHierarchy()
        h.load_store(0x123456)
        assert h.l1d.misses == 1
        assert h.l2.misses == 1
        assert h.l3.misses == 1
        h.load_store(0x123456)
        assert h.l1d.hits == 1
        assert h.l2.misses == 1  # filtered by L1 hit

    def test_l2_catches_l1_evictions(self):
        h = CacheHierarchy()
        # Touch 64 KB of data (fits L2, exceeds L1D).
        addrs = [i * 64 for i in range(1024)]
        for addr in addrs:
            h.load_store(addr)
        h.l1d.reset_stats()
        h.l2.reset_stats()
        h.l3.reset_stats()
        for addr in addrs:
            h.load_store(addr)
        assert h.l2.misses == 0  # everything L2-resident
        assert h.l1d.misses > 0

    def test_fetch_uses_l1i(self):
        h = CacheHierarchy()
        h.fetch(0x400000)
        assert h.l1i.misses == 1
        assert h.l1d.misses == 0
        assert h.instructions == 1

    def test_stats_require_instructions(self):
        with pytest.raises(ValueError):
            CacheHierarchy().stats()

    def test_stats_mpki(self):
        h = CacheHierarchy()
        for i in range(1000):
            h.fetch(0x400000)  # 1 miss total
        stats = h.stats()
        assert stats.l1i_mpki == pytest.approx(1.0)
        assert stats.as_dict()["L1I"] == pytest.approx(1.0)


class TestTraceGenerator:
    def test_event_mix_matches_profile(self):
        profile = TRACE_PROFILES["xapian"]
        gen = TraceGenerator(profile, seed=0)
        counts = {FETCH: 0, MEM: 0, BRANCH: 0}
        for kind, _ in gen.events(20000):
            counts[kind] += 1
        assert counts[FETCH] == 20000
        assert counts[MEM] / 20000 == pytest.approx(profile.mem_fraction, abs=0.02)
        assert counts[BRANCH] / 20000 == pytest.approx(
            profile.branch_fraction, abs=0.02
        )

    def test_deterministic(self):
        profile = TRACE_PROFILES["silo"]
        a = list(TraceGenerator(profile, seed=3).events(500))
        b = list(TraceGenerator(profile, seed=3).events(500))
        assert a == b

    def test_profiles_exist_for_all_apps(self):
        assert set(TRACE_PROFILES) == {
            "xapian", "masstree", "moses", "sphinx",
            "img-dnn", "specjbb", "silo", "shore",
        }

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            TraceProfile("bad", code_kb=0, jump_prob=0.1, mem_fraction=0.3)
        with pytest.raises(ValueError):
            TraceProfile(
                "bad", code_kb=10, jump_prob=0.1, mem_fraction=0.3,
                warm_weight=0.9, cold_weight=0.9,
            )

    def test_validation_of_length(self):
        gen = TraceGenerator(TRACE_PROFILES["silo"], seed=0)
        with pytest.raises(ValueError):
            list(gen.events(0))


class TestCharacterization:
    def test_mpki_ordering_matches_table1(self):
        # Spot-check the strongest cross-app contrasts of Table I with
        # a short trace (full-precision runs live in the benchmarks).
        shore = characterize_app("shore", n_instructions=60_000)
        silo = characterize_app("silo", n_instructions=60_000)
        imgdnn = characterize_app("img-dnn", n_instructions=60_000)
        sphinx = characterize_app("sphinx", n_instructions=60_000)
        # shore has the suite's worst L1I; sphinx nearly none.
        assert shore.l1i > 5 * sphinx.l1i
        # img-dnn has by far the worst L1D; silo the best.
        assert imgdnn.l1d > 10 * silo.l1d
        # img-dnn's branches are almost perfectly predictable.
        assert imgdnn.branch < 1.0 < silo.branch

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            characterize_app("doom")

    def test_row_conversion(self):
        result = characterize_app("silo", n_instructions=20_000)
        row = result.as_row()
        assert set(row) == {
            "L1I MPKI", "L1D MPKI", "L2 MPKI", "L3 MPKI", "Branch MPKI"
        }

    def test_warmup_fraction_validated(self):
        with pytest.raises(ValueError):
            characterize_app("silo", n_instructions=1000, warmup_fraction=1.0)

"""Tests for the set-associative cache and replacement policies."""

import pytest

from repro.archsim import (
    BrripPolicy,
    DrripPolicy,
    LruPolicy,
    SetAssociativeCache,
    SrripPolicy,
)


class TestGeometry:
    def test_set_count(self):
        cache = SetAssociativeCache(32 * 1024, ways=8, line_bytes=64)
        assert cache.n_sets == 64

    def test_fully_associative(self):
        cache = SetAssociativeCache(8 * 64, ways=8, line_bytes=64)
        assert cache.n_sets == 1

    def test_validates_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, ways=8, line_bytes=64)  # not multiple
        with pytest.raises(ValueError):
            SetAssociativeCache(0, ways=8)


class TestBasicBehaviour:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(4 * 1024, ways=4)
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_different_bytes_hit(self):
        cache = SetAssociativeCache(4 * 1024, ways=4, line_bytes=64)
        cache.access(0x1000)
        assert cache.access(0x1030) is True  # same 64B line

    def test_adjacent_lines_distinct(self):
        cache = SetAssociativeCache(4 * 1024, ways=4, line_bytes=64)
        cache.access(0x1000)
        assert cache.access(0x1040) is False

    def test_working_set_within_capacity_all_hits(self):
        cache = SetAssociativeCache(8 * 1024, ways=8, line_bytes=64)
        addrs = [i * 64 for i in range(128)]  # exactly 8 KB
        for addr in addrs:
            cache.access(addr)
        cache.reset_stats()
        for addr in addrs:
            assert cache.access(addr) is True
        assert cache.miss_rate == 0.0

    def test_working_set_beyond_capacity_misses(self):
        cache = SetAssociativeCache(4 * 1024, ways=4, line_bytes=64)
        addrs = [i * 64 for i in range(256)]  # 16 KB >> 4 KB
        for _ in range(3):
            for addr in addrs:
                cache.access(addr)
        # Sequential sweep over 4x capacity with LRU: every access misses.
        assert cache.miss_rate > 0.9

    def test_contains_probe_no_side_effects(self):
        cache = SetAssociativeCache(4 * 1024, ways=4)
        cache.access(0x2000)
        hits, misses = cache.hits, cache.misses
        assert cache.contains(0x2000)
        assert not cache.contains(0x9000)
        assert (cache.hits, cache.misses) == (hits, misses)

    def test_reset_stats(self):
        cache = SetAssociativeCache(4 * 1024, ways=4)
        cache.access(0x0)
        cache.reset_stats()
        assert cache.accesses == 0


class TestLru:
    def test_evicts_least_recently_used(self):
        # 2-way, single-set cache: A, B, touch A, insert C -> B evicted.
        cache = SetAssociativeCache(2 * 64, ways=2, line_bytes=64)
        a, b, c = 0x000, 0x040, 0x080
        cache.access(a)
        cache.access(b)
        cache.access(a)  # A is now MRU
        cache.access(c)  # evicts B
        assert cache.contains(a)
        assert cache.contains(c)
        assert not cache.contains(b)


class TestRrip:
    def test_srrip_hit_promotes(self):
        policy = SrripPolicy(max_rrpv=3)
        state = policy.new_set_state(4)
        policy.on_fill(state, 0)
        assert state.rrpv[0] == 2
        policy.on_hit(state, 0)
        assert state.rrpv[0] == 0

    def test_srrip_victim_search_ages(self):
        policy = SrripPolicy(max_rrpv=3)
        state = policy.new_set_state(2)
        policy.on_fill(state, 0)
        policy.on_hit(state, 0)  # rrpv 0
        policy.on_fill(state, 1)  # rrpv 2
        assert policy.victim(state) == 1  # ages until someone hits max

    def test_brrip_mostly_fills_distant(self):
        policy = BrripPolicy(max_rrpv=3, long_probability=0.0)
        state = policy.new_set_state(2)
        policy.on_fill(state, 0)
        assert state.rrpv[0] == 3

    def test_srrip_scan_resistance(self):
        # A hot working set + a big streaming scan: SRRIP keeps more of
        # the hot set than LRU does.
        def run(policy):
            cache = SetAssociativeCache(
                4 * 1024, ways=4, line_bytes=64, policy=policy
            )
            hot = [i * 64 for i in range(32)]
            for _ in range(20):
                for addr in hot:
                    cache.access(addr)
            scan = [0x100000 + i * 64 for i in range(512)]
            for addr in scan:
                cache.access(addr)
            cache.reset_stats()
            for addr in hot:
                cache.access(addr)
            return cache.hits

        assert run(SrripPolicy()) >= run(LruPolicy())

    def test_drrip_runs_and_duels(self):
        policy = DrripPolicy()
        cache = SetAssociativeCache(
            64 * 1024, ways=4, line_bytes=64, policy=policy
        )
        for i in range(20000):
            cache.access((i * 64) % (256 * 1024))
        assert cache.accesses == 20000
        assert 0 <= policy.psel <= (1 << 10) - 1

    def test_drrip_correctness_as_cache(self):
        cache = SetAssociativeCache(
            2 * 1024, ways=4, line_bytes=64, policy=DrripPolicy()
        )
        cache.access(0x500)
        assert cache.access(0x500) is True

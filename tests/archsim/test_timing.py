"""Tests for the CPI timing model."""

import pytest

from repro.archsim import (
    AppMpki,
    CpiEstimate,
    TimingParameters,
    cpi_from_mpki,
    estimate_cpi,
)


def make_mpki(name="x", l1i=0.0, l1d=0.0, l2=0.0, l3=0.0, branch=0.0):
    return AppMpki(
        name=name, instructions=1000, l1i=l1i, l1d=l1d, l2=l2, l3=l3,
        branch=branch,
    )


class TestCpiFromMpki:
    def test_perfect_caches_give_base_cpi(self):
        estimate = cpi_from_mpki(make_mpki())
        assert estimate.cpi == pytest.approx(TimingParameters().base_cpi)
        assert estimate.memory_boundness == 0.0
        assert estimate.ideal_memory_speedup == pytest.approx(1.0)

    def test_l2_hits_cost_l2_penalty(self):
        params = TimingParameters()
        # 10 L1D misses/ki, all hit L2 (l2 mpki = 0).
        estimate = cpi_from_mpki(make_mpki(l1d=10.0), params)
        expected = params.base_cpi + 10.0 * params.l2_hit_penalty / 1000.0
        assert estimate.cpi == pytest.approx(expected)

    def test_memory_misses_dominate(self):
        params = TimingParameters()
        estimate = cpi_from_mpki(make_mpki(l1d=10.0, l2=10.0, l3=10.0), params)
        assert estimate.memory_component == pytest.approx(
            10.0 * params.memory_penalty / 1000.0
        )
        assert estimate.memory_component > estimate.l2_component

    def test_branch_component(self):
        params = TimingParameters()
        estimate = cpi_from_mpki(make_mpki(branch=5.0), params)
        assert estimate.branch_component == pytest.approx(
            5.0 * params.branch_penalty / 1000.0
        )
        # Branch cost is NOT removed by ideal memory.
        assert estimate.ideal_memory_cpi == pytest.approx(
            params.base_cpi + estimate.branch_component
        )

    def test_components_sum_to_cpi(self):
        estimate = cpi_from_mpki(
            make_mpki(l1i=2.0, l1d=20.0, l2=8.0, l3=3.0, branch=6.0)
        )
        total = (
            estimate.base
            + estimate.l2_component
            + estimate.l3_component
            + estimate.memory_component
            + estimate.branch_component
        )
        assert estimate.cpi == pytest.approx(total)

    def test_inclusive_hierarchy_clamps(self):
        # l2 mpki larger than l1 misses (possible with instruction
        # traffic counted differently) must not produce negative hits.
        estimate = cpi_from_mpki(make_mpki(l1d=1.0, l2=5.0, l3=0.0))
        assert estimate.l2_component == 0.0
        assert estimate.cpi > 0

    def test_params_validation(self):
        with pytest.raises(ValueError):
            TimingParameters(base_cpi=-1.0)


class TestEstimateCpi:
    def test_case_study_cross_check(self):
        # Trace-grounded memory-boundness must agree with the Sec. VII
        # conclusions: moses is strongly memory-bound, silo is not.
        moses = estimate_cpi("moses", n_instructions=80_000)
        silo = estimate_cpi("silo", n_instructions=80_000)
        assert moses.memory_boundness > 0.7
        assert silo.memory_boundness < 0.5
        assert moses.ideal_memory_speedup > 2 * silo.ideal_memory_speedup

    def test_cpi_ordering_tracks_memory_traffic(self):
        imgdnn = estimate_cpi("img-dnn", n_instructions=80_000)
        masstree = estimate_cpi("masstree", n_instructions=80_000)
        assert imgdnn.cpi > masstree.cpi

    def test_returns_estimate(self):
        estimate = estimate_cpi("xapian", n_instructions=50_000)
        assert isinstance(estimate, CpiEstimate)
        assert estimate.name == "xapian"
        assert estimate.cpi > 0

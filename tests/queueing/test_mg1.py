"""Tests for M/G/1 analysis (Pollaczek–Khinchine)."""

import math

import pytest

from repro.queueing import mean_queue_length, mean_sojourn, mean_wait, utilization
from repro.stats import Deterministic, Exponential, Hyperexponential


class TestUtilization:
    def test_rho(self):
        assert utilization(500.0, Exponential.from_mean(1e-3)) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            utilization(0.0, Deterministic(1.0))


class TestMeanWait:
    def test_mm1_closed_form(self):
        # M/M/1: W_q = rho / (mu - lambda).
        service = Exponential.from_mean(1e-3)
        lam = 600.0
        expected = 0.6 / (1000.0 - 600.0)
        assert mean_wait(lam, service) == pytest.approx(expected)

    def test_md1_is_half_of_mm1(self):
        # Deterministic service halves P-K waiting vs exponential.
        lam = 500.0
        exp_wait = mean_wait(lam, Exponential.from_mean(1e-3))
        det_wait = mean_wait(lam, Deterministic(1e-3))
        assert det_wait == pytest.approx(exp_wait / 2.0)

    def test_high_variance_waits_longer(self):
        lam = 500.0
        hyper = Hyperexponential([(0.9, 0.5e-3), (0.1, 5.5e-3)])
        assert abs(hyper.mean - 1e-3) < 1e-6
        assert mean_wait(lam, hyper) > mean_wait(lam, Exponential.from_mean(1e-3))

    def test_saturation_infinite(self):
        service = Deterministic(1e-3)
        assert math.isinf(mean_wait(1000.0, service))
        assert math.isinf(mean_wait(1500.0, service))

    def test_wait_monotone_in_load(self):
        service = Exponential.from_mean(1e-3)
        waits = [mean_wait(l, service) for l in (100, 400, 700, 950)]
        assert waits == sorted(waits)


class TestDerived:
    def test_sojourn_is_wait_plus_service(self):
        service = Deterministic(2e-3)
        lam = 300.0
        assert mean_sojourn(lam, service) == pytest.approx(
            mean_wait(lam, service) + 2e-3
        )

    def test_littles_law(self):
        service = Exponential.from_mean(1e-3)
        lam = 800.0
        assert mean_queue_length(lam, service) == pytest.approx(
            lam * mean_wait(lam, service)
        )

    def test_infinite_propagates(self):
        assert math.isinf(mean_sojourn(2000.0, Deterministic(1e-3)))
        assert math.isinf(mean_queue_length(2000.0, Deterministic(1e-3)))

"""Tests for M/G/k analysis."""

import math

import pytest

from repro.queueing import (
    erlang_c,
    mean_wait,
    mgk_mean_sojourn,
    mgk_mean_wait,
    mgk_percentiles,
    mmk_mean_wait,
)
from repro.stats import Deterministic, Exponential


class TestErlangC:
    def test_zero_load_never_waits(self):
        assert erlang_c(4, 0.0) == pytest.approx(0.0)

    def test_saturation_always_waits(self):
        assert erlang_c(2, 2.0) == 1.0
        assert erlang_c(2, 3.0) == 1.0

    def test_single_server_equals_rho(self):
        # M/M/1: P(wait) = rho.
        assert erlang_c(1, 0.7) == pytest.approx(0.7)

    def test_known_value(self):
        # Classic Erlang-C table: k=3, a=2 -> ~0.4444.
        assert erlang_c(3, 2.0) == pytest.approx(4.0 / 9.0, rel=1e-6)

    def test_more_servers_less_waiting(self):
        assert erlang_c(8, 4.0) < erlang_c(5, 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(2, -1.0)


class TestMmkWait:
    def test_k1_matches_mm1(self):
        lam, mean_s = 600.0, 1e-3
        expected = 0.6 / (1000.0 - 600.0)
        assert mmk_mean_wait(lam, mean_s, 1) == pytest.approx(expected)

    def test_saturation_infinite(self):
        assert math.isinf(mmk_mean_wait(4000.0, 1e-3, 4))

    def test_pooling_benefit(self):
        # 4 servers at equal per-server load wait far less than 1.
        one = mmk_mean_wait(700.0, 1e-3, 1)
        four = mmk_mean_wait(2800.0, 1e-3, 4)
        assert four < one / 2


class TestMgkWait:
    def test_k1_deterministic_matches_pk(self):
        service = Deterministic(1e-3)
        lam = 700.0
        assert mgk_mean_wait(lam, service, 1) == pytest.approx(
            mean_wait(lam, service)
        )

    def test_k1_exponential_matches_pk(self):
        service = Exponential.from_mean(1e-3)
        lam = 500.0
        assert mgk_mean_wait(lam, service, 1) == pytest.approx(
            mean_wait(lam, service)
        )

    def test_scv_scaling(self):
        det = Deterministic(1e-3)
        exp = Exponential.from_mean(1e-3)
        lam, k = 2800.0, 4
        assert mgk_mean_wait(lam, det, k) == pytest.approx(
            mgk_mean_wait(lam, exp, k) / 2.0
        )

    def test_sojourn_adds_service(self):
        service = Exponential.from_mean(1e-3)
        assert mgk_mean_sojourn(1000.0, service, 2) == pytest.approx(
            mgk_mean_wait(1000.0, service, 2) + 1e-3
        )


class TestMgkPercentiles:
    def test_simulation_matches_lee_longton_mean(self):
        service = Exponential.from_mean(1e-3)
        lam, k = 2400.0, 4
        result = mgk_percentiles(service, qps=lam, k=k, measure_requests=60_000)
        analytic = mgk_mean_sojourn(lam, service, k)
        assert result.sojourn.mean == pytest.approx(analytic, rel=0.1)

    def test_returns_full_percentiles(self):
        result = mgk_percentiles(
            Exponential.from_mean(1e-3), qps=500.0, k=1, measure_requests=5000
        )
        assert result.sojourn.p99 > result.sojourn.p95 > result.sojourn.p50

"""Tests for closed-form M/M/k percentiles."""

import math

import pytest

from repro.queueing import (
    mgk_percentiles,
    mm1_sojourn_percentile,
    mmk_wait_ccdf,
    mmk_wait_percentile,
)
from repro.stats import Exponential


class TestWaitCcdf:
    def test_at_zero_equals_erlang_c(self):
        from repro.queueing import erlang_c

        assert mmk_wait_ccdf(600.0, 1e-3, 1, 0.0) == pytest.approx(
            erlang_c(1, 0.6)
        )

    def test_decreasing_in_t(self):
        values = [mmk_wait_ccdf(600.0, 1e-3, 2, t) for t in (0, 1e-3, 5e-3)]
        assert values == sorted(values, reverse=True)

    def test_saturated_rejected(self):
        with pytest.raises(ValueError):
            mmk_wait_ccdf(2000.0, 1e-3, 1, 0.0)


class TestWaitPercentile:
    def test_zero_when_most_arrivals_do_not_wait(self):
        # At 10% load, P(wait) = 0.1 < 0.5 tail mass of the median.
        assert mmk_wait_percentile(100.0, 1e-3, 1, 50.0) == 0.0

    def test_inverse_of_ccdf(self):
        lam, s, k, pct = 700.0, 1e-3, 1, 99.0
        t = mmk_wait_percentile(lam, s, k, pct)
        assert mmk_wait_ccdf(lam, s, k, t) == pytest.approx(0.01)

    def test_matches_simulation(self):
        lam, s, k = 2800.0, 1e-3, 4
        analytic = mmk_wait_percentile(lam, s, k, 95.0)
        sim = mgk_percentiles(
            Exponential.from_mean(s), qps=lam, k=k, measure_requests=60_000
        )
        assert sim.queue.p95 == pytest.approx(analytic, rel=0.15)


class TestMm1Sojourn:
    def test_closed_form(self):
        # mu=1000, lambda=500 => T ~ Exp(500); p95 = ln(20)/500.
        assert mm1_sojourn_percentile(500.0, 1e-3, 95.0) == pytest.approx(
            math.log(20.0) / 500.0
        )

    def test_matches_simulation(self):
        lam, s = 600.0, 1e-3
        sim = mgk_percentiles(
            Exponential.from_mean(s), qps=lam, k=1, measure_requests=60_000
        )
        assert sim.sojourn.p99 == pytest.approx(
            mm1_sojourn_percentile(lam, s, 99.0), rel=0.12
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            mm1_sojourn_percentile(500.0, 1e-3, 0.0)
        with pytest.raises(ValueError):
            mm1_sojourn_percentile(1500.0, 1e-3, 95.0)

"""Tests for the multi-process networked harness."""

import pytest

from repro.core import HarnessConfig
from repro.core.transport import AppServerProcess, run_harness_multiprocess
from repro.core.transport.protocol import recv_message, send_message


class TestAppServerProcess:
    def test_start_connect_roundtrip_stop(self):
        server = AppServerProcess("masstree", {"n_records": 200})
        try:
            port = server.start()
            assert port > 0
            conn = server.connect()
            from repro.workloads import YcsbOperation, make_key

            send_message(
                conn,
                {"id": 1, "payload": YcsbOperation("get", make_key(0))},
            )
            reply = recv_message(conn)
            assert reply["id"] == 1
            assert reply["error"] is None
            assert reply["service_time"] >= 0.0
            conn.close()
        finally:
            server.stop()

    def test_double_start_rejected(self):
        server = AppServerProcess("masstree", {"n_records": 100})
        try:
            server.start()
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()

    def test_connect_before_start_rejected(self):
        server = AppServerProcess("masstree")
        with pytest.raises(RuntimeError):
            server.connect()


class TestRunHarnessMultiprocess:
    def test_full_measurement_run(self):
        result = run_harness_multiprocess(
            "masstree",
            HarnessConfig(qps=200, warmup_requests=5, measure_requests=50),
            app_kwargs={"n_records": 300},
        )
        assert result.stats.count == 50
        assert not result.server_errors
        # Chain reconstruction must produce valid components.
        for record in result.stats.records:
            assert record.sojourn_time > 0
            assert record.service_time >= 0
            assert record.queue_time >= 0
            assert record.sojourn_time >= record.service_time

    def test_process_boundary_adds_latency(self):
        from repro import create_app, run_harness

        app = create_app("masstree", n_records=300)
        app.setup()
        local = run_harness(
            app, HarnessConfig(qps=200, warmup_requests=5, measure_requests=50)
        )
        remote = run_harness_multiprocess(
            "masstree",
            HarnessConfig(qps=200, warmup_requests=5, measure_requests=50),
            app_kwargs={"n_records": 300},
        )
        # Crossing a process + TCP boundary cannot be cheaper than a
        # same-process function call.
        assert remote.sojourn.p50 > local.sojourn.p50

    def test_validates_connections(self):
        with pytest.raises(ValueError):
            run_harness_multiprocess(
                "masstree",
                HarnessConfig(qps=10, measure_requests=1),
                n_client_connections=0,
            )

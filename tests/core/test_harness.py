"""Tests for end-to-end harness runs (live mode, fast apps only)."""

import pytest

from repro.core import HarnessConfig, run_harness


class ConstantApp:
    """Minimal Application: fixed tiny busy-work per request."""

    def __init__(self, iterations=200):
        self.iterations = iterations

    def setup(self):
        pass

    def process(self, payload):
        acc = 0
        for i in range(self.iterations):
            acc += i * i
        return acc

    def make_client(self, seed=0):
        class _Client:
            def next_request(self):
                return None

        return _Client()


class TestRunHarness:
    def test_measures_requested_count(self):
        app = ConstantApp()
        config = HarnessConfig(qps=2000, warmup_requests=20, measure_requests=100)
        result = run_harness(app, config)
        assert result.stats.count == 100
        assert result.stats.dropped_warmup == 20

    def test_summaries_ordered(self):
        app = ConstantApp()
        result = run_harness(
            app, HarnessConfig(qps=1000, warmup_requests=10, measure_requests=150)
        )
        sojourn = result.sojourn
        assert sojourn.p50 <= sojourn.p95 <= sojourn.p99
        # sojourn >= service for every request (queueing is additive);
        # compare means, which preserves the per-request inequality.
        assert sojourn.mean >= result.service.mean

    def test_low_load_sojourn_close_to_service(self):
        app = ConstantApp()
        result = run_harness(
            app, HarnessConfig(qps=50, warmup_requests=5, measure_requests=60)
        )
        # At ~zero load, queueing is negligible.
        assert result.queue.p50 < 1e-3

    def test_overload_is_detected(self):
        app = ConstantApp(iterations=40_000)  # ~ms-scale service times
        result = run_harness(
            app,
            HarnessConfig(qps=100_000, warmup_requests=5, measure_requests=120),
        )
        assert result.saturated
        # Queueing dominates service under overload.
        assert result.queue.mean > result.service.mean

    def test_achieved_qps_tracks_offered_at_low_load(self):
        app = ConstantApp()
        result = run_harness(
            app, HarnessConfig(qps=500, warmup_requests=10, measure_requests=200)
        )
        assert result.achieved_qps == pytest.approx(500, rel=0.25)
        assert not result.saturated

    def test_errors_surface_in_result(self):
        class BrokenApp(ConstantApp):
            def process(self, payload):
                raise ValueError("nope")

        result = run_harness(
            BrokenApp(), HarnessConfig(qps=500, warmup_requests=0, measure_requests=30)
        )
        assert len(result.server_errors) == 30
        assert result.stats.count == 0

    def test_describe_is_readable(self):
        app = ConstantApp()
        result = run_harness(
            app, HarnessConfig(qps=500, warmup_requests=5, measure_requests=50)
        )
        text = result.describe()
        assert "sojourn" in text
        assert "qps" in text

"""Tests for the pluggable load-balancing policies."""

import random

import pytest

from repro.core.balancer import (
    BALANCERS,
    JoinShortestQueueBalancer,
    LoadBalancer,
    PowerOfTwoBalancer,
    RandomBalancer,
    RoundRobinBalancer,
    balancer_names,
    make_balancer,
)


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(BALANCERS) == {"round_robin", "random", "power_of_two", "jsq"}
        assert balancer_names() == sorted(BALANCERS)

    def test_make_balancer_builds_each_policy(self):
        for name, policy in BALANCERS.items():
            built = make_balancer(name, seed=3)
            assert isinstance(built, policy)
            assert built.name == name

    def test_make_balancer_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown balancer"):
            make_balancer("least-loaded")

    def test_base_pick_is_abstract(self):
        with pytest.raises(NotImplementedError):
            LoadBalancer().pick([0])


class TestRoundRobin:
    def test_deterministic_cycle(self):
        balancer = RoundRobinBalancer()
        depths = [0, 0, 0, 0]
        picks = [balancer.pick(depths) for _ in range(10)]
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_ignores_depths(self):
        balancer = RoundRobinBalancer()
        assert balancer.pick([99, 0, 0]) == 0
        assert balancer.pick([99, 0, 0]) == 1

    def test_avoid_skips_to_next(self):
        balancer = RoundRobinBalancer()
        assert balancer.pick([0, 0, 0], avoid=0) == 1
        # The skipped slot is consumed: the cycle continues from there.
        assert balancer.pick([0, 0, 0]) == 2

    def test_avoid_ignored_for_single_server(self):
        balancer = RoundRobinBalancer()
        assert balancer.pick([5], avoid=0) == 0

    def test_empty_depths_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinBalancer().pick([])


class TestRandom:
    def test_seeded_reproducibility(self):
        depths = [0] * 8
        one = RandomBalancer(seed=7)
        two = RandomBalancer(seed=7)
        assert [one.pick(depths) for _ in range(50)] == [
            two.pick(depths) for _ in range(50)
        ]

    def test_covers_all_servers(self):
        balancer = RandomBalancer(seed=1)
        picks = {balancer.pick([0, 0, 0, 0]) for _ in range(200)}
        assert picks == {0, 1, 2, 3}

    def test_avoid_never_picked(self):
        balancer = RandomBalancer(seed=2)
        assert all(
            balancer.pick([0, 0, 0], avoid=1) != 1 for _ in range(100)
        )


class TestPowerOfTwo:
    def test_never_picks_longer_of_sampled_pair(self):
        """P2C must always join the shorter of its two sampled queues."""
        balancer = PowerOfTwoBalancer(seed=0)

        class _ScriptedRng:
            """Stands in for the policy RNG: yields a scripted pair."""

            def __init__(self):
                self.pair = (0, 1)

            def sample(self, candidates, k):
                assert k == 2
                assert self.pair[0] in candidates and self.pair[1] in candidates
                return list(self.pair)

        scripted = _ScriptedRng()
        balancer._rng = scripted
        depths = [4, 1, 9, 0]
        for first in range(4):
            for second in range(4):
                if first == second:
                    continue
                scripted.pair = (first, second)
                choice = balancer.pick(depths)
                assert choice in (first, second)
                assert depths[choice] <= min(depths[first], depths[second])

    def test_tie_goes_to_first_sampled(self):
        balancer = PowerOfTwoBalancer(seed=0)

        class _ScriptedRng:
            def sample(self, candidates, k):
                return [2, 1]

        balancer._rng = _ScriptedRng()
        assert balancer.pick([0, 3, 3]) == 2

    def test_statistically_beats_long_queue(self):
        balancer = PowerOfTwoBalancer(seed=5)
        depths = [50, 0, 0, 0]
        picks = [balancer.pick(depths) for _ in range(300)]
        # Server 0 only wins when never sampled against an empty queue,
        # which cannot happen with two distinct samples here.
        assert picks.count(0) == 0

    def test_avoid_with_two_servers_forces_the_other(self):
        balancer = PowerOfTwoBalancer(seed=0)
        assert all(
            balancer.pick([0, 0], avoid=0) == 1 for _ in range(20)
        )


class TestJoinShortestQueue:
    def test_picks_global_minimum(self):
        balancer = JoinShortestQueueBalancer()
        assert balancer.pick([3, 1, 2]) == 1
        assert balancer.pick([9, 9, 0, 9]) == 2

    def test_forced_imbalance(self):
        """Under persistent imbalance JSQ always drains the short queue."""
        rng = random.Random(0)
        balancer = JoinShortestQueueBalancer()
        for _ in range(100):
            depths = [rng.randrange(2, 30) for _ in range(6)]
            short = rng.randrange(6)
            depths[short] = 0
            assert balancer.pick(depths) == short

    def test_tie_breaks_to_lowest_index(self):
        assert JoinShortestQueueBalancer().pick([2, 1, 1, 1]) == 1

    def test_avoid_excludes_minimum(self):
        assert JoinShortestQueueBalancer().pick([0, 1, 2], avoid=0) == 1

"""Tests for the worker-pool server."""

import threading
import time

import pytest

from repro.core import Request, RequestQueue, Server, WallClock


class EchoApp:
    def process(self, payload):
        return ("echo", payload)


class SlowApp:
    def __init__(self, delay=0.01):
        self.delay = delay
        self.concurrent = 0
        self.max_concurrent = 0
        self._lock = threading.Lock()

    def process(self, payload):
        with self._lock:
            self.concurrent += 1
            self.max_concurrent = max(self.max_concurrent, self.concurrent)
        time.sleep(self.delay)
        with self._lock:
            self.concurrent -= 1
        return payload


class FailingApp:
    def process(self, payload):
        raise RuntimeError("boom")


def submit(queue, payload):
    request = Request(payload=payload, generated_at=0.0)
    request.sent_at = 0.0
    queue.put(request)
    return request


class TestServer:
    def test_processes_and_stamps(self):
        clock = WallClock()
        queue = RequestQueue(clock)
        done = []
        server = Server(EchoApp(), queue, clock, respond=done.append)
        server.start()
        request = submit(queue, "hello")
        deadline = time.time() + 2.0
        while not done and time.time() < deadline:
            time.sleep(0.001)
        server.shutdown()
        assert done[0].response == ("echo", "hello")
        assert request.service_start_at is not None
        assert request.service_end_at >= request.service_start_at

    def test_multiple_workers_run_concurrently(self):
        clock = WallClock()
        queue = RequestQueue(clock)
        app = SlowApp(delay=0.05)
        done = []
        server = Server(app, queue, clock, n_threads=4, respond=done.append)
        server.start()
        for i in range(4):
            submit(queue, i)
        deadline = time.time() + 5.0
        while len(done) < 4 and time.time() < deadline:
            time.sleep(0.005)
        server.shutdown()
        assert len(done) == 4
        assert app.max_concurrent >= 2

    def test_errors_captured_not_fatal(self):
        clock = WallClock()
        queue = RequestQueue(clock)
        done = []
        server = Server(FailingApp(), queue, clock, respond=done.append)
        server.start()
        submit(queue, "x")
        submit(queue, "y")
        deadline = time.time() + 2.0
        while len(done) < 2 and time.time() < deadline:
            time.sleep(0.001)
        server.shutdown()
        assert len(done) == 2
        assert all("boom" in r.error for r in done)
        assert len(server.errors) == 2

    def test_shutdown_stops_workers(self):
        clock = WallClock()
        queue = RequestQueue(clock)
        server = Server(EchoApp(), queue, clock, n_threads=2)
        server.start()
        server.shutdown()  # must not hang

    def test_cannot_start_twice(self):
        clock = WallClock()
        server = Server(EchoApp(), RequestQueue(clock), clock)
        server.start()
        with pytest.raises(RuntimeError):
            server.start()
        server.shutdown()

    def test_requires_positive_threads(self):
        clock = WallClock()
        with pytest.raises(ValueError):
            Server(EchoApp(), RequestQueue(clock), clock, n_threads=0)

"""Tests for harness and system configuration objects."""

import pytest

from repro.core import (
    PAPER_SYSTEM,
    HarnessConfig,
    ResilienceConfig,
    SystemConfig,
)
from repro.faults import FaultPlan


class TestHarnessConfig:
    def test_defaults_valid(self):
        config = HarnessConfig()
        assert config.configuration == "integrated"
        assert config.total_requests == config.warmup_requests + config.measure_requests

    def test_rejects_unknown_configuration(self):
        with pytest.raises(ValueError):
            HarnessConfig(configuration="multiverse")

    def test_rejects_bad_qps(self):
        with pytest.raises(ValueError):
            HarnessConfig(qps=0)

    def test_rejects_bad_threads(self):
        with pytest.raises(ValueError):
            HarnessConfig(n_threads=0)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            HarnessConfig(measure_requests=0)
        with pytest.raises(ValueError):
            HarnessConfig(warmup_requests=-1)

    def test_with_seed_changes_only_seed(self):
        config = HarnessConfig(qps=123.0, n_threads=2)
        other = config.with_seed(99)
        assert other.seed == 99
        assert other.qps == 123.0
        assert other.n_threads == 2

    def test_with_qps_changes_only_qps(self):
        config = HarnessConfig(seed=5)
        other = config.with_qps(777.0)
        assert other.qps == 777.0
        assert other.seed == 5

    def test_frozen(self):
        with pytest.raises(Exception):
            HarnessConfig().qps = 1.0

    def test_with_seed_preserves_robustness_fields(self):
        # dataclasses.replace keeps every field, including the ones
        # added after with_seed was first written.
        plan = FaultPlan(drop_rate=0.1)
        policy = ResilienceConfig(deadline=0.5, max_retries=2)
        config = HarnessConfig(
            faults=plan, resilience=policy, queue_capacity=32
        )
        for other in (config.with_seed(9), config.with_qps(50.0)):
            assert other.faults == plan
            assert other.resilience == policy
            assert other.queue_capacity == 32

    def test_replace(self):
        config = HarnessConfig().replace(qps=9.0, n_threads=3)
        assert config.qps == 9.0
        assert config.n_threads == 3
        with pytest.raises(ValueError):
            HarnessConfig().replace(qps=-1.0)  # validation re-runs

    def test_rejects_bad_queue_capacity(self):
        with pytest.raises(ValueError):
            HarnessConfig(queue_capacity=0)


class TestSystemConfig:
    def test_paper_system_matches_table2(self):
        # Table II: 8 SandyBridge cores @ 2.4 GHz, 32KB 8-way L1s,
        # 256KB 8-way L2, 20MB 20-way L3, 32GB RAM.
        assert PAPER_SYSTEM.cores == 8
        assert PAPER_SYSTEM.frequency_ghz == 2.4
        assert PAPER_SYSTEM.l1d_kb == 32
        assert PAPER_SYSTEM.l1d_ways == 8
        assert PAPER_SYSTEM.l2_kb == 256
        assert PAPER_SYSTEM.l3_mb == 20
        assert PAPER_SYSTEM.l3_ways == 20
        assert PAPER_SYSTEM.memory_gb == 32

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ValueError):
            SystemConfig(cores=0)
        with pytest.raises(ValueError):
            SystemConfig(l3_ways=0)

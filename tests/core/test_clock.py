"""Tests for the clock abstraction."""

import time

import pytest

from repro.core import VirtualClock, WallClock


class TestWallClock:
    def test_monotone(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_sleep_until_reaches_deadline(self):
        clock = WallClock()
        deadline = clock.now() + 0.005
        clock.sleep_until(deadline)
        assert clock.now() >= deadline

    def test_sleep_until_precision(self):
        # The spin tail should keep overshoot small even on noisy
        # shared machines (generous bound for CI).
        clock = WallClock()
        overshoots = []
        for _ in range(5):
            deadline = clock.now() + 0.002
            clock.sleep_until(deadline)
            overshoots.append(clock.now() - deadline)
        assert min(overshoots) < 2e-3

    def test_sleep_past_deadline_returns_immediately(self):
        clock = WallClock()
        start = clock.now()
        clock.sleep_until(start - 1.0)
        assert clock.now() - start < 0.01

    def test_sleep_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            WallClock().sleep(-0.1)


class TestVirtualClock:
    def test_starts_at_given_time(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_cannot_go_backwards(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_sleep_until_advances_without_waiting(self):
        clock = VirtualClock()
        wall_start = time.perf_counter()
        clock.sleep_until(1000.0)
        assert time.perf_counter() - wall_start < 0.5
        assert clock.now() == 1000.0

    def test_sleep_until_past_is_noop(self):
        clock = VirtualClock(100.0)
        clock.sleep_until(50.0)
        assert clock.now() == 100.0

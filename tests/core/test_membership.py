"""Runtime replica membership: draining replicas never receive work.

Satellite of the control-plane PR: with autoscaling, the instance list
is append-only and removed replicas drain in place — so every balancer
policy must route around them, live (this module) and simulated
(``tests/sim/test_membership_sim.py``).
"""

import pytest

from repro.core import StatsCollector, WallClock
from repro.core.balancer import balancer_names, make_balancer, pick_active
from repro.core.transport import make_transport

from .test_harness import ConstantApp

ALL_POLICIES = balancer_names()


class TestPickActive:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_identity_when_all_active(self, policy):
        balancer = make_balancer(policy, seed=3)
        depths = [5, 0, 3, 1]
        picks = {
            pick_active(balancer, depths, [0, 1, 2, 3]) for _ in range(50)
        }
        assert picks <= {0, 1, 2, 3}

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_never_picks_inactive(self, policy):
        balancer = make_balancer(policy, seed=3)
        depths = [0, 0, 0, 0]  # the drained replica looks most tempting
        active = [0, 2]
        for _ in range(200):
            assert pick_active(balancer, depths, active) in active

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_single_active_short_circuits(self, policy):
        balancer = make_balancer(policy, seed=3)
        assert pick_active(balancer, [9, 9, 9], [1]) == 1

    def test_avoid_is_a_server_id(self):
        balancer = make_balancer("jsq")
        # Active {0, 2}; avoiding server 2 must leave only server 0,
        # even though 2's dense position is 1.
        for _ in range(20):
            assert pick_active(balancer, [5, 0, 0], [0, 2], avoid=2) == 0

    def test_avoiding_inactive_server_is_a_noop(self):
        balancer = make_balancer("jsq")
        assert pick_active(balancer, [5, 0, 0], [0, 2], avoid=1) == 2

    def test_empty_active_set_falls_back_to_full_set(self):
        # Over-filtering (avoid + draining + health ejection) must not
        # raise on the send path: the full set becomes the candidates.
        choice = pick_active(make_balancer("round_robin"), [1, 2], [])
        assert choice in (0, 1)

    def test_no_servers_at_all_raises(self):
        with pytest.raises(ValueError):
            pick_active(make_balancer("round_robin"), [], [])

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_empty_active_fallback_for_every_policy(self, policy):
        balancer = make_balancer(policy, seed=5)
        depths = [3, 1, 2]
        for _ in range(50):
            assert pick_active(balancer, depths, []) in (0, 1, 2)


class TestLiveTransportMembership:
    def _start(self, policy, n_servers=3):
        clock = WallClock()
        transport = make_transport("integrated", clock)
        transport.start(
            ConstantApp(iterations=20),
            n_threads=1,
            collector=StatsCollector(),
            n_servers=n_servers,
            balancer=make_balancer(policy, seed=1),
        )
        return clock, transport

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_no_sends_to_drained_replica(self, policy):
        clock, transport = self._start(policy)
        try:
            drained = transport.drain_server()
            assert drained == 2  # youngest active
            assert transport.active_server_ids() == [0, 1]
            routed = [
                transport.send(clock.now(), payload=None) for _ in range(60)
            ]
            transport.drain(timeout=30.0)
            assert drained not in routed
        finally:
            transport.stop()

    def test_added_replica_becomes_routable(self):
        clock, transport = self._start("round_robin", n_servers=2)
        try:
            new_id = transport.add_server()
            assert new_id == 2
            assert transport.active_server_ids() == [0, 1, 2]
            routed = [
                transport.send(clock.now(), payload=None) for _ in range(30)
            ]
            transport.drain(timeout=30.0)
            assert set(routed) == {0, 1, 2}
        finally:
            transport.stop()

    def test_drain_keeps_last_replica(self):
        clock, transport = self._start("round_robin", n_servers=2)
        try:
            assert transport.drain_server() == 1
            assert transport.drain_server() is None  # never below one
            assert transport.active_server_ids() == [0]
        finally:
            transport.stop()

    def test_drained_replica_still_answers_queued_work(self):
        clock, transport = self._start("round_robin", n_servers=2)
        try:
            completed = []
            transport.set_completion_hook(
                lambda request: (completed.append(request.server_id), True)[1]
            )
            # Land work on replica 1, then drain it before it finishes.
            for _ in range(10):
                transport.send(clock.now(), payload=None)
            transport.drain_server()
            transport.drain(timeout=30.0)
            assert len(completed) == 10
            assert 1 in completed  # its queued work completed anyway
        finally:
            transport.stop()

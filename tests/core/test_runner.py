"""Tests for the repeated-run campaign controller."""

from repro.core import CampaignResult, HarnessConfig, run_campaign
from repro.sim import SimConfig, paper_profile, simulate_load


def sim_run_fn(app_name):
    """Adapter: drive campaigns with the virtual-time simulator."""
    profile = paper_profile(app_name)

    def run(app, config: HarnessConfig):
        result = simulate_load(
            profile,
            SimConfig(
                qps=config.qps,
                n_threads=config.n_threads,
                configuration=config.configuration,
                warmup_requests=config.warmup_requests,
                measure_requests=config.measure_requests,
                seed=config.seed,
            ),
        )
        return result

    return run


class TestRunCampaign:
    def test_runs_until_convergence(self):
        config = HarnessConfig(
            qps=1000, warmup_requests=100, measure_requests=4000
        )
        result = run_campaign(
            None,
            config,
            relative_precision=0.05,
            min_runs=3,
            max_runs=15,
            run_fn=sim_run_fn("masstree"),
        )
        assert isinstance(result, CampaignResult)
        assert result.converged
        assert 3 <= result.n_runs <= 15

    def test_each_run_uses_fresh_seed(self):
        config = HarnessConfig(qps=1000, warmup_requests=50, measure_requests=500)
        result = run_campaign(
            None,
            config,
            relative_precision=0.2,
            min_runs=3,
            max_runs=5,
            run_fn=sim_run_fn("masstree"),
        )
        seeds = [r.config.seed for r in result.runs]
        assert len(set(seeds)) == len(seeds)

    def test_estimates_cover_requested_metrics(self):
        config = HarnessConfig(qps=500, warmup_requests=50, measure_requests=1000)
        result = run_campaign(
            None,
            config,
            metrics=("mean", "p95"),
            relative_precision=0.2,
            min_runs=3,
            max_runs=6,
            run_fn=sim_run_fn("xapian"),
        )
        assert set(result.estimates) == {"mean", "p95"}
        assert result.value("p95") > result.value("mean") > 0

    def test_describe(self):
        config = HarnessConfig(qps=500, warmup_requests=50, measure_requests=500)
        result = run_campaign(
            None,
            config,
            relative_precision=0.5,
            min_runs=3,
            max_runs=4,
            run_fn=sim_run_fn("silo"),
        )
        assert "runs" in result.describe()

    def test_hits_max_runs_without_convergence(self):
        # Impossible precision forces the max_runs stop.
        config = HarnessConfig(qps=2000, warmup_requests=10, measure_requests=200)
        result = run_campaign(
            None,
            config,
            relative_precision=1e-9,
            min_runs=3,
            max_runs=4,
            run_fn=sim_run_fn("silo"),
        )
        assert result.n_runs == 4
        assert not result.converged

"""Tests for open-loop traffic shaping."""

import random

import pytest

from repro.core import (
    ArrivalSchedule,
    BurstyArrivals,
    DeterministicArrivals,
    PoissonArrivals,
    TrafficShaper,
    VirtualClock,
)


class TestArrivalProcesses:
    def test_poisson_mean_rate(self):
        process = PoissonArrivals(qps=1000.0)
        rng = random.Random(0)
        gaps = [process.next_gap(rng) for _ in range(20000)]
        assert sum(gaps) / len(gaps) == pytest.approx(1e-3, rel=0.05)

    def test_poisson_gaps_are_variable(self):
        process = PoissonArrivals(qps=100.0)
        rng = random.Random(1)
        gaps = {round(process.next_gap(rng), 9) for _ in range(50)}
        assert len(gaps) > 40

    def test_deterministic_gaps_fixed(self):
        process = DeterministicArrivals(qps=200.0)
        rng = random.Random(0)
        assert process.next_gap(rng) == pytest.approx(0.005)
        assert process.rate == 200.0

    def test_rejects_non_positive_qps(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError):
            DeterministicArrivals(-5.0)


class TestArrivalSchedule:
    def test_generate_length(self):
        schedule = ArrivalSchedule.generate(PoissonArrivals(100), 500, seed=2)
        assert len(schedule) == 500

    def test_times_non_decreasing(self):
        schedule = ArrivalSchedule.generate(PoissonArrivals(100), 200, seed=3)
        times = list(schedule)
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_same_seed_same_schedule(self):
        a = ArrivalSchedule.generate(PoissonArrivals(100), 100, seed=7)
        b = ArrivalSchedule.generate(PoissonArrivals(100), 100, seed=7)
        assert list(a) == list(b)

    def test_different_seed_different_schedule(self):
        a = ArrivalSchedule.generate(PoissonArrivals(100), 100, seed=7)
        b = ArrivalSchedule.generate(PoissonArrivals(100), 100, seed=8)
        assert list(a) != list(b)

    def test_observed_qps_close_to_nominal(self):
        schedule = ArrivalSchedule.generate(PoissonArrivals(500), 5000, seed=0)
        assert schedule.observed_qps == pytest.approx(500, rel=0.1)

    def test_rejects_unsorted_times(self):
        with pytest.raises(ValueError):
            ArrivalSchedule([1.0, 0.5])

    def test_rejects_zero_requests(self):
        with pytest.raises(ValueError):
            ArrivalSchedule.generate(PoissonArrivals(10), 0)

    def test_observed_qps_none_for_single_arrival(self):
        assert ArrivalSchedule([1.0]).observed_qps is None

    def test_observed_qps_none_for_zero_span(self):
        # Several arrivals at one instant span no time: no rate exists.
        assert ArrivalSchedule([2.0, 2.0, 2.0]).observed_qps is None

    def test_observed_qps_defined_for_two_arrivals(self):
        assert ArrivalSchedule([0.0, 0.5]).observed_qps == pytest.approx(2.0)


class TestBurstyRegimeReset:
    def test_reused_process_reproduces_schedule(self):
        # Regression: the MMPP regime state (_in_burst/_regime_left)
        # mutates while drawing gaps; without a reset a second
        # generation from the same instance started mid-regime and
        # diverged from a fresh instance at the same seed.
        process = BurstyArrivals(qps=1000.0)
        first = ArrivalSchedule.generate(process, 500, seed=3)
        second = ArrivalSchedule.generate(process, 500, seed=3)
        assert list(first) == list(second)

    def test_reused_process_matches_fresh_instance(self):
        used = BurstyArrivals(qps=1000.0)
        ArrivalSchedule.generate(used, 137, seed=9)  # dirty the state
        fresh = BurstyArrivals(qps=1000.0)
        a = ArrivalSchedule.generate(used, 200, seed=4)
        b = ArrivalSchedule.generate(fresh, 200, seed=4)
        assert list(a) == list(b)

    def test_reset_restores_initial_state(self):
        import random

        process = BurstyArrivals(qps=1000.0)
        rng = random.Random(0)
        for _ in range(50):
            process.next_gap(rng)
        process.reset()
        assert process._in_burst is False
        assert process._regime_left == 0.0


class TestTrafficShaper:
    def test_sends_every_request_with_ideal_times(self):
        clock = VirtualClock()
        schedule = ArrivalSchedule([0.0, 0.01, 0.02, 0.05])
        shaper = TrafficShaper(clock, schedule)
        sent = []
        count = shaper.run(lambda t, p: sent.append((t, p)), ["a", "b", "c", "d"])
        assert count == 4
        assert [p for _, p in sent] == ["a", "b", "c", "d"]
        # Ideal instants preserve schedule gaps exactly in virtual time.
        gaps = [b[0] - a[0] for a, b in zip(sent, sent[1:])]
        assert gaps == pytest.approx([0.01, 0.01, 0.03])

    def test_payload_length_mismatch_rejected(self):
        clock = VirtualClock()
        shaper = TrafficShaper(clock, ArrivalSchedule([0.0, 1.0]))
        with pytest.raises(ValueError):
            shaper.run(lambda t, p: None, ["only-one"])

    def test_open_loop_no_waiting_on_responses(self):
        # The shaper must pace by schedule only: a send_fn that never
        # "responds" cannot stall the stream.
        clock = VirtualClock()
        schedule = ArrivalSchedule([0.0, 0.001, 0.002])
        shaper = TrafficShaper(clock, schedule)
        sent = []
        shaper.run(lambda t, p: sent.append(t))
        assert len(sent) == 3

    def test_empty_schedule(self):
        clock = VirtualClock()
        shaper = TrafficShaper(clock, ArrivalSchedule([]))
        assert shaper.run(lambda t, p: None) == 0

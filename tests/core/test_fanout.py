"""Tests for scatter-gather fan-out: config, gatherer, live harness."""

import pytest

from repro.apps.vsearch import VsearchApp
from repro.core import (
    ExecutionConfig,
    FanoutConfig,
    FanoutGatherer,
    HarnessConfig,
    ObservabilityConfig,
    ResilienceConfig,
    run_harness,
)
from repro.core.config import NO_FANOUT
from repro.core.request import Request
from repro.stats import quantile


class _StubCollector:
    def __init__(self):
        self.records = []

    def add(self, record):
        self.records.append(record)


def _finished_request(logical_id, server_id, t0, latency, response=None):
    req = Request(payload=None, generated_at=t0)
    req.logical_id = logical_id
    req.server_id = server_id
    req.sent_at = t0
    req.enqueued_at = t0
    req.service_start_at = t0
    req.service_end_at = t0 + latency
    req.response_received_at = t0 + latency
    req.response = response
    return req


class TestFanoutConfig:
    def test_defaults_off(self):
        assert NO_FANOUT.enabled is False
        assert HarnessConfig().fanout is NO_FANOUT

    def test_shards_validated(self):
        with pytest.raises(ValueError):
            FanoutConfig(shards=0)

    def test_requires_matching_servers(self):
        with pytest.raises(ValueError, match="n_servers == fanout.shards"):
            HarnessConfig(
                n_servers=2, fanout=FanoutConfig(enabled=True, shards=4)
            )

    def test_rejects_resilience(self):
        with pytest.raises(ValueError, match="resilience"):
            HarnessConfig(
                n_servers=2,
                fanout=FanoutConfig(enabled=True, shards=2),
                resilience=ResilienceConfig(max_retries=1),
            )

    def test_rejects_process_execution(self):
        with pytest.raises(ValueError, match="process"):
            HarnessConfig(
                n_servers=2,
                fanout=FanoutConfig(enabled=True, shards=2),
                execution=ExecutionConfig(mode="process"),
            )

    def test_disabled_composes_freely(self):
        config = HarnessConfig(
            n_servers=3, fanout=FanoutConfig(enabled=False, shards=2)
        )
        assert config.fanout.shards == 2


class TestFanoutGatherer:
    def test_open_gather_allocates_distinct_logical_ids(self):
        gatherer = FanoutGatherer(4, _StubCollector())
        _, pairs_a = gatherer.open_gather()
        _, pairs_b = gatherer.open_gather()
        ids = [lid for lid, _ in pairs_a + pairs_b]
        assert len(set(ids)) == 8
        assert [s for _, s in pairs_a] == [0, 1, 2, 3]
        assert gatherer.outstanding == 8

    def test_unknown_request_is_not_ours(self):
        gatherer = FanoutGatherer(2, _StubCollector())
        stray = _finished_request(logical_id=999, server_id=0,
                                  t0=0.0, latency=1e-3)
        assert gatherer.on_complete(stray) is False

    def test_completes_on_last_arrival_with_critical_shard(self):
        collector = _StubCollector()
        gatherer = FanoutGatherer(3, collector)
        _, pairs = gatherer.open_gather()
        latencies = {0: 1e-3, 1: 5e-3, 2: 2e-3}
        for lid, shard in pairs:
            req = _finished_request(lid, shard, 0.0, latencies[shard])
            assert gatherer.on_complete(req) is True
        assert len(collector.records) == 1
        # Shard 1 was slowest: its record is the logical record.
        assert collector.records[0].sojourn_time == pytest.approx(5e-3)
        assert gatherer.stats.completed == 1
        assert gatherer.stats.critical_counts == [0, 1, 0]
        assert gatherer.stats.leaf_samples() == pytest.approx(
            [1e-3, 5e-3, 2e-3]
        )
        assert gatherer.outstanding == 0

    def test_merge_combines_partial_responses(self):
        collector = _StubCollector()
        gatherer = FanoutGatherer(2, collector, merge=lambda rs: sum(rs))
        _, pairs = gatherer.open_gather()
        requests = []
        for i, (lid, shard) in enumerate(pairs):
            req = _finished_request(lid, shard, 0.0, 1e-3 * (shard + 1),
                                    response=10 + i)
            requests.append(req)
            gatherer.on_complete(req)
        # The critical (slowest: shard 1) request carries the merge.
        assert requests[1].response == 21
        assert len(collector.records) == 1

    def test_failed_subrequest_spoils_gather(self):
        collector = _StubCollector()
        gatherer = FanoutGatherer(2, collector)
        _, pairs = gatherer.open_gather()
        ok = _finished_request(pairs[0][0], 0, 0.0, 1e-3)
        bad = _finished_request(pairs[1][0], 1, 0.0, 2e-3)
        bad.error = "boom"
        gatherer.on_complete(ok)
        gatherer.on_complete(bad)
        assert gatherer.stats.failed == 1
        assert gatherer.stats.completed == 0
        assert collector.records == []

    def test_warmup_gathers_not_measured(self):
        collector = _StubCollector()
        gatherer = FanoutGatherer(1, collector, warmup=2)
        for i in range(5):
            _, pairs = gatherer.open_gather()
            gatherer.on_complete(
                _finished_request(pairs[0][0], 0, float(i), 1e-3)
            )
        # All five reach the collector (it applies its own warmup
        # discard) but only the post-warmup three are leaf samples.
        assert len(collector.records) == 5
        assert len(gatherer.stats.leaf_samples()) == 3

    def test_predicted_quantile_math(self):
        gatherer = FanoutGatherer(2, _StubCollector())
        gatherer.stats.shard_samples[0] = [float(i) for i in range(100)]
        gatherer.stats.shard_samples[1] = [float(i) for i in range(100)]
        expected = quantile(
            gatherer.stats.leaf_samples(), 0.99 ** 0.5
        )
        assert gatherer.stats.predicted_quantile(0.99) == expected


class TestLiveFanout:
    @pytest.fixture(scope="class")
    def result(self):
        app = VsearchApp(
            n_vectors=512, n_queries=32, n_lists=8, nprobe=2, seed=0
        ).sharded(2)
        app.setup()
        return run_harness(
            app,
            HarnessConfig(
                configuration="integrated",
                qps=400.0,
                n_threads=1,
                n_servers=2,
                warmup_requests=20,
                measure_requests=150,
                seed=0,
                fanout=FanoutConfig(enabled=True, shards=2),
                observability=ObservabilityConfig(tracing=True),
            ),
        )

    def test_every_gather_completes(self, result):
        assert result.fanout is not None
        assert result.fanout.completed == 170
        assert result.fanout.failed == 0
        assert result.stats.count == 150

    def test_scatter_amplification_in_outcomes(self, result):
        assert result.outcomes["offered"] == 170
        assert result.outcomes["attempts"] == 340
        assert result.retry_amplification == pytest.approx(2.0)

    def test_leaf_samples_per_shard(self, result):
        for shard in (0, 1):
            assert len(result.fanout.shard_samples[shard]) == 150

    def test_e2e_at_least_leaf_p99(self, result):
        leaves = result.fanout.leaf_samples()
        e2e_p99 = quantile(result.stats.samples(), 0.99)
        per_shard = [result.fanout.shard_p99(s) for s in (0, 1)]
        assert e2e_p99 >= max(per_shard) - 1e-9
        assert len(leaves) == 300

    def test_pinned_routing_covers_both_shards(self, result):
        assert len(result.routed_counts) == 2
        assert result.routed_counts[0] == result.routed_counts[1] == 170

    def test_trace_events_emitted(self, result):
        kinds = [e.kind for e in result.obs.events]
        assert kinds.count("fanout_send") == 340
        assert kinds.count("fanout_gather") == 170
        gathers = [e for e in result.obs.events if e.kind == "fanout_gather"]
        assert {e.server_id for e in gathers} <= {0, 1}

    def test_critical_counts_sum_to_measured(self, result):
        assert sum(result.fanout.critical_counts) == 150

"""Tests for the statistics collector."""

import pytest

from repro.core import StatsCollector
from repro.core.request import RequestRecord


def make_record(i: int, service: float = 0.001) -> RequestRecord:
    base = float(i)
    return RequestRecord(
        request_id=i,
        generated_at=base,
        sent_at=base,
        enqueued_at=base + 0.0001,
        service_start_at=base + 0.0002,
        service_end_at=base + 0.0002 + service,
        response_received_at=base + 0.0003 + service,
    )


class TestWarmup:
    def test_warmup_discarded(self):
        collector = StatsCollector(warmup_requests=10)
        for i in range(25):
            collector.add(make_record(i))
        stats = collector.snapshot()
        assert stats.count == 15
        assert stats.dropped_warmup == 10

    def test_no_warmup(self):
        collector = StatsCollector()
        collector.add(make_record(0))
        assert collector.snapshot().count == 1

    def test_validates_params(self):
        with pytest.raises(ValueError):
            StatsCollector(warmup_requests=-1)
        with pytest.raises(ValueError):
            StatsCollector(exact_limit=0)


class TestExactMode:
    def test_records_retained(self):
        collector = StatsCollector()
        for i in range(5):
            collector.add(make_record(i))
        stats = collector.snapshot()
        assert stats.exact
        assert len(stats.records) == 5

    def test_samples_by_metric(self):
        collector = StatsCollector()
        collector.add(make_record(0, service=0.002))
        stats = collector.snapshot()
        assert stats.samples("service") == [pytest.approx(0.002)]
        assert stats.samples("queue") == [pytest.approx(0.0001)]
        assert stats.samples("sojourn")[0] > 0.002

    def test_unknown_metric_rejected(self):
        collector = StatsCollector()
        collector.add(make_record(0))
        with pytest.raises(ValueError):
            collector.snapshot().samples("bogus")

    def test_summary(self):
        collector = StatsCollector()
        for i in range(100):
            collector.add(make_record(i))
        summary = collector.snapshot().summary("service")
        assert summary.count == 100
        assert summary.mean == pytest.approx(0.001)

    def test_histogram_derived_from_records(self):
        collector = StatsCollector()
        for i in range(50):
            collector.add(make_record(i))
        hist = collector.snapshot().histogram("service")
        assert hist.total_count == 50


class TestHdrFallback:
    def test_switches_past_exact_limit(self):
        collector = StatsCollector(exact_limit=100)
        for i in range(150):
            collector.add(make_record(i))
        stats = collector.snapshot()
        assert not stats.exact
        assert stats.count == 150

    def test_records_unavailable_in_hdr_mode(self):
        collector = StatsCollector(exact_limit=10)
        for i in range(20):
            collector.add(make_record(i))
        stats = collector.snapshot()
        with pytest.raises(ValueError):
            stats.records
        with pytest.raises(ValueError):
            stats.samples()

    def test_summary_consistent_across_modes(self):
        import random

        rng = random.Random(0)
        services = [rng.expovariate(1000.0) for _ in range(600)]
        exact = StatsCollector(exact_limit=10_000)
        hdr = StatsCollector(exact_limit=100)
        for i, s in enumerate(services):
            exact.add(make_record(i, service=s))
            hdr.add(make_record(i, service=s))
        se = exact.snapshot().summary("service")
        sh = hdr.snapshot().summary("service")
        assert sh.mean == pytest.approx(se.mean, rel=1e-9)
        assert sh.p95 == pytest.approx(se.p95, rel=0.05)

    def test_empty_summary_raises(self):
        with pytest.raises(ValueError):
            StatsCollector().snapshot().summary()


class TestSnapshotIsolation:
    def test_snapshot_is_immutable_view(self):
        collector = StatsCollector()
        collector.add(make_record(0))
        stats = collector.snapshot()
        collector.add(make_record(1))
        assert stats.count == 1
        assert collector.snapshot().count == 2


class TestSendLagAudit:
    """Coordinated-omission audit: the shaper's send-lag distribution."""

    def _lagged(self, i: int, lag: float) -> RequestRecord:
        base = float(i)
        return RequestRecord(
            request_id=i,
            generated_at=base,
            sent_at=base + lag,
            enqueued_at=base + lag + 0.0001,
            service_start_at=base + lag + 0.0002,
            service_end_at=base + lag + 0.0012,
            response_received_at=base + lag + 0.0013,
        )

    def test_audit_summarizes_send_lag(self):
        collector = StatsCollector()
        for i in range(100):
            collector.add(self._lagged(i, lag=0.001 if i < 99 else 0.050))
        stats = collector.snapshot()
        summary = stats.send_lag_summary()
        assert summary is not None
        assert summary.maximum == pytest.approx(0.050, rel=0.01)
        assert summary.mean == pytest.approx(0.0015, rel=0.1)
        audit = stats.send_audit()
        assert audit["send_lag_max_s"] == pytest.approx(0.050, rel=0.01)
        assert audit["send_lag_p99_s"] <= audit["send_lag_max_s"]

    def test_audit_excludes_warmup(self):
        collector = StatsCollector(warmup_requests=50)
        for i in range(50):
            collector.add(self._lagged(i, lag=1.0))  # warmup: huge lag
        for i in range(50, 100):
            collector.add(self._lagged(i, lag=0.001))
        summary = collector.snapshot().send_lag_summary()
        assert summary.maximum < 0.01

    def test_audit_empty_when_no_records(self):
        stats = StatsCollector().snapshot()
        assert stats.send_lag_summary() is None
        assert stats.send_audit() == {}

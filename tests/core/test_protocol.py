"""Tests for the length-prefixed wire protocol."""

import socket
import threading

import pytest

from repro.core.transport.protocol import (
    MAX_FRAME,
    ConnectionClosed,
    recv_message,
    send_message,
)


def socket_pair():
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    client = socket.create_connection(server.getsockname())
    peer, _ = server.accept()
    server.close()
    return client, peer


class TestProtocol:
    def test_roundtrip_simple(self):
        a, b = socket_pair()
        try:
            send_message(a, {"hello": "world", "n": 42})
            assert recv_message(b) == {"hello": "world", "n": 42}
        finally:
            a.close()
            b.close()

    def test_roundtrip_complex_payloads(self):
        import numpy as np

        a, b = socket_pair()
        try:
            payloads = [
                b"\x00\x01binary",
                ("tuple", [1, 2.5, None]),
                np.arange(10.0),
            ]
            for payload in payloads:
                send_message(a, payload)
            assert recv_message(b) == payloads[0]
            assert recv_message(b) == payloads[1]
            assert (recv_message(b) == payloads[2]).all()
        finally:
            a.close()
            b.close()

    def test_many_messages_preserve_order(self):
        a, b = socket_pair()
        try:
            for i in range(200):
                send_message(a, i)
            assert [recv_message(b) for _ in range(200)] == list(range(200))
        finally:
            a.close()
            b.close()

    def test_closed_connection_raises(self):
        a, b = socket_pair()
        a.close()
        with pytest.raises(ConnectionClosed):
            recv_message(b)
        b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket_pair()
        try:
            with pytest.raises(ValueError, match="too large"):
                send_message(a, b"x" * (MAX_FRAME + 1))
        finally:
            a.close()
            b.close()

    def test_partial_reads_assembled(self):
        # A large frame arrives in many TCP segments; recv must loop.
        a, b = socket_pair()
        try:
            big = list(range(100_000))
            done = threading.Event()
            received = []

            def reader():
                received.append(recv_message(b))
                done.set()

            thread = threading.Thread(target=reader)
            thread.start()
            send_message(a, big)
            assert done.wait(10.0)
            assert received[0] == big
        finally:
            a.close()
            b.close()

"""Tests for dynamic request batching: policy, buffers, queue, server."""

import threading
import time

import pytest

from repro.batching import NO_BATCHING, BatchPolicy, BatchingConfig
from repro.core import Request, RequestQueue, Server, VirtualClock, WallClock
from repro.core.collector import StatsCollector
from repro.core.queueing import FifoBuffer, PriorityBuffer
from repro.core.request import RequestRecord


def make_request(enqueued_at=None, priority=0):
    request = Request(payload=None, generated_at=0.0, priority=priority)
    request.sent_at = 0.0
    if enqueued_at is not None:
        request.enqueued_at = enqueued_at
    return request


class TestBatchingConfig:
    def test_disabled_by_default(self):
        assert not BatchingConfig().enabled
        assert not NO_BATCHING.enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchingConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchingConfig(max_batch_delay=-0.001)
        with pytest.raises(ValueError):
            BatchingConfig(sim_marginal_cost=1.5)
        with pytest.raises(ValueError):
            BatchingConfig(sim_marginal_cost=-0.1)

    def test_replace(self):
        config = BatchingConfig(enabled=True, max_batch_size=4)
        bigger = config.replace(max_batch_size=16)
        assert bigger.max_batch_size == 16
        assert bigger.enabled
        assert config.max_batch_size == 4  # original untouched


class TestBatchPolicy:
    def policy(self, size=4, delay=0.01):
        return BatchPolicy.from_config(
            BatchingConfig(
                enabled=True, max_batch_size=size, max_batch_delay=delay
            )
        )

    def test_empty_buffer_not_ready(self):
        assert self.policy().ready_at(FifoBuffer(), now=5.0) is None

    def test_full_batch_ready_immediately(self):
        buffer = FifoBuffer()
        for _ in range(4):
            buffer.push(make_request(enqueued_at=1.0))
        assert self.policy(size=4).ready_at(buffer, now=1.0) == 1.0

    def test_partial_batch_ready_at_head_deadline(self):
        buffer = FifoBuffer()
        buffer.push(make_request(enqueued_at=2.0))
        buffer.push(make_request(enqueued_at=2.5))
        # Release instant is the *oldest* member's enqueue plus delay.
        assert self.policy(delay=0.01).ready_at(buffer, now=2.5) == 2.01

    def test_form_caps_at_max_batch_size(self):
        buffer = FifoBuffer()
        for _ in range(7):
            buffer.push(make_request(enqueued_at=0.0))
        batch = self.policy(size=4).form(buffer)
        assert len(batch) == 4
        assert len(buffer) == 3


class TestFifoPopBatch:
    def test_preserves_fifo_order(self):
        buffer = FifoBuffer()
        requests = [make_request() for _ in range(5)]
        for request in requests:
            buffer.push(request)
        assert buffer.pop_batch(3) == requests[:3]
        assert buffer.pop_batch(10) == requests[3:]

    def test_empty_raises(self):
        with pytest.raises(IndexError):
            FifoBuffer().pop_batch(4)


class TestPriorityPopBatch:
    def test_never_spans_classes_strict(self):
        buffer = PriorityBuffer(mode="strict")
        low = [make_request(priority=0) for _ in range(3)]
        high = [make_request(priority=1) for _ in range(2)]
        for request in low + high:
            buffer.push(request)
        # Only two high-priority requests exist: the batch stops there
        # rather than backfilling from the low class.
        batch = buffer.pop_batch(4)
        assert batch == high
        assert buffer.pop_batch(4) == low
        assert len(buffer) == 0

    def test_weighted_arbitrates_batches_not_requests(self):
        buffer = PriorityBuffer(mode="weighted", weights={0: 1.0, 1: 1.0})
        for _ in range(8):
            buffer.push(make_request(priority=0))
            buffer.push(make_request(priority=1))
        batches = [buffer.pop_batch(4) for _ in range(4)]
        # Equal weights alternate classes batch-by-batch, and no batch
        # ever mixes classes.
        classes = [
            {request.priority for request in batch} for batch in batches
        ]
        assert all(len(c) == 1 for c in classes)
        assert sorted(next(iter(c)) for c in classes) == [0, 0, 1, 1]

    def test_empty_raises(self):
        with pytest.raises(IndexError):
            PriorityBuffer().pop_batch(4)


class TestGetBatch:
    def policy(self, size=4, delay=0.01):
        return BatchPolicy.from_config(
            BatchingConfig(
                enabled=True, max_batch_size=size, max_batch_delay=delay
            )
        )

    def test_full_batch_released_without_delay(self):
        queue = RequestQueue(VirtualClock())
        requests = [make_request() for _ in range(4)]
        for request in requests:
            queue.put(request)
        assert queue.get_batch(self.policy(size=4, delay=10.0)) == requests

    def test_partial_batch_waits_out_the_delay(self):
        queue = RequestQueue(WallClock())
        queue.put(make_request())
        queue.put(make_request())
        start = time.monotonic()
        batch = queue.get_batch(self.policy(size=8, delay=0.05))
        assert time.monotonic() - start >= 0.045
        assert len(batch) == 2

    def test_arrival_completing_batch_releases_early(self):
        queue = RequestQueue(WallClock())
        for _ in range(3):
            queue.put(make_request())
        result = []

        def consumer():
            result.append(queue.get_batch(self.policy(size=4, delay=5.0)))

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.05)
        assert not result  # still holding for the 4th member
        queue.put(make_request())
        thread.join(1.0)
        assert len(result) == 1 and len(result[0]) == 4

    def test_close_flushes_residue_immediately(self):
        queue = RequestQueue(WallClock())
        queue.put(make_request())
        queue.close()
        start = time.monotonic()
        batch = queue.get_batch(self.policy(size=8, delay=10.0))
        assert time.monotonic() - start < 1.0
        assert len(batch) == 1

    def test_timeout(self):
        queue = RequestQueue(WallClock())
        with pytest.raises(TimeoutError):
            queue.get_batch(self.policy(), timeout=0.05)


class BatchEchoApp:
    """Echoes payloads and records every batch it was handed."""

    def __init__(self):
        self.batches = []
        self._lock = threading.Lock()

    def process(self, payload):
        return ("single", payload)

    def handle_batch(self, payloads):
        with self._lock:
            self.batches.append(list(payloads))
        return [("batched", p) for p in payloads]


class ProcessOnlyApp:
    def process(self, payload):
        return ("single", payload)


class ShortBatchApp:
    def process(self, payload):
        return payload

    def handle_batch(self, payloads):
        return payloads[:-1]  # violates the length contract


class TestServerBatching:
    def run_server(self, app, n=8, size=4, delay=0.002):
        clock = WallClock()
        queue = RequestQueue(clock)
        done = []
        policy = BatchPolicy.from_config(
            BatchingConfig(
                enabled=True, max_batch_size=size, max_batch_delay=delay
            )
        )
        server = Server(app, queue, clock, respond=done.append, batching=policy)
        server.start()
        requests = []
        for i in range(n):
            request = Request(payload=i, generated_at=0.0)
            request.sent_at = 0.0
            queue.put(request)
            requests.append(request)
        deadline = time.time() + 5.0
        while len(done) < n and time.time() < deadline:
            time.sleep(0.001)
        server.shutdown()
        return server, requests, done

    def test_handle_batch_serves_all_members(self):
        app = BatchEchoApp()
        _, requests, done = self.run_server(app)
        assert len(done) == 8
        for request in requests:
            assert request.response == ("batched", request.payload)
            assert 1 <= request.batch_size <= 4
            assert request.service_start_at is not None
            assert request.service_end_at >= request.service_start_at
        assert all(len(batch) <= 4 for batch in app.batches)

    def test_falls_back_to_process_loop(self):
        _, requests, done = self.run_server(ProcessOnlyApp())
        assert len(done) == 8
        assert all(r.response == ("single", r.payload) for r in requests)

    def test_members_of_one_batch_share_service_window(self):
        app = BatchEchoApp()
        _, requests, _ = self.run_server(app, n=4, size=4, delay=1.0)
        starts = {r.service_start_at for r in requests}
        ends = {r.service_end_at for r in requests}
        if len(app.batches) == 1:  # all four formed one batch
            assert len(starts) == 1 and len(ends) == 1

    def test_length_contract_violation_is_captured(self):
        server, requests, done = self.run_server(ShortBatchApp(), n=4)
        assert len(done) == 4
        assert server.errors
        assert any("handle_batch returned" in e for e in server.errors)
        assert all(r.error is not None for r in requests)


class TestCollectorOccupancy:
    def make_record(self, i, batch_size=1):
        base = float(i)
        return RequestRecord(
            request_id=i,
            generated_at=base,
            sent_at=base,
            enqueued_at=base + 0.0001,
            service_start_at=base + 0.0002,
            service_end_at=base + 0.0002 + 0.004,
            response_received_at=base + 0.0003 + 0.004,
            batch_size=batch_size,
        )

    def test_occupancy_histogram_is_member_weighted(self):
        collector = StatsCollector()
        for i in range(4):
            collector.add(self.make_record(i, batch_size=4))
        collector.add(self.make_record(4, batch_size=1))
        stats = collector.snapshot()
        assert stats.batch_occupancy == {4: 4, 1: 1}
        # Member-weighted: the mean occupancy a *request* experienced,
        # so the four members of the 4-batch each count once.
        assert stats.mean_batch_size == pytest.approx((4 * 4 + 1) / 5)

    def test_unbatched_run_reports_mean_one(self):
        collector = StatsCollector()
        collector.add(self.make_record(0))
        stats = collector.snapshot()
        assert stats.batch_occupancy == {1: 1}
        assert stats.mean_batch_size == 1.0

    def test_empty_collector(self):
        stats = StatsCollector().snapshot()
        assert stats.batch_occupancy == {}
        assert stats.mean_batch_size == 1.0

    def test_service_share_divides_by_occupancy(self):
        record = self.make_record(0, batch_size=4)
        assert record.service_share == pytest.approx(record.service_time / 4)
        solo = self.make_record(1)
        assert solo.service_share == pytest.approx(solo.service_time)

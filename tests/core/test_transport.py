"""Tests for the three harness transports."""

import pytest

from repro.core import StatsCollector, WallClock
from repro.core.transport import (
    DelayLine,
    IntegratedTransport,
    LoopbackTransport,
    NetworkedTransport,
    make_transport,
)


class EchoApp:
    def process(self, payload):
        return payload


class TestFactory:
    def test_builds_each_configuration(self):
        clock = WallClock()
        assert isinstance(make_transport("integrated", clock), IntegratedTransport)
        assert isinstance(make_transport("loopback", clock), LoopbackTransport)
        assert isinstance(make_transport("networked", clock), NetworkedTransport)

    def test_unknown_configuration_rejected(self):
        with pytest.raises(ValueError, match="unknown harness configuration"):
            make_transport("carrier-pigeon", WallClock())


def _roundtrip(transport, n=20):
    collector = StatsCollector()
    transport.start(EchoApp(), n_threads=2, collector=collector)
    try:
        clock_now = transport._clock.now
        for i in range(n):
            transport.send(clock_now(), f"payload-{i}")
        transport.drain(timeout=30.0)
    finally:
        transport.stop()
    return collector.snapshot()


@pytest.mark.parametrize("config", ["integrated", "loopback", "networked"])
class TestRoundtrip:
    def test_all_requests_complete(self, config):
        transport = make_transport(config, WallClock())
        stats = _roundtrip(transport, n=25)
        assert stats.count == 25

    def test_timestamp_chain_valid(self, config):
        # finish() inside the transport validates ordering; records
        # existing at all proves chains were complete and monotone.
        transport = make_transport(config, WallClock())
        stats = _roundtrip(transport, n=10)
        for record in stats.records:
            assert record.sojourn_time >= record.service_time >= 0.0
            assert record.queue_time >= 0.0


class TestIntegrated:
    def test_no_network_time(self):
        transport = IntegratedTransport(WallClock())
        stats = _roundtrip(transport, n=10)
        # Direct hand-off: transport time is just function-call overhead.
        for record in stats.records:
            assert record.network_time < 5e-3

    def test_send_before_start_rejected(self):
        transport = IntegratedTransport(WallClock())
        with pytest.raises(RuntimeError):
            transport.send(0.0, "x")

    def test_stats_counters(self):
        transport = IntegratedTransport(WallClock())
        _roundtrip(transport, n=7)
        assert transport.stats.sent == 7
        assert transport.stats.completed == 7
        assert transport.stats.errored == 0


class TestNetworked:
    def test_wire_delay_adds_latency(self):
        clock = WallClock()
        fast = _roundtrip(IntegratedTransport(clock), n=15)
        slow = _roundtrip(
            NetworkedTransport(clock, one_way_delay=5e-3), n=15
        )
        assert slow.summary("sojourn").p50 > fast.summary("sojourn").p50 + 5e-3

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            DelayLine(WallClock(), -1.0, lambda item: None)


class TestDelayLine:
    def test_delivers_after_delay(self):
        import threading
        import time

        clock = WallClock()
        delivered = []
        done = threading.Event()

        def deliver(item):
            delivered.append((item, clock.now()))
            done.set()

        line = DelayLine(clock, 0.02, deliver)
        start = clock.now()
        line.push("x")
        assert done.wait(2.0)
        line.stop()
        item, at = delivered[0]
        assert item == "x"
        assert at - start >= 0.015

    def test_preserves_fifo_order(self):
        import threading

        clock = WallClock()
        delivered = []
        done = threading.Event()

        def deliver(item):
            delivered.append(item)
            if len(delivered) == 5:
                done.set()

        line = DelayLine(clock, 0.005, deliver)
        for i in range(5):
            line.push(i)
        assert done.wait(2.0)
        line.stop()
        assert delivered == [0, 1, 2, 3, 4]

    def test_stop_is_idempotent_and_clean(self):
        line = DelayLine(WallClock(), 0.001, lambda item: None)
        line.stop()

    def test_stop_with_items_in_flight(self):
        # The link goes down while messages are in flight: stop() must
        # return promptly (thread exits within its join timeout) and
        # nothing may be delivered afterwards.
        import time

        delivered = []
        line = DelayLine(WallClock(), 0.2, delivered.append)
        for i in range(3):
            line.push(i)
        line.stop()
        assert not line.alive
        assert delivered == []
        time.sleep(0.3)  # past every original release instant
        assert delivered == []

    def test_push_after_stop_is_dropped(self):
        delivered = []
        line = DelayLine(WallClock(), 0.0, delivered.append)
        line.stop()
        line.push("ghost")
        assert delivered == []

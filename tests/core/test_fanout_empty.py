"""Empty-shard FanoutStats regressions: report gaps, don't crash.

A short run can leave a shard with only warmup (or only shed/failed)
gathers. Before the guards, ``shard_p99``/``shard_summary``/
``predicted_quantile`` raised ``ValueError`` out of ``quantile()`` on
the empty sample list, crashing stats rendering for the whole run.
"""

import math

from repro.analysis.fanout import fanout_quantile, fanout_summary
from repro.core.fanout import FanoutStats


def _stats_with_gap():
    stats = FanoutStats(3)
    stats.shard_samples[0] = [0.010, 0.012, 0.015]
    stats.shard_samples[1] = []            # the gap
    stats.shard_samples[2] = [0.011, 0.013]
    stats.completed = 3
    return stats


class TestEmptyShardGuards:
    def test_shard_p99_nan_on_empty(self):
        stats = _stats_with_gap()
        assert math.isnan(stats.shard_p99(1))
        # populated shards still report normally
        assert stats.shard_p99(0) > 0.0

    def test_shard_summary_none_on_empty(self):
        stats = _stats_with_gap()
        assert stats.shard_summary(1) is None
        summary = stats.shard_summary(0)
        assert summary is not None and summary.p50 > 0.0

    def test_predicted_quantile_with_partial_samples(self):
        # One empty shard does not spoil the pooled prediction.
        stats = _stats_with_gap()
        predicted = stats.predicted_quantile(0.99)
        assert predicted > 0.0 and not math.isnan(predicted)

    def test_predicted_quantile_nan_when_all_empty(self):
        stats = FanoutStats(2)
        assert math.isnan(stats.predicted_quantile(0.99))

    def test_fully_empty_render_components(self):
        stats = FanoutStats(2)
        assert stats.leaf_samples() == []
        assert all(math.isnan(stats.shard_p99(s)) for s in range(2))
        assert all(stats.shard_summary(s) is None for s in range(2))


class TestSortedValuesFastPath:
    """`sorted_values=True` must be a pure fast path: identical output."""

    def test_fanout_quantile_identical(self):
        import random

        rng = random.Random(3)
        samples = [rng.expovariate(1000.0) for _ in range(500)]
        pre_sorted = sorted(samples)
        for k in (2, 4, 8):
            for q in (0.5, 0.9, 0.99):
                assert fanout_quantile(samples, k, q) == fanout_quantile(
                    pre_sorted, k, q, sorted_values=True
                )

    def test_fanout_summary_matches_per_cell_naive(self):
        import random

        rng = random.Random(4)
        samples = [rng.expovariate(1000.0) for _ in range(300)]
        table = fanout_summary(samples, fanouts=(1, 2, 4), qs=(0.5, 0.99))
        for k in (1, 2, 4):
            for q in (0.5, 0.99):
                assert table[k][q] == fanout_quantile(samples, k, q)

    def test_empty_leaves_still_raise(self):
        import pytest

        with pytest.raises(ValueError):
            fanout_quantile([], 4, 0.99)
        with pytest.raises(ValueError):
            fanout_summary([], fanouts=(2,))

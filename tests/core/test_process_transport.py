"""Process-sharded execution: ProcessTransport, lifecycle, parity."""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.core import (
    ExecutionConfig,
    HarnessConfig,
    ReplicaRuntime,
    StatsCollector,
    WallClock,
)
from repro.core.harness import run_harness
from repro.core.transport import ProcessTransport, make_transport

from .test_harness import ConstantApp


class SlowApp:
    """Sleeps long enough that requests are reliably in flight."""

    def __init__(self, delay=0.2):
        self.delay = delay

    def setup(self):
        pass

    def process(self, payload):
        time.sleep(self.delay)
        return payload

    def make_client(self, seed=0):
        class Client:
            def next_request(self):
                return None

        return Client()


def _wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestExecutionConfig:
    def test_default_is_threaded(self):
        assert HarnessConfig().execution.mode == "threaded"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="execution mode"):
            ExecutionConfig(mode="gpu")

    def test_rejects_unknown_start_method(self):
        with pytest.raises(ValueError, match="start_method"):
            ExecutionConfig(start_method="forkserver")

    @pytest.mark.parametrize("field, value", [
        ("ipc_flush_interval", 0.0),
        ("drain_timeout", -1.0),
    ])
    def test_rejects_nonpositive_timings(self, field, value):
        with pytest.raises(ValueError):
            ExecutionConfig(**{field: value})

    def test_process_requires_integrated(self):
        with pytest.raises(ValueError, match="integrated"):
            HarnessConfig(
                configuration="loopback",
                execution=ExecutionConfig(mode="process"),
            )

    def test_process_rejects_admission_control(self):
        from repro.control import AdmissionConfig, ControlPlaneConfig

        with pytest.raises(ValueError, match="autoscaler only"):
            HarnessConfig(
                execution=ExecutionConfig(mode="process"),
                control=ControlPlaneConfig(
                    enabled=True, admission=AdmissionConfig()
                ),
            )

    def test_process_rejects_scenarios(self):
        from repro.faults import FaultPhase, FaultPlan, Scenario

        scenario = Scenario(
            name="burst",
            phases=(
                FaultPhase(
                    start=0.0, duration=1.0,
                    plan=FaultPlan(error_rate=0.5),
                ),
            ),
        )
        with pytest.raises(ValueError, match="static fault plans"):
            HarnessConfig(
                execution=ExecutionConfig(mode="process"),
                scenario=scenario,
            )

    def test_make_transport_dispatches_on_execution(self):
        clock = WallClock()
        transport = make_transport(
            "integrated", clock, execution=ExecutionConfig(mode="process")
        )
        assert isinstance(transport, ProcessTransport)
        with pytest.raises(ValueError, match="integrated"):
            make_transport(
                "loopback", clock, execution=ExecutionConfig(mode="process")
            )


class TestReplicaRuntime:
    def test_assembles_and_serves(self):
        from repro.core import Request

        clock = WallClock()
        done = []
        runtime = ReplicaRuntime(
            ConstantApp(), clock, n_threads=2, respond=done.append
        )
        runtime.start()
        try:
            assert runtime.n_threads == 2
            assert runtime.alive_workers == 2
            request = Request(payload=None, generated_at=clock.now())
            request.sent_at = clock.now()
            assert runtime.submit(request)
            assert _wait_until(lambda: len(done) == 1)
            assert done[0].error is None
            assert done[0].service_end_at >= done[0].service_start_at
            assert runtime.queue_depth == 0
            assert runtime.errors == []
        finally:
            runtime.shutdown()

    def test_shed_when_queue_full(self):
        from repro.core import Request

        clock = WallClock()
        runtime = ReplicaRuntime(
            ConstantApp(), clock, n_threads=1, respond=lambda r: None,
            queue_capacity=1,
        )
        # Not started: nothing drains the queue, so the second offer
        # must shed.
        try:
            first = Request(payload=None, generated_at=clock.now())
            second = Request(payload=None, generated_at=clock.now())
            assert runtime.submit(first)
            assert not runtime.submit(second)
            assert second.shed
        finally:
            runtime.shutdown(discard_pending=True)


def _process_config(**overrides):
    defaults = dict(
        qps=800,
        warmup_requests=20,
        measure_requests=200,
        n_threads=2,
        seed=3,
        execution=ExecutionConfig(mode="process"),
    )
    defaults.update(overrides)
    return HarnessConfig(**defaults)


class TestProcessHarness:
    def test_counts_and_chain(self):
        result = run_harness(ConstantApp(), _process_config())
        assert result.stats.count == 200
        assert result.server_errors == ()
        # Reconstructed chains are validated by finish(); spot-check
        # the derived metrics are sane.
        summary = result.sojourn
        assert summary.minimum > 0
        assert all(
            r.service_time >= 0 and r.queue_time >= 0
            for r in result.stats.records
        )

    def test_attribution_matches_threaded(self):
        """Same workload, both modes: counts identical, latencies sane."""
        app = ConstantApp()
        threaded = run_harness(
            app, _process_config(execution=ExecutionConfig(mode="threaded"),
                                 n_servers=2, balancer="round_robin")
        )
        process = run_harness(
            app, _process_config(n_servers=2, balancer="round_robin")
        )
        assert process.stats.count == threaded.stats.count
        per_t = threaded.stats.per_server()
        per_p = process.stats.per_server()
        assert sorted(per_p) == sorted(per_t)
        # Round-robin over identical replicas: identical split.
        for server_id in per_t:
            assert per_p[server_id].count == per_t[server_id].count
        # Same app, same load: latencies within a loose band (these are
        # wall-clock runs; the bound only catches gross misattribution
        # like seconds-scale clock-domain mixups).
        assert process.sojourn.percentiles[50.0] < 1.0
        assert threaded.sojourn.percentiles[50.0] < 1.0

    def test_send_lag_audit_reported(self):
        result = run_harness(ConstantApp(), _process_config())
        audit = result.stats.send_audit()
        assert set(audit) == {
            "send_lag_mean_s", "send_lag_p99_s", "send_lag_max_s"
        }
        assert audit["send_lag_max_s"] >= audit["send_lag_mean_s"] >= 0
        assert "send-lag audit" in result.describe()

    def test_child_fault_counts_merged(self):
        from repro.faults import FaultPlan

        result = run_harness(
            ConstantApp(),
            _process_config(faults=FaultPlan(error_rate=0.2)),
        )
        assert result.fault_counts.get("app_errors", 0) > 0
        # The child's worker tracebacks cross the pipe too (the server
        # deduplicates identical tracebacks, so presence not count).
        assert any("injected application error" in e
                   for e in result.server_errors)

    def test_trace_events_forwarded_with_parent_ids(self):
        from repro.batching import BatchingConfig
        from repro.core.config import ObservabilityConfig

        result = run_harness(
            ConstantApp(),
            _process_config(
                observability=ObservabilityConfig(tracing=True),
                batching=BatchingConfig(
                    enabled=True, max_batch_size=4, max_batch_delay=0.002
                ),
            ),
        )
        assert result.stats.count == 200
        kinds = {e.kind for e in result.obs.events}
        assert "batch_form" in kinds  # emitted in the child, relayed
        # Relayed events must carry the parent's request ids so they
        # join up with the parent-side span records.
        parent_ids = {
            e.request_id for e in result.obs.events if e.kind == "enqueued"
        }
        child_ids = {
            e.request_id for e in result.obs.events if e.kind == "batch_form"
        }
        assert child_ids and child_ids <= parent_ids


class TestProcessLifecycle:
    def _start_transport(self, n_servers=1, execution=None, app=None):
        clock = WallClock()
        transport = ProcessTransport(
            clock, execution=execution or ExecutionConfig(mode="process")
        )
        collector = StatsCollector()
        transport.start(
            app or ConstantApp(), 1, collector, n_servers=n_servers
        )
        return clock, transport, collector

    def test_child_crash_surfaces_as_fault_not_hang(self):
        clock, transport, collector = self._start_transport(app=SlowApp())
        failures = []

        def hook(request):
            if request.error is not None:
                failures.append(request.error)
            return False  # keep default accounting

        transport.set_completion_hook(hook)
        try:
            handle = transport.instances[0].server
            for _ in range(4):
                transport.send(clock.now(), None)
            os.kill(handle.process.pid, signal.SIGKILL)
            # Every in-flight request must resolve (as an error), and
            # drain must come back promptly instead of hanging.
            transport.drain(timeout=10.0)
            assert handle.dead
            assert transport.stats.errored >= 3  # ≤1 was mid-service
            assert any("crashed" in e for e in failures)
            # Post-crash sends error out immediately, no hang.
            transport.send(clock.now(), None)
            transport.drain(timeout=10.0)
            assert any("not running" in e for e in failures)
            assert transport.child_fault_counts().get("child_crashes") == 1
        finally:
            transport.stop()

    def test_scale_down_joins_process_within_drain_deadline(self):
        execution = ExecutionConfig(mode="process", drain_timeout=5.0)
        clock, transport, collector = self._start_transport(
            n_servers=2, execution=execution
        )
        try:
            victim = transport.instances[1].server
            assert victim.process.is_alive()
            for _ in range(8):
                transport.send(clock.now(), None)
            transport.drain(timeout=10.0)
            drained_id = transport.drain_server()
            assert drained_id == 1
            assert _wait_until(
                lambda: not victim.process.is_alive(),
                timeout=execution.drain_timeout,
            ), "drained replica process still alive past the deadline"
            # The surviving replica keeps serving.
            transport.send(clock.now(), None)
            transport.drain(timeout=10.0)
            assert transport.stats.completed >= 9
        finally:
            transport.stop()

    def test_scale_up_forks_new_replica(self):
        clock, transport, collector = self._start_transport(n_servers=1)
        try:
            new_id = transport.add_server()
            assert new_id == 1
            newcomer = transport.instances[1].server
            assert newcomer.process.is_alive()
            for _ in range(8):
                transport.send(clock.now(), None)
            transport.drain(timeout=10.0)
            assert transport.instances[1].routed > 0
        finally:
            transport.stop()

    def test_stop_reaps_all_children(self):
        clock, transport, collector = self._start_transport(n_servers=2)
        pids = [
            instance.server.process.pid for instance in transport.instances
        ]
        transport.send(clock.now(), None)
        transport.drain(timeout=10.0)
        transport.stop()
        for pid in pids:
            assert _wait_until(
                lambda: not _pid_alive(pid), timeout=5.0
            ), f"replica pid {pid} survived transport.stop()"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    # Still a zombie? Reaped children of *this* process show up here
    # until waited; multiprocessing joins them, so existence means live.
    return True


_SIGTERM_SCRIPT = textwrap.dedent("""
    import sys, threading, time
    from repro.core import ExecutionConfig, StatsCollector, WallClock
    from repro.core.transport import ProcessTransport

    class App:
        def setup(self): pass
        def process(self, payload): return payload
        def make_client(self, seed=0):
            class C:
                def next_request(self): return None
            return C()

    clock = WallClock()
    transport = ProcessTransport(clock, ExecutionConfig(mode="process"))
    transport.start(App(), 1, StatsCollector(), n_servers=2)
    pids = [i.server.process.pid for i in transport.instances]
    print("PIDS " + " ".join(str(p) for p in pids), flush=True)
    time.sleep(60)
""")


class TestSigtermReaping:
    def test_sigterm_reaps_children(self, tmp_path):
        script = tmp_path / "harness_under_test.py"
        script.write_text(_SIGTERM_SCRIPT)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            assert line.startswith("PIDS "), line
            pids = [int(tok) for tok in line.split()[1:]]
            assert pids and all(_pid_alive(pid) for pid in pids)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) != 0
            assert _wait_until(
                lambda: not any(_pid_alive(pid) for pid in pids),
                timeout=10.0,
            ), "replica processes survived SIGTERM of the harness"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=5)

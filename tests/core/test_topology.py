"""End-to-end tests of the multi-client / multi-server topology."""

import pytest

from repro.core import HarnessConfig, ResilienceConfig, run_harness
from repro.faults import FaultPlan

from .test_harness import ConstantApp


def _run(**overrides):
    params = dict(qps=2000, warmup_requests=10, measure_requests=120)
    params.update(overrides)
    return run_harness(ConstantApp(), HarnessConfig(**params))


class TestMultiServer:
    @pytest.mark.parametrize(
        "configuration", ["integrated", "loopback", "networked"]
    )
    def test_four_servers_in_every_configuration(self, configuration):
        result = _run(configuration=configuration, n_servers=4)
        assert result.stats.count == 120
        assert len(result.routed_counts) == 4
        assert sum(result.routed_counts) == 130  # warmup + measured
        assert result.alive_workers == (1, 1, 1, 1)

    def test_round_robin_splits_exactly(self):
        result = _run(n_servers=4, balancer="round_robin", measure_requests=110)
        assert result.routed_counts == (30, 30, 30, 30)

    @pytest.mark.parametrize("balancer", ["random", "power_of_two", "jsq"])
    def test_depth_aware_policies_complete_all_requests(self, balancer):
        result = _run(n_servers=4, balancer=balancer)
        assert result.stats.count == 120
        assert sum(result.routed_counts) == 130

    def test_per_server_stats_partition_aggregate(self):
        result = _run(n_servers=4)
        counts = [
            result.stats.server_count(server_id)
            for server_id in result.stats.server_ids
        ]
        assert sum(counts) == result.stats.count
        # The union of per-server sojourn samples is the aggregate.
        merged = sorted(
            sample
            for server_id in result.stats.server_ids
            for sample in result.stats.server_samples(server_id, "sojourn")
        )
        assert merged == sorted(result.stats.samples("sojourn"))
        # And each per-server summary reflects only its own samples.
        for server_id, summary in result.per_server().items():
            assert summary.count == result.stats.server_count(server_id)

    def test_single_server_keeps_original_shape(self):
        result = _run(n_servers=1)
        assert result.routed_counts == (130,)
        assert result.alive_workers == (1,)
        assert result.stats.server_ids == [0]
        assert result.stats.count == 120

    def test_multiple_clients_preserve_request_count(self):
        result = _run(n_clients=3, n_servers=2)
        assert result.stats.count == 120
        assert sum(result.routed_counts) == 130

    def test_describe_mentions_topology(self):
        result = _run(n_servers=2)
        text = result.describe()
        assert "topology: 2 servers" in text
        assert "balancer=round_robin" in text


class TestTopologyFaults:
    def test_crash_fault_decrements_alive_workers(self):
        plan = FaultPlan(worker_crash_rate=1.0)
        result = _run(
            n_servers=2,
            n_threads=2,
            measure_requests=40,
            resilience=ResilienceConfig(deadline=2.0),
            faults=plan,
        )
        # Every completion crashes its worker until none remain.
        assert sum(result.alive_workers) < 4

    def test_faults_scoped_to_one_server(self):
        plan = FaultPlan(worker_crash_rate=1.0, server_ids=(1,))
        result = _run(
            n_servers=2,
            n_threads=2,
            measure_requests=40,
            resilience=ResilienceConfig(deadline=2.0),
            faults=plan,
        )
        # Server 0 is outside the plan's scope: untouched capacity.
        assert result.alive_workers[0] == 2
        assert result.alive_workers[1] < 2

    def test_hedging_works_across_replicas(self):
        result = _run(
            n_servers=2,
            measure_requests=60,
            resilience=ResilienceConfig(
                deadline=2.0, hedge_after=0.001, max_hedges=1
            ),
        )
        assert result.outcomes.get("succeeded", 0) == 70


class TestConfigValidation:
    def test_rejects_bad_topology(self):
        with pytest.raises(ValueError):
            HarnessConfig(n_servers=0)
        with pytest.raises(ValueError):
            HarnessConfig(n_clients=0)
        with pytest.raises(ValueError, match="balancer"):
            HarnessConfig(balancer="sticky")

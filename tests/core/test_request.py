"""Tests for request records and the timestamp chain."""

import pytest

from repro.core import Request


def make_request(**overrides):
    request = Request(payload="x", generated_at=1.0)
    request.sent_at = overrides.get("sent_at", 1.001)
    request.enqueued_at = overrides.get("enqueued_at", 1.002)
    request.service_start_at = overrides.get("service_start_at", 1.010)
    request.service_end_at = overrides.get("service_end_at", 1.030)
    request.response_received_at = overrides.get("response_received_at", 1.031)
    return request


class TestTimestampChain:
    def test_finish_produces_record(self):
        record = make_request().finish()
        assert record.service_time == pytest.approx(0.020)
        assert record.queue_time == pytest.approx(0.008)
        assert record.sojourn_time == pytest.approx(0.031)

    def test_send_delay(self):
        record = make_request().finish()
        assert record.send_delay == pytest.approx(0.001)

    def test_network_time(self):
        record = make_request().finish()
        assert record.network_time == pytest.approx(0.001 + 0.001)

    def test_missing_stamp_rejected(self):
        request = make_request()
        request.enqueued_at = None
        with pytest.raises(ValueError, match="enqueued_at"):
            request.finish()

    def test_out_of_order_stamps_rejected(self):
        request = make_request(service_start_at=0.5)
        with pytest.raises(ValueError):
            request.finish()

    def test_request_ids_unique(self):
        a = Request(payload=None, generated_at=0.0)
        b = Request(payload=None, generated_at=0.0)
        assert a.request_id != b.request_id

    def test_sojourn_measured_from_generated_not_sent(self):
        # Coordinated-omission avoidance: a late send must not shrink
        # the measured sojourn time.
        late_send = make_request(sent_at=1.0019)
        on_time = make_request(sent_at=1.001)
        assert (
            late_send.finish().sojourn_time == on_time.finish().sojourn_time
        )


class TestPartialFinish:
    def test_partial_tolerates_missing_stamps(self):
        # A shed attempt never reaches a worker: the chain stops at
        # enqueued. finish(partial=True) must still produce a record.
        request = Request(payload="x", generated_at=1.0)
        request.sent_at = 1.001
        request.enqueued_at = 1.002
        request.response_received_at = 1.003
        request.shed = True
        record = request.finish(partial=True)
        assert record.service_start_at is None
        assert record.shed is True
        assert not record.complete

    def test_partial_still_rejects_out_of_order_stamps(self):
        request = make_request(service_start_at=0.5)
        with pytest.raises(ValueError):
            request.finish(partial=True)

    def test_strict_finish_unchanged(self):
        request = make_request()
        request.enqueued_at = None
        with pytest.raises(ValueError, match="enqueued_at"):
            request.finish()

    def test_complete_chain_is_complete(self):
        record = make_request().finish()
        assert record.complete

    def test_identity_fields_carried(self):
        request = Request(
            payload="x", generated_at=1.0, logical_id=7, attempt=2
        )
        request.sent_at = 1.001
        record = request.finish(partial=True)
        assert record.logical_id == 7
        assert record.attempt == 2

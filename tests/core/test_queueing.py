"""Tests for the instrumented request queue."""

import threading
import time

import pytest

from repro.core import QueueClosed, Request, RequestQueue, VirtualClock, WallClock
from repro.core.queueing import (
    FifoBuffer,
    PriorityBuffer,
    PriorityRequestQueue,
    QueueSnapshot,
)


def make_request(priority=0):
    request = Request(payload=None, generated_at=0.0, priority=priority)
    request.sent_at = 0.0
    return request


class TestRequestQueue:
    def test_fifo_order(self):
        queue = RequestQueue(VirtualClock())
        first, second = make_request(), make_request()
        queue.put(first)
        queue.put(second)
        assert queue.get() is first
        assert queue.get() is second

    def test_put_stamps_enqueued_at(self):
        clock = VirtualClock(42.0)
        queue = RequestQueue(clock)
        request = make_request()
        queue.put(request)
        assert request.enqueued_at == 42.0

    def test_len_and_peak_depth(self):
        queue = RequestQueue(VirtualClock())
        for _ in range(3):
            queue.put(make_request())
        assert len(queue) == 3
        assert queue.peak_depth == 3
        queue.get()
        assert len(queue) == 2
        assert queue.peak_depth == 3  # peak is sticky

    def test_total_enqueued(self):
        queue = RequestQueue(VirtualClock())
        for _ in range(5):
            queue.put(make_request())
        assert queue.total_enqueued == 5

    def test_get_blocks_until_put(self):
        queue = RequestQueue(WallClock())
        result = []

        def consumer():
            result.append(queue.get())

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.05)
        assert not result
        queue.put(make_request())
        thread.join(1.0)
        assert len(result) == 1

    def test_get_timeout(self):
        queue = RequestQueue(WallClock())
        with pytest.raises(TimeoutError):
            queue.get(timeout=0.05)

    def test_closed_queue_rejects_put(self):
        queue = RequestQueue(VirtualClock())
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put(make_request())

    def test_close_drains_then_raises(self):
        queue = RequestQueue(VirtualClock())
        queue.put(make_request())
        queue.close()
        queue.get()  # existing item still retrievable
        with pytest.raises(QueueClosed):
            queue.get()

    def test_close_wakes_blocked_getters(self):
        queue = RequestQueue(WallClock())
        errors = []

        def consumer():
            try:
                queue.get()
            except QueueClosed:
                errors.append("closed")

        threads = [threading.Thread(target=consumer) for _ in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        queue.close()
        for t in threads:
            t.join(1.0)
        assert errors == ["closed"] * 3

    def test_sojourn_seconds_tracks_head_age(self):
        clock = VirtualClock(10.0)
        queue = RequestQueue(clock)
        assert queue.sojourn_seconds() == 0.0  # empty
        queue.put(make_request())
        clock.advance(0.25)
        queue.put(make_request())  # younger request: head age unchanged
        assert queue.sojourn_seconds() == pytest.approx(0.25)
        queue.get()
        assert queue.sojourn_seconds() == pytest.approx(0.0)

    def test_snapshot_is_consistent_view(self):
        clock = VirtualClock(5.0)
        queue = RequestQueue(clock, capacity=2)
        queue.put(make_request())
        clock.advance(0.1)
        queue.put(make_request())
        assert queue.put(make_request()) is False  # shed at capacity
        snap = queue.snapshot()
        assert isinstance(snap, QueueSnapshot)
        assert snap.depth == 2
        assert snap.peak_depth == 2
        assert snap.total_enqueued == 2
        assert snap.total_shed == 1
        assert snap.head_sojourn == pytest.approx(0.1)

    def test_shed_request_is_marked(self):
        queue = RequestQueue(VirtualClock(), capacity=1)
        queue.put(make_request())
        rejected = make_request()
        assert queue.put(rejected) is False
        assert rejected.shed
        assert queue.total_shed == 1

    def test_snapshot_of_sim_server_has_same_shape(self):
        """Live queue and simulated server expose the same snapshot."""
        import random

        from repro.core.collector import StatsCollector
        from repro.sim.engine import Engine
        from repro.sim.network_model import network_model_for
        from repro.sim.server_model import SimulatedServer
        from repro.sim.service_models import ServiceTimeModel
        from repro.stats import Deterministic

        engine = Engine()
        server = SimulatedServer(
            engine,
            ServiceTimeModel(Deterministic(0.05)),
            network_model_for("integrated"),
            n_threads=1,
            collector=StatsCollector(),
            rng=random.Random(0),
        )
        for i in range(3):
            server.submit(generated_at=i * 0.001)
        engine.run(until=0.01)  # one in service, two queued
        snap = server.queue_snapshot()
        assert isinstance(snap, QueueSnapshot)
        assert snap.depth == 2
        assert snap.total_enqueued == 3
        assert snap.head_sojourn > 0.0

    def test_custom_buffer_is_used(self):
        buffer = FifoBuffer()
        queue = RequestQueue(VirtualClock(), buffer=buffer)
        queue.put(make_request())
        assert len(buffer) == 1

    def test_mixed_class_head_is_oldest_across_all_classes(self):
        # CoDel's signal is the oldest *waiting* request, regardless of
        # which class the discipline would actually serve next: a
        # starved low-priority head must still drive the sojourn.
        buffer = PriorityBuffer(mode="strict")
        old_low = make_request(priority=0)
        old_low.enqueued_at = 1.0
        young_high = make_request(priority=5)
        young_high.enqueued_at = 2.0
        buffer.push(old_low)
        buffer.push(young_high)
        assert buffer.head_enqueued_at() == 1.0
        # Strict service order disagrees with head age on purpose.
        assert buffer.pop() is young_high
        assert buffer.head_enqueued_at() == 1.0
        buffer.pop()
        assert buffer.head_enqueued_at() is None

    def test_priority_queue_snapshot_mixed_class_head_sojourn(self):
        clock = VirtualClock(10.0)
        queue = PriorityRequestQueue(clock, mode="strict")
        queue.put(make_request(priority=0))  # enqueued at 10.0
        clock.advance(0.3)
        queue.put(make_request(priority=9))  # enqueued at 10.3
        clock.advance(0.1)
        snap = queue.snapshot()
        assert snap.depth == 2
        # The low-priority request is older: 10.4 - 10.0 = 0.4, not the
        # 0.1 the high class' head would report.
        assert snap.head_sojourn == pytest.approx(0.4)
        assert queue.get().priority == 9  # service still strict
        assert queue.snapshot().head_sojourn == pytest.approx(0.4)

    def test_sim_server_snapshot_mixed_class_head_sojourn(self):
        """The simulated server's snapshot obeys the same oldest-across-
        classes rule when wired to a PriorityBuffer."""
        import random

        from repro.core.collector import StatsCollector
        from repro.sim.engine import Engine
        from repro.sim.network_model import network_model_for
        from repro.sim.server_model import SimulatedServer
        from repro.sim.service_models import ServiceTimeModel
        from repro.stats import Deterministic

        engine = Engine()
        server = SimulatedServer(
            engine,
            ServiceTimeModel(Deterministic(0.05)),
            network_model_for("integrated"),
            n_threads=1,
            collector=StatsCollector(),
            rng=random.Random(0),
            buffer=PriorityBuffer(mode="strict"),
        )

        def submit(at, priority):
            request = Request(payload=None, generated_at=at, priority=priority)
            request.sent_at = at
            server.submit_request(request)

        submit(0.000, 0)  # taken by the single worker immediately
        submit(0.002, 0)  # waits: class 0, the oldest
        submit(0.004, 7)  # waits: class 7, younger but higher priority
        engine.run(until=0.01)
        snap = server.queue_snapshot()
        assert snap.depth == 2
        assert snap.head_sojourn == pytest.approx(0.01 - 0.002)

    def test_concurrent_producers_consumers(self):
        queue = RequestQueue(WallClock())
        n_per_producer = 200
        consumed = []
        consumed_lock = threading.Lock()

        def producer():
            for _ in range(n_per_producer):
                queue.put(make_request())

        def consumer():
            while True:
                try:
                    item = queue.get(timeout=1.0)
                except (QueueClosed, TimeoutError):
                    return
                with consumed_lock:
                    consumed.append(item)

        producers = [threading.Thread(target=producer) for _ in range(4)]
        consumers = [threading.Thread(target=consumer) for _ in range(4)]
        for t in producers + consumers:
            t.start()
        for t in producers:
            t.join(5.0)
        queue.close()
        for t in consumers:
            t.join(5.0)
        assert len(consumed) == 4 * n_per_producer
        assert len({id(r) for r in consumed}) == len(consumed)

"""Tests for percentile-over-time and steady-state detection."""

import pytest

from repro.core import StatsCollector
from repro.core.request import RequestRecord


def make_record(i, t, service):
    return RequestRecord(
        request_id=i,
        generated_at=t,
        sent_at=t,
        enqueued_at=t,
        service_start_at=t,
        service_end_at=t + service,
        response_received_at=t + service,
    )


def fill(collector, services, dt=0.01):
    for i, s in enumerate(services):
        collector.add(make_record(i, i * dt, s))


class TestTimeline:
    def test_windows_cover_all_records(self):
        collector = StatsCollector()
        fill(collector, [1e-3] * 100)
        points = collector.snapshot().timeline(n_windows=10)
        assert sum(p.count for p in points) == 100
        times = [p.time for p in points]
        assert times == sorted(times)

    def test_flat_workload_flat_timeline(self):
        collector = StatsCollector()
        fill(collector, [1e-3] * 200)
        points = collector.snapshot().timeline(n_windows=8)
        values = [p.value for p in points]
        assert max(values) == pytest.approx(min(values))

    def test_drift_visible(self):
        collector = StatsCollector()
        # Service times double over the run.
        fill(collector, [1e-3 * (1 + i / 100) for i in range(100)])
        points = collector.snapshot().timeline(metric="service", n_windows=5)
        assert points[-1].value > 1.5 * points[0].value

    def test_validation(self):
        collector = StatsCollector()
        fill(collector, [1e-3] * 30)
        stats = collector.snapshot()
        with pytest.raises(ValueError):
            stats.timeline(n_windows=1)
        with pytest.raises(ValueError):
            stats.timeline(pct=0.0)
        with pytest.raises(ValueError):
            stats.timeline(n_windows=100)  # more windows than records

    def test_hdr_mode_rejected(self):
        collector = StatsCollector(exact_limit=10)
        fill(collector, [1e-3] * 50)
        with pytest.raises(ValueError):
            collector.snapshot().timeline()


class TestTimelinePoint:
    def test_points_carry_metric_and_pct(self):
        collector = StatsCollector()
        fill(collector, [1e-3] * 100)
        points = collector.snapshot().timeline(
            metric="service", n_windows=5, pct=99.0
        )
        assert all(p.metric == "service" for p in points)
        assert all(p.pct == 99.0 for p in points)

    def test_as_dict_is_jsonl_ready(self):
        collector = StatsCollector()
        fill(collector, [1e-3] * 40)
        point = collector.snapshot().timeline(n_windows=4)[0]
        d = point.as_dict()
        assert d["metric"] == "sojourn"
        assert d["pct"] == 95.0
        assert set(d) == {"time", "count", "value", "metric", "pct"}

    def test_as_dict_omits_absent_pct(self):
        from repro.core.collector import TimelinePoint

        point = TimelinePoint(1.0, 3, 0.5, metric="tb_queue_depth")
        assert "pct" not in point.as_dict()
        assert point.as_dict()["metric"] == "tb_queue_depth"


class TestSteadiness:
    def test_steady_run_detected(self):
        collector = StatsCollector()
        fill(collector, [1e-3, 1.1e-3] * 50)
        assert collector.snapshot().is_steady(metric="service")

    def test_drifting_run_flagged(self):
        collector = StatsCollector()
        fill(collector, [1e-3] * 50 + [5e-3] * 50)
        assert not collector.snapshot().is_steady(metric="service")

    def test_too_few_records(self):
        collector = StatsCollector()
        fill(collector, [1e-3] * 5)
        with pytest.raises(ValueError):
            collector.snapshot().is_steady()

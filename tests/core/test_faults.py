"""Tests for the fault-injection subsystem and client-side resilience."""

import threading
import time

import pytest

from repro.core import (
    Request,
    RequestQueue,
    ResilienceConfig,
    StatsCollector,
    WallClock,
)
from repro.core.resilience import (
    ResilientClient,
    backoff_delay,
    effective_attempt_timeout,
)
from repro.faults import FaultInjector, FaultPlan, StallWindow, TransportAction


class TestStallWindow:
    def test_end(self):
        assert StallWindow(1.0, 0.5).end == 1.5

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            StallWindow(-0.1, 1.0)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            StallWindow(0.0, 0.0)


class TestFaultPlan:
    def test_noop_by_default(self):
        assert FaultPlan().is_noop

    def test_any_knob_disables_noop(self):
        assert not FaultPlan(drop_rate=0.1).is_noop
        assert not FaultPlan(queue_stalls=[(0.0, 1.0)]).is_noop
        assert not FaultPlan(error_rate=0.01).is_noop

    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(error_rate=-0.1)

    def test_rate_without_duration_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(delay_rate=0.5)  # delay defaults to 0
        with pytest.raises(ValueError):
            FaultPlan(worker_pause_rate=0.5)

    def test_stalls_normalized_and_sorted(self):
        plan = FaultPlan(queue_stalls=[(2.0, 0.5), StallWindow(1.0, 0.1)])
        assert plan.queue_stalls == (
            StallWindow(1.0, 0.1),
            StallWindow(2.0, 0.5),
        )

    def test_replace(self):
        plan = FaultPlan(drop_rate=0.1).replace(error_rate=0.2)
        assert plan.drop_rate == 0.1
        assert plan.error_rate == 0.2

    def test_merged_combines_independent_probabilities(self):
        merged = FaultPlan(drop_rate=0.5).merged(FaultPlan(drop_rate=0.5))
        assert merged.drop_rate == pytest.approx(0.75)

    def test_merged_takes_max_durations_and_concats_stalls(self):
        a = FaultPlan(
            delay_rate=0.1, delay=0.01, queue_stalls=[(0.0, 1.0)]
        )
        b = FaultPlan(
            delay_rate=0.1, delay=0.05, queue_stalls=[(5.0, 1.0)]
        )
        merged = a.merged(b)
        assert merged.delay == 0.05
        assert len(merged.queue_stalls) == 2

    def test_frozen_and_hashable(self):
        plan = FaultPlan(drop_rate=0.1)
        with pytest.raises(Exception):
            plan.drop_rate = 0.5
        assert hash(plan) == hash(FaultPlan(drop_rate=0.1))


class TestFaultInjector:
    def _decision_trace(self, plan, seed, n=200):
        injector = FaultInjector(plan, seed=seed)
        return [
            (
                injector.transport_action(),
                injector.worker_pause(),
                injector.worker_crash(),
                injector.app_error(),
            )
            for _ in range(n)
        ]

    def test_same_seed_same_decisions(self):
        plan = FaultPlan(
            drop_rate=0.2, delay_rate=0.1, delay=0.005, duplicate_rate=0.1,
            worker_pause_rate=0.1, worker_pause=0.01,
            worker_crash_rate=0.01, error_rate=0.2,
        )
        assert self._decision_trace(plan, 7) == self._decision_trace(plan, 7)

    def test_different_seeds_differ(self):
        plan = FaultPlan(drop_rate=0.5)
        assert self._decision_trace(plan, 1) != self._decision_trace(plan, 2)

    def test_layers_draw_independent_streams(self):
        # Enabling transport faults must not change app-layer decisions.
        base = FaultPlan(error_rate=0.3)
        noisy = base.replace(drop_rate=0.5, duplicate_rate=0.5)
        a = FaultInjector(base, seed=3)
        b = FaultInjector(noisy, seed=3)
        errors_a = [a.app_error() for _ in range(300)]
        for _ in range(300):
            b.transport_action()  # consumes only the transport stream
        errors_b = [b.app_error() for _ in range(300)]
        assert errors_a == errors_b

    def test_noop_layers_consume_nothing(self):
        injector = FaultInjector(FaultPlan(), seed=0)
        assert injector.transport_action() == TransportAction()
        assert injector.worker_pause() == 0.0
        assert injector.worker_crash() is False
        assert injector.app_error() is False
        assert all(v == 0 for v in injector.counts().values())

    def test_counts_track_fired_faults(self):
        injector = FaultInjector(FaultPlan(drop_rate=1.0), seed=0)
        for _ in range(5):
            assert injector.transport_action().drop
        assert injector.counts()["drops"] == 5

    def test_queue_stall_anchored_to_run_start(self):
        plan = FaultPlan(queue_stalls=[(1.0, 2.0)])
        injector = FaultInjector(plan)
        injector.start_run(100.0)
        assert injector.queue_stall_remaining(100.0) == 0.0
        assert injector.queue_stall_remaining(101.0) == pytest.approx(2.0)
        assert injector.queue_stall_remaining(102.5) == pytest.approx(0.5)
        assert injector.queue_stall_remaining(103.0) == 0.0


def make_request():
    request = Request(payload=None, generated_at=0.0)
    request.sent_at = 0.0
    return request


class TestBoundedQueue:
    def test_put_sheds_past_capacity(self):
        queue = RequestQueue(WallClock(), capacity=2)
        assert queue.put(make_request())
        assert queue.put(make_request())
        rejected = make_request()
        assert not queue.put(rejected)
        assert rejected.shed
        assert queue.total_shed == 1
        assert len(queue) == 2

    def test_unbounded_by_default(self):
        queue = RequestQueue(WallClock())
        assert queue.capacity is None
        for _ in range(100):
            assert queue.put(make_request())

    def test_stall_window_delays_get(self):
        injector = FaultInjector(FaultPlan(queue_stalls=[(0.0, 0.2)]))
        clock = WallClock()
        queue = RequestQueue(clock, injector=injector)
        injector.start_run(clock.now())
        queue.put(make_request())
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            queue.get(timeout=0.05)  # stalled: item present but frozen
        assert queue.get(timeout=2.0) is not None
        assert time.monotonic() - start >= 0.15


class TestResilienceConfig:
    def test_disabled_by_default(self):
        assert not ResilienceConfig().enabled

    def test_any_mechanism_enables(self):
        assert ResilienceConfig(deadline=1.0).enabled
        assert ResilienceConfig(max_retries=1).enabled
        assert ResilienceConfig(hedge_after=0.01).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(deadline=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(hedge_after=-1.0)

    def test_backoff_is_full_jitter(self):
        import random

        config = ResilienceConfig(backoff_base=0.01, backoff_cap=0.03)
        rng = random.Random(0)
        for k in range(6):
            cap = min(0.03, 0.01 * 2**k)
            for _ in range(50):
                assert 0.0 <= backoff_delay(config, rng, k) <= cap

    def test_attempt_timeout_defaults_from_deadline(self):
        config = ResilienceConfig(deadline=0.3, max_retries=2)
        assert effective_attempt_timeout(config) == pytest.approx(0.1)
        explicit = ResilienceConfig(deadline=0.3, attempt_timeout=0.05)
        assert effective_attempt_timeout(explicit) == 0.05
        assert effective_attempt_timeout(ResilienceConfig()) is None

    def test_attempt_timeout_clamped_to_deadline_budget(self):
        # Regression: backoff sleeps consume the deadline budget, so a
        # fixed per-attempt window granted late in the request's life
        # used to run past the deadline (a timer waiting on an outcome
        # the deadline had already decided).
        config = ResilienceConfig(deadline=0.3, max_retries=2)
        # Fresh request: the full window fits the budget.
        assert effective_attempt_timeout(
            config, now=0.0, deadline=0.3
        ) == pytest.approx(0.1)
        # Late attempt: only the remaining budget is granted.
        assert effective_attempt_timeout(
            config, now=0.25, deadline=0.3
        ) == pytest.approx(0.05)
        # At/past the deadline: zero, never negative.
        assert effective_attempt_timeout(config, now=0.3, deadline=0.3) == 0.0
        assert effective_attempt_timeout(config, now=0.4, deadline=0.3) == 0.0

    def test_clamp_requires_both_now_and_deadline(self):
        config = ResilienceConfig(deadline=0.3, max_retries=2)
        # now without a deadline (deadline-less request): unclamped.
        assert effective_attempt_timeout(config, now=5.0) == pytest.approx(0.1)
        explicit = ResilienceConfig(attempt_timeout=0.05)
        assert effective_attempt_timeout(
            explicit, now=1.0, deadline=1.02
        ) == pytest.approx(0.02)


class FakeTransport:
    """Hand-cranked transport: the test decides when attempts complete."""

    def __init__(self, clock):
        self._clock = clock
        self.hook = None
        self.sent = []
        self._cv = threading.Condition()

    def set_completion_hook(self, hook):
        self.hook = hook

    def send(self, generated_at, payload, *, logical_id=None, attempt=0,
             deadline=None, avoid_server=None):
        request = Request(
            payload=payload, generated_at=generated_at,
            logical_id=logical_id, attempt=attempt, deadline=deadline,
        )
        request.sent_at = self._clock.now()
        request.server_id = 0
        with self._cv:
            self.sent.append(request)
            self._cv.notify_all()
        return 0

    def wait_for_sends(self, n, timeout=5.0):
        with self._cv:
            assert self._cv.wait_for(lambda: len(self.sent) >= n, timeout), (
                f"expected {n} sends, saw {len(self.sent)}"
            )

    def complete(self, request, error=None, shed=False):
        now = self._clock.now()
        request.enqueued_at = request.sent_at
        request.service_start_at = now
        request.service_end_at = now
        request.response_received_at = now
        request.error = error
        request.shed = shed
        self.hook(request)


def _client(config, seed=1):
    clock = WallClock()
    transport = FakeTransport(clock)
    collector = StatsCollector()
    client = ResilientClient(transport, clock, config, collector, seed=seed)
    return clock, transport, collector, client


class TestResilientClient:
    def test_success_resolves_and_records(self):
        clock, transport, collector, client = _client(
            ResilienceConfig(deadline=5.0)
        )
        try:
            client.send(clock.now(), "p")
            transport.complete(transport.sent[0])
            client.drain(timeout=5.0)
        finally:
            client.close()
        counts = collector.outcome_counts()
        assert counts["offered"] == counts["succeeded"] == 1
        assert counts["attempts"] == 1
        assert collector.snapshot().count == 1

    def test_error_response_retried_then_succeeds(self):
        clock, transport, collector, client = _client(
            ResilienceConfig(
                deadline=5.0, max_retries=2,
                backoff_base=0.001, backoff_cap=0.002,
            )
        )
        try:
            client.send(clock.now(), "p")
            transport.complete(transport.sent[0], error="boom")
            transport.wait_for_sends(2)  # the retry
            transport.complete(transport.sent[1])
            client.drain(timeout=5.0)
        finally:
            client.close()
        counts = collector.outcome_counts()
        assert counts["succeeded"] == 1
        assert counts["retries"] == 1
        assert counts["errors"] == 1
        assert counts["attempts"] == 2

    def test_shed_response_retried(self):
        clock, transport, collector, client = _client(
            ResilienceConfig(
                deadline=5.0, max_retries=1,
                backoff_base=0.001, backoff_cap=0.002,
            )
        )
        try:
            client.send(clock.now(), "p")
            transport.complete(transport.sent[0], shed=True)
            transport.wait_for_sends(2)
            transport.complete(transport.sent[1])
            client.drain(timeout=5.0)
        finally:
            client.close()
        counts = collector.outcome_counts()
        assert counts["shed"] == 1
        assert counts["succeeded"] == 1

    def test_unanswered_request_times_out_at_deadline(self):
        clock, transport, collector, client = _client(
            ResilienceConfig(deadline=0.05)
        )
        try:
            client.send(clock.now(), "p")
            client.drain(timeout=5.0)  # deadline resolves it; no response
        finally:
            client.close()
        counts = collector.outcome_counts()
        assert counts["timed_out"] == 1
        assert counts["succeeded"] == 0
        assert collector.snapshot().count == 0

    def test_hedge_fires_and_first_response_wins(self):
        clock, transport, collector, client = _client(
            ResilienceConfig(deadline=5.0, hedge_after=0.01, max_hedges=1)
        )
        try:
            client.send(clock.now(), "p")
            transport.wait_for_sends(2)  # original + hedge
            transport.complete(transport.sent[1])  # hedge answers first
            client.drain(timeout=5.0)
            transport.complete(transport.sent[0])  # straggler
        finally:
            client.close()
        counts = collector.outcome_counts()
        assert counts["hedges"] == 1
        assert counts["succeeded"] == 1
        assert counts["late"] == 1
        assert collector.snapshot().count == 1  # straggler not double-counted

    def test_late_response_excluded_from_success_stats(self):
        clock, transport, collector, client = _client(
            ResilienceConfig(deadline=0.02)
        )
        try:
            client.send(clock.now(), "p")
            client.drain(timeout=5.0)  # deadline fires first
            transport.complete(transport.sent[0])  # response after deadline
        finally:
            client.close()
        counts = collector.outcome_counts()
        assert counts["timed_out"] == 1
        assert counts["late"] == 1
        assert collector.snapshot().count == 0
        # ... but the attempt still feeds per-attempt statistics.
        assert collector.snapshot().attempt_count == 1

    def test_attempt_timeout_triggers_retry_without_response(self):
        clock, transport, collector, client = _client(
            ResilienceConfig(
                deadline=5.0, attempt_timeout=0.02, max_retries=1,
                backoff_base=0.001, backoff_cap=0.002,
            )
        )
        try:
            client.send(clock.now(), "p")
            transport.wait_for_sends(2)  # timeout-driven retry
            transport.complete(transport.sent[1])
            client.drain(timeout=5.0)
        finally:
            client.close()
        counts = collector.outcome_counts()
        assert counts["retries"] == 1
        assert counts["succeeded"] == 1


class TestTimerHygiene:
    def test_resolution_cancels_outstanding_timers(self):
        # A resolved call's deadline/hedge/timeout entries must be
        # disarmed — at high QPS dead-call wakeups would dominate the
        # timer wheel. pending() counts live heap entries.
        clock, transport, collector, client = _client(
            ResilienceConfig(
                deadline=30.0, attempt_timeout=20.0,
                hedge_after=25.0, max_hedges=1,
            )
        )
        try:
            for i in range(5):
                client.send(clock.now(), f"p{i}")
            assert client._scheduler.pending() >= 5
            for request in list(transport.sent):
                transport.complete(request)
            client.drain(timeout=5.0)
            assert client._scheduler.pending() == 0
        finally:
            client.close()

    def test_unresolved_calls_keep_their_timers(self):
        clock, transport, collector, client = _client(
            ResilienceConfig(deadline=30.0)
        )
        try:
            client.send(clock.now(), "p")
            assert client._scheduler.pending() == 1  # the deadline
        finally:
            client.close()


class TestRetryBudgetGate:
    def _health(self, reserve):
        from repro.health import HealthConfig, HealthManager

        return HealthManager(HealthConfig(
            enabled=True, ejection=False, breaker=False,
            retry_budget_ratio=0.1, retry_budget_reserve=reserve,
        ))

    def test_exhausted_budget_fails_instead_of_retrying(self):
        clock = WallClock()
        transport = FakeTransport(clock)
        collector = StatsCollector()
        health = self._health(reserve=0.0)
        client = ResilientClient(
            transport, clock,
            ResilienceConfig(max_retries=3, backoff_base=0.001,
                             backoff_cap=0.002),
            collector, seed=1, health=health,
        )
        try:
            client.send(clock.now(), "p")
            transport.complete(transport.sent[0], error="boom")
            client.drain(timeout=5.0)  # no deadline: denial resolves it
        finally:
            client.close()
        counts = collector.outcome_counts()
        assert counts["failed"] == 1
        assert counts.get("retries", 0) == 0
        assert health.counts()["retries_denied"] == 1

    def test_funded_budget_allows_the_retry(self):
        clock = WallClock()
        transport = FakeTransport(clock)
        collector = StatsCollector()
        health = self._health(reserve=5.0)
        client = ResilientClient(
            transport, clock,
            ResilienceConfig(max_retries=3, backoff_base=0.001,
                             backoff_cap=0.002),
            collector, seed=1, health=health,
        )
        try:
            client.send(clock.now(), "p")
            transport.complete(transport.sent[0], error="boom")
            transport.wait_for_sends(2)
            transport.complete(transport.sent[1])
            client.drain(timeout=5.0)
        finally:
            client.close()
        counts = collector.outcome_counts()
        assert counts["succeeded"] == 1
        assert counts["retries"] == 1
        assert health.counts()["retries_budgeted"] == 1

"""Tests for the repeated-run confidence-interval stopping rule."""

import pytest

from repro.stats import MetricEstimate, RunController


class TestRunController:
    def test_requires_min_runs(self):
        ctl = RunController(min_runs=3)
        ctl.add_run({"p95": 1.0})
        ctl.add_run({"p95": 1.0})
        assert not ctl.converged()
        assert ctl.should_continue()

    def test_converges_on_identical_runs(self):
        ctl = RunController(min_runs=3)
        for _ in range(3):
            ctl.add_run({"p95": 2.0, "mean": 1.0})
        assert ctl.converged()
        assert not ctl.should_continue()

    def test_does_not_converge_on_noisy_runs(self):
        ctl = RunController(relative_precision=0.01, min_runs=3)
        for value in (1.0, 2.0, 3.0):
            ctl.add_run({"p95": value})
        assert not ctl.converged()

    def test_converges_on_tight_runs(self):
        ctl = RunController(relative_precision=0.05, min_runs=3)
        for value in (1.000, 1.001, 0.999, 1.0005, 0.9995):
            ctl.add_run({"p95": value})
        assert ctl.converged()

    def test_max_runs_stops_even_without_convergence(self):
        ctl = RunController(min_runs=2, max_runs=4)
        values = iter((1.0, 10.0, 1.0, 10.0))
        while ctl.should_continue():
            ctl.add_run({"p95": next(values)})
        assert ctl.n_runs == 4
        assert not ctl.converged()

    def test_all_metrics_must_converge(self):
        ctl = RunController(relative_precision=0.05, min_runs=3)
        for i, noisy in enumerate((1.0, 5.0, 1.0)):
            ctl.add_run({"stable": 2.0, "noisy": noisy})
        assert not ctl.converged()
        worst = ctl.worst_metric()
        assert worst.name == "noisy"

    def test_metric_set_must_be_consistent(self):
        ctl = RunController()
        ctl.add_run({"a": 1.0})
        with pytest.raises(ValueError):
            ctl.add_run({"b": 1.0})

    def test_empty_run_rejected(self):
        ctl = RunController()
        with pytest.raises(ValueError):
            ctl.add_run({})

    def test_estimate_interval(self):
        ctl = RunController(min_runs=2)
        ctl.add_run({"m": 10.0})
        ctl.add_run({"m": 12.0})
        est = ctl.estimate("m")
        assert est.mean == pytest.approx(11.0)
        lo, hi = est.interval
        assert lo < 11.0 < hi

    def test_estimate_unknown_metric_raises(self):
        ctl = RunController()
        with pytest.raises(KeyError):
            ctl.estimate("nope")

    def test_validates_constructor(self):
        with pytest.raises(ValueError):
            RunController(relative_precision=0.0)
        with pytest.raises(ValueError):
            RunController(min_runs=1)
        with pytest.raises(ValueError):
            RunController(min_runs=5, max_runs=3)


class TestMetricEstimate:
    def test_relative_half_width(self):
        est = MetricEstimate("x", mean=10.0, half_width=0.5, n_runs=5)
        assert est.relative_half_width == pytest.approx(0.05)

    def test_zero_mean_zero_width(self):
        est = MetricEstimate("x", mean=0.0, half_width=0.0, n_runs=5)
        assert est.relative_half_width == 0.0

    def test_zero_mean_nonzero_width_is_infinite(self):
        import math

        est = MetricEstimate("x", mean=0.0, half_width=1.0, n_runs=5)
        assert math.isinf(est.relative_half_width)

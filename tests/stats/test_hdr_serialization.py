"""Tests for HDR histogram serialization (cross-process stats)."""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import HdrHistogram


class TestSerialization:
    def test_roundtrip_preserves_everything(self):
        hist = HdrHistogram()
        rng = random.Random(0)
        hist.record_many(rng.expovariate(1000.0) for _ in range(5000))
        restored = HdrHistogram.from_dict(hist.to_dict())
        assert restored.total_count == hist.total_count
        assert restored.mean == pytest.approx(hist.mean)
        assert restored.min == hist.min
        assert restored.max == hist.max
        for pct in (50, 95, 99, 99.9):
            assert restored.percentile(pct) == hist.percentile(pct)

    def test_json_safe(self):
        hist = HdrHistogram()
        hist.record_many([1e-4, 2e-3, 5e-1])
        encoded = json.dumps(hist.to_dict())
        restored = HdrHistogram.from_dict(json.loads(encoded))
        assert restored.total_count == 3

    def test_empty_roundtrip(self):
        restored = HdrHistogram.from_dict(HdrHistogram().to_dict())
        assert restored.total_count == 0

    def test_sparse_encoding(self):
        hist = HdrHistogram()
        hist.record(1e-3)
        data = hist.to_dict()
        assert len(data["counts"]) == 1  # only non-empty buckets

    def test_restored_is_mergeable(self):
        a, b = HdrHistogram(), HdrHistogram()
        a.record_many([1e-3] * 5)
        b.record_many([1e-2] * 5)
        restored = HdrHistogram.from_dict(a.to_dict())
        restored.merge(b)
        assert restored.total_count == 10

    def test_tampered_payload_rejected(self):
        hist = HdrHistogram()
        hist.record(1e-3)
        data = hist.to_dict()
        data["total"] = 99
        with pytest.raises(ValueError):
            HdrHistogram.from_dict(data)
        data = hist.to_dict()
        data["counts"]["100000"] = 1
        with pytest.raises(ValueError):
            HdrHistogram.from_dict(data)
        data = hist.to_dict()
        key = next(iter(data["counts"]))
        data["counts"][key] = -1
        with pytest.raises(ValueError):
            HdrHistogram.from_dict(data)

    @given(st.lists(st.floats(min_value=1e-6, max_value=999.0), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, values):
        hist = HdrHistogram()
        hist.record_many(values)
        restored = HdrHistogram.from_dict(hist.to_dict())
        assert restored.total_count == hist.total_count
        if values:
            assert restored.percentile(95) == hist.percentile(95)

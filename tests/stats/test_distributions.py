"""Tests for the random-variate samplers."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    Deterministic,
    Empirical,
    Exponential,
    Hyperexponential,
    LogNormal,
    MixtureDistribution,
    Pareto,
    ScaledDistribution,
    ShiftedDistribution,
    Uniform,
    ZipfianGenerator,
)


def _sample_mean(dist, n=20000, seed=1):
    rng = random.Random(seed)
    return sum(dist.sample(rng) for _ in range(n)) / n


class TestDeterministic:
    def test_always_same_value(self):
        d = Deterministic(0.5)
        rng = random.Random(0)
        assert all(d.sample(rng) == 0.5 for _ in range(10))

    def test_moments(self):
        d = Deterministic(2.0)
        assert d.mean == 2.0
        assert d.variance == 0.0
        assert d.scv == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Deterministic(-1.0)


class TestExponential:
    def test_mean_matches(self):
        d = Exponential(rate=1000.0)
        assert d.mean == pytest.approx(1e-3)
        assert _sample_mean(d) == pytest.approx(1e-3, rel=0.05)

    def test_from_mean(self):
        d = Exponential.from_mean(0.01)
        assert d.rate == pytest.approx(100.0)

    def test_scv_is_one(self):
        assert Exponential(5.0).scv == pytest.approx(1.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Exponential(0.0)
        with pytest.raises(ValueError):
            Exponential.from_mean(-1.0)


class TestUniform:
    def test_moments(self):
        d = Uniform(1.0, 3.0)
        assert d.mean == 2.0
        assert d.variance == pytest.approx(4.0 / 12.0)

    def test_samples_in_range(self):
        d = Uniform(0.5, 0.6)
        rng = random.Random(0)
        assert all(0.5 <= d.sample(rng) <= 0.6 for _ in range(100))

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Uniform(2.0, 1.0)


class TestLogNormal:
    def test_mean_parameterization(self):
        # LogNormal is parameterized by its OWN mean, not mu.
        d = LogNormal(mean=1e-3, sigma=0.8)
        assert d.mean == pytest.approx(1e-3)
        assert _sample_mean(d, n=50000) == pytest.approx(1e-3, rel=0.08)

    def test_variance_formula(self):
        d = LogNormal(mean=2.0, sigma=0.5)
        expected = (math.exp(0.25) - 1.0) * 4.0
        assert d.variance == pytest.approx(expected)

    def test_higher_sigma_heavier_tail(self):
        light = LogNormal(mean=1.0, sigma=0.2)
        heavy = LogNormal(mean=1.0, sigma=1.2)
        assert heavy.variance > light.variance

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LogNormal(mean=0.0, sigma=0.5)
        with pytest.raises(ValueError):
            LogNormal(mean=1.0, sigma=-0.1)


class TestPareto:
    def test_moments(self):
        d = Pareto(xm=1.0, alpha=3.0)
        assert d.mean == pytest.approx(1.5)
        assert d.variance == pytest.approx(3.0 / (4.0 * 1.0))

    def test_samples_above_xm(self):
        d = Pareto(xm=2.0, alpha=2.5)
        rng = random.Random(0)
        assert all(d.sample(rng) >= 2.0 for _ in range(200))

    def test_requires_finite_variance(self):
        with pytest.raises(ValueError):
            Pareto(xm=1.0, alpha=2.0)


class TestHyperexponential:
    def test_mean(self):
        d = Hyperexponential([(0.5, 1.0), (0.5, 3.0)])
        assert d.mean == pytest.approx(2.0)
        assert _sample_mean(d) == pytest.approx(2.0, rel=0.05)

    def test_scv_exceeds_one(self):
        # The defining property of hyperexponentials.
        d = Hyperexponential([(0.9, 0.1), (0.1, 5.0)])
        assert d.scv > 1.0

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            Hyperexponential([(0.5, 1.0), (0.4, 2.0)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Hyperexponential([])


class TestCompositors:
    def test_shifted_adds_floor(self):
        base = Exponential.from_mean(1e-3)
        d = ShiftedDistribution(base, 5e-4)
        rng = random.Random(0)
        assert all(d.sample(rng) >= 5e-4 for _ in range(100))
        assert d.mean == pytest.approx(1.5e-3)
        assert d.variance == pytest.approx(base.variance)

    def test_scaled_multiplies(self):
        base = Deterministic(2.0)
        d = ScaledDistribution(base, 1.5)
        rng = random.Random(0)
        assert d.sample(rng) == 3.0
        assert d.mean == 3.0

    def test_scaled_variance(self):
        base = Exponential.from_mean(1.0)
        d = ScaledDistribution(base, 2.0)
        assert d.variance == pytest.approx(4.0 * base.variance)

    def test_mixture_mean(self):
        d = MixtureDistribution(
            [(0.5, Deterministic(1.0)), (0.5, Deterministic(3.0))]
        )
        assert d.mean == pytest.approx(2.0)
        assert _sample_mean(d) == pytest.approx(2.0, rel=0.05)

    def test_mixture_second_moment(self):
        d = MixtureDistribution(
            [(0.5, Deterministic(1.0)), (0.5, Deterministic(3.0))]
        )
        # E[X^2] = 0.5*1 + 0.5*9 = 5 => var = 5 - 4 = 1
        assert d.variance == pytest.approx(1.0)

    def test_mixture_validates_weights(self):
        with pytest.raises(ValueError):
            MixtureDistribution([(0.7, Deterministic(1.0))])

    def test_shift_rejects_negative(self):
        with pytest.raises(ValueError):
            ShiftedDistribution(Deterministic(1.0), -0.1)

    def test_scale_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ScaledDistribution(Deterministic(1.0), 0.0)


class TestEmpirical:
    def test_resamples_only_observed_values(self):
        d = Empirical([1.0, 2.0, 3.0])
        rng = random.Random(0)
        assert all(d.sample(rng) in (1.0, 2.0, 3.0) for _ in range(100))

    def test_moments_match_observations(self):
        d = Empirical([1.0, 2.0, 3.0, 4.0])
        assert d.mean == pytest.approx(2.5)
        assert d.variance == pytest.approx(1.25)

    def test_quantile(self):
        d = Empirical([4.0, 1.0, 3.0, 2.0])
        assert d.quantile(0.0) == 1.0
        assert d.quantile(1.0) == 4.0

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            Empirical([])
        with pytest.raises(ValueError):
            Empirical([1.0, -2.0])


class TestZipfian:
    def test_rank_zero_most_likely(self):
        z = ZipfianGenerator(100, theta=1.0)
        assert z.probability(0) > z.probability(1) > z.probability(50)

    def test_probabilities_sum_to_one(self):
        z = ZipfianGenerator(50)
        total = sum(z.probability(r) for r in range(50))
        assert total == pytest.approx(1.0)

    def test_sampling_frequency_matches_probability(self):
        z = ZipfianGenerator(20, theta=0.9)
        rng = random.Random(3)
        counts = [0] * 20
        n = 50000
        for _ in range(n):
            counts[z.sample(rng)] += 1
        assert counts[0] / n == pytest.approx(z.probability(0), rel=0.1)

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_samples_in_range(self, n):
        z = ZipfianGenerator(n)
        rng = random.Random(0)
        for _ in range(20):
            assert 0 <= z.sample(rng) < n

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=0.0)


class TestMomentConsistency:
    """Sampled moments must match analytic moments for every family."""

    @pytest.mark.parametrize(
        "dist",
        [
            Exponential.from_mean(2.0),
            LogNormal(mean=1.5, sigma=0.6),
            Uniform(0.5, 2.5),
            Pareto(xm=1.0, alpha=4.0),
            Hyperexponential([(0.7, 1.0), (0.3, 4.0)]),
            MixtureDistribution(
                [(0.6, Exponential.from_mean(1.0)), (0.4, Deterministic(2.0))]
            ),
            ShiftedDistribution(Exponential.from_mean(1.0), 0.5),
            ScaledDistribution(LogNormal(mean=1.0, sigma=0.4), 2.0),
        ],
        ids=lambda d: type(d).__name__,
    )
    def test_sampled_mean_matches_analytic(self, dist):
        assert _sample_mean(dist, n=40000) == pytest.approx(dist.mean, rel=0.1)

    @pytest.mark.parametrize(
        "dist",
        [
            Exponential.from_mean(2.0),
            Uniform(0.5, 2.5),
            Hyperexponential([(0.7, 1.0), (0.3, 4.0)]),
        ],
        ids=lambda d: type(d).__name__,
    )
    def test_sampled_variance_matches_analytic(self, dist):
        rng = random.Random(11)
        samples = [dist.sample(rng) for _ in range(60000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert var == pytest.approx(dist.variance, rel=0.15)

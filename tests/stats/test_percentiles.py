"""Tests for quantile estimation and confidence intervals."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    binomial_quantile_ci,
    bootstrap_ci,
    percentile,
    quantile,
    required_samples_for_quantile,
)


class TestQuantile:
    def test_median_of_odd_list(self):
        assert quantile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_interpolation(self):
        assert quantile([0.0, 1.0], 0.5) == 0.5
        assert quantile([0.0, 10.0], 0.25) == 2.5

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert quantile(data, 0.0) == 1.0
        assert quantile(data, 1.0) == 9.0

    def test_single_value(self):
        assert quantile([7.0], 0.9) == 7.0

    def test_percentile_wrapper(self):
        data = list(range(101))
        assert percentile(data, 95) == pytest.approx(95.0)

    def test_matches_numpy(self):
        import numpy as np

        rng = random.Random(0)
        data = [rng.random() for _ in range(137)]
        for q in (0.1, 0.5, 0.95, 0.99):
            assert quantile(data, q) == pytest.approx(
                float(np.percentile(data, q * 100))
            )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_quantile_within_data_range(self, data, q):
        result = quantile(data, q)
        assert min(data) <= result <= max(data)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_quantile_monotone_in_q(self, data):
        qs = [0.1, 0.3, 0.5, 0.7, 0.9]
        values = [quantile(data, q) for q in qs]
        assert values == sorted(values)


class TestBinomialCI:
    def test_contains_true_quantile_usually(self):
        # For exponential data, the CI should cover the true quantile
        # in the vast majority of trials.
        rng = random.Random(1)
        true_p95 = -1.0  # of Exp(1): -ln(0.05)
        import math

        true_p95 = -math.log(0.05)
        hits = 0
        trials = 60
        for _ in range(trials):
            data = [rng.expovariate(1.0) for _ in range(400)]
            lo, hi = binomial_quantile_ci(data, 0.95, confidence=0.95)
            if lo <= true_p95 <= hi:
                hits += 1
        assert hits / trials >= 0.85

    def test_interval_ordering(self):
        rng = random.Random(2)
        data = [rng.random() for _ in range(200)]
        lo, hi = binomial_quantile_ci(data, 0.9)
        assert lo <= hi

    def test_narrower_with_more_samples(self):
        rng = random.Random(3)
        small = [rng.expovariate(1.0) for _ in range(100)]
        large = [rng.expovariate(1.0) for _ in range(10000)]
        lo_s, hi_s = binomial_quantile_ci(small, 0.9)
        lo_l, hi_l = binomial_quantile_ci(large, 0.9)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            binomial_quantile_ci([], 0.5)
        with pytest.raises(ValueError):
            binomial_quantile_ci([1.0], 0.0)
        with pytest.raises(ValueError):
            binomial_quantile_ci([1.0], 0.5, confidence=1.5)


class TestBootstrap:
    def test_mean_ci_contains_sample_mean(self):
        rng = random.Random(4)
        data = [rng.gauss(10.0, 2.0) for _ in range(300)]
        mean = sum(data) / len(data)
        lo, hi = bootstrap_ci(data, lambda xs: sum(xs) / len(xs), rng=rng)
        assert lo <= mean <= hi

    def test_deterministic_with_seeded_rng(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        stat = lambda xs: sum(xs) / len(xs)  # noqa: E731
        a = bootstrap_ci(data, stat, rng=random.Random(9))
        b = bootstrap_ci(data, stat, rng=random.Random(9))
        assert a == b

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], lambda xs: 0.0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], lambda xs: 0.0, n_resamples=1)


class TestRequiredSamples:
    def test_higher_percentile_needs_more_samples(self):
        n95 = required_samples_for_quantile(0.95)
        n99 = required_samples_for_quantile(0.99)
        n999 = required_samples_for_quantile(0.999)
        assert n95 < n99 < n999

    def test_tighter_precision_needs_more_samples(self):
        loose = required_samples_for_quantile(0.99, relative_precision=0.2)
        tight = required_samples_for_quantile(0.99, relative_precision=0.05)
        assert tight > loose

    def test_magnitude_sanity(self):
        # p99 at 10% rank precision: ~ (1.96/0.1)^2 * 99 ~ 38k samples.
        n = required_samples_for_quantile(0.99, relative_precision=0.1)
        assert 20_000 < n < 60_000

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            required_samples_for_quantile(1.0)
        with pytest.raises(ValueError):
            required_samples_for_quantile(0.9, relative_precision=0.0)


class TestSortedValuesFastPath:
    """`sorted_values=True` skips the sort but must change nothing else."""

    def test_quantile_identical_on_presorted_data(self):
        rng = random.Random(17)
        values = [rng.expovariate(500.0) for _ in range(1000)]
        ordered = sorted(values)
        for q in (0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0):
            assert quantile(ordered, q, sorted_values=True) == quantile(
                values, q
            )

    def test_percentile_identical_on_presorted_data(self):
        rng = random.Random(18)
        values = [rng.lognormvariate(0.0, 1.0) for _ in range(500)]
        ordered = sorted(values)
        for pct in (50.0, 90.0, 99.0, 99.9):
            assert percentile(
                ordered, pct, sorted_values=True
            ) == percentile(values, pct)

    def test_still_validates_empty_input(self):
        with pytest.raises(ValueError):
            quantile([], 0.5, sorted_values=True)

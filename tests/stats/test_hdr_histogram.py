"""Tests for the HDR histogram."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import HdrHistogram


class TestConstruction:
    def test_default_layout_covers_paper_range(self):
        # 1 us .. 1000 s with 100 buckets/decade = 900 buckets (Sec. IV-C).
        hist = HdrHistogram()
        assert hist.bucket_count == 900

    def test_rejects_non_positive_lowest(self):
        with pytest.raises(ValueError):
            HdrHistogram(lowest=0.0)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            HdrHistogram(lowest=1.0, highest=0.5)

    def test_rejects_zero_buckets_per_decade(self):
        with pytest.raises(ValueError):
            HdrHistogram(buckets_per_decade=0)


class TestRecording:
    def test_total_count_accumulates(self):
        hist = HdrHistogram()
        for v in (1e-5, 2e-3, 0.5, 10.0):
            hist.record(v)
        assert hist.total_count == 4
        assert len(hist) == 4

    def test_record_with_multiplicity(self):
        hist = HdrHistogram()
        hist.record(1e-3, count=5)
        assert hist.total_count == 5

    def test_rejects_negative_values(self):
        hist = HdrHistogram()
        with pytest.raises(ValueError):
            hist.record(-1.0)

    def test_rejects_non_finite(self):
        hist = HdrHistogram()
        with pytest.raises(ValueError):
            hist.record(float("inf"))
        with pytest.raises(ValueError):
            hist.record(float("nan"))

    def test_rejects_zero_count(self):
        hist = HdrHistogram()
        with pytest.raises(ValueError):
            hist.record(1e-3, count=0)

    def test_clamps_below_range(self):
        hist = HdrHistogram(lowest=1e-6, highest=1e3)
        hist.record(1e-9)
        assert hist.total_count == 1

    def test_clamps_above_range(self):
        hist = HdrHistogram(lowest=1e-6, highest=1e3)
        hist.record(1e9)
        assert hist.total_count == 1

    def test_record_many(self):
        hist = HdrHistogram()
        hist.record_many([1e-3] * 10)
        assert hist.total_count == 10


class TestAccuracy:
    def test_one_percent_relative_error(self):
        # The paper's claim: recorded value within 1% of actual.
        values = [1.234e-6, 5.67e-4, 3.21e-2, 9.99e2, 1.0, 42.0]
        for v in values:
            h = HdrHistogram()
            h.record(v)
            # The bucket containing v must have bounds within 9/100 of
            # a decade => midpoint within ~4.5% worst case; clamped to
            # observed min/max, single-value percentile is exact.
            assert h.percentile(50) == pytest.approx(v)

    def test_bucket_width_within_one_percent_of_value(self):
        hist = HdrHistogram()
        for lo, hi, _ in []:
            pass
        hist.record(5.0e-3)
        (lo, hi, count) = next(iter(hist.buckets()))
        assert count == 1
        assert lo <= 5.0e-3 < hi
        # 100 buckets/decade: width = 9 * decade_start / 100 <= 9% of
        # decade start; relative to the value itself it is < 9%.
        assert (hi - lo) / 5.0e-3 < 0.09

    @given(st.floats(min_value=1e-6, max_value=999.0))
    @settings(max_examples=200, deadline=None)
    def test_bucket_always_contains_value(self, value):
        hist = HdrHistogram()
        hist.record(value)
        buckets = list(hist.buckets())
        assert len(buckets) == 1
        lo, hi, count = buckets[0]
        assert count == 1
        # Allow 1-ulp-scale slack at bucket boundaries: the index and
        # bound computations round independently.
        assert (
            lo <= value < hi
            or math.isclose(value, lo, rel_tol=1e-9)
            or math.isclose(value, hi, rel_tol=1e-9)
        )


class TestStatistics:
    def test_mean_exact(self):
        # Mean is tracked from raw values, not bucket midpoints.
        hist = HdrHistogram()
        hist.record_many([1e-3, 2e-3, 3e-3])
        assert hist.mean == pytest.approx(2e-3)

    def test_min_max_exact(self):
        hist = HdrHistogram()
        hist.record_many([5e-4, 7e-2, 1e-5])
        assert hist.min == pytest.approx(1e-5)
        assert hist.max == pytest.approx(7e-2)

    def test_empty_statistics_raise(self):
        hist = HdrHistogram()
        with pytest.raises(ValueError):
            hist.mean
        with pytest.raises(ValueError):
            hist.percentile(50)
        with pytest.raises(ValueError):
            hist.min

    def test_percentile_bounds_validation(self):
        hist = HdrHistogram()
        hist.record(1e-3)
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(101.0)

    def test_percentile_monotone(self):
        hist = HdrHistogram()
        import random

        rng = random.Random(42)
        hist.record_many(rng.expovariate(1000.0) for _ in range(5000))
        pcts = [hist.percentile(p) for p in (10, 25, 50, 75, 90, 95, 99, 99.9)]
        assert pcts == sorted(pcts)

    def test_percentile_accuracy_vs_exact(self):
        import random

        rng = random.Random(7)
        values = [rng.lognormvariate(math.log(1e-3), 0.8) for _ in range(20000)]
        hist = HdrHistogram()
        hist.record_many(values)
        exact = sorted(values)
        for pct in (50, 95, 99):
            approx = hist.percentile(pct)
            true = exact[int(pct / 100 * len(exact)) - 1]
            assert approx == pytest.approx(true, rel=0.05)

    def test_count_between(self):
        hist = HdrHistogram()
        hist.record_many([1e-4, 2e-4, 5e-3])
        assert hist.count_between(5e-5, 1e-3) == 2
        assert hist.count_between(1.0, 2.0) == 0
        assert hist.count_between(2.0, 1.0) == 0

    def test_cdf_is_monotone_and_ends_at_one(self):
        hist = HdrHistogram()
        hist.record_many([1e-4, 3e-3, 3e-3, 9e-1])
        cdf = hist.cdf()
        probs = [p for _, p in cdf]
        assert probs == sorted(probs)
        assert probs[-1] == pytest.approx(1.0)

    def test_cdf_empty(self):
        assert HdrHistogram().cdf() == []


class TestMerge:
    def test_merge_combines_counts(self):
        a, b = HdrHistogram(), HdrHistogram()
        a.record_many([1e-3] * 3)
        b.record_many([1e-2] * 2)
        a.merge(b)
        assert a.total_count == 5
        assert a.max == pytest.approx(1e-2)

    def test_merge_preserves_mean(self):
        a, b = HdrHistogram(), HdrHistogram()
        a.record_many([1e-3, 2e-3])
        b.record_many([3e-3, 4e-3])
        a.merge(b)
        assert a.mean == pytest.approx(2.5e-3)

    def test_merge_incompatible_layouts_rejected(self):
        a = HdrHistogram(lowest=1e-6)
        b = HdrHistogram(lowest=1e-5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_copy_is_independent(self):
        a = HdrHistogram()
        a.record(1e-3)
        b = a.copy()
        b.record(1e-3)
        assert a.total_count == 1
        assert b.total_count == 2

    @given(
        st.lists(st.floats(min_value=1e-6, max_value=100.0), min_size=1, max_size=50),
        st.lists(st.floats(min_value=1e-6, max_value=100.0), min_size=1, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_recording_union(self, xs, ys):
        merged = HdrHistogram()
        merged.record_many(xs)
        other = HdrHistogram()
        other.record_many(ys)
        merged.merge(other)

        direct = HdrHistogram()
        direct.record_many(xs + ys)
        assert merged.total_count == direct.total_count
        assert merged.percentile(95) == pytest.approx(direct.percentile(95))

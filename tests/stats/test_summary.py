"""Tests for LatencySummary and latency formatting."""

import pytest

from repro.stats import HdrHistogram, LatencySummary, format_latency


class TestFormatLatency:
    def test_microseconds(self):
        assert format_latency(123e-6) == "123.0 us"

    def test_milliseconds(self):
        assert format_latency(2.5e-3) == "2.50 ms"

    def test_seconds(self):
        assert format_latency(3.2) == "3.20 s"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_latency(-1.0)


class TestLatencySummary:
    def test_from_samples(self):
        samples = [float(i) for i in range(1, 101)]
        s = LatencySummary.from_samples(samples)
        assert s.count == 100
        assert s.mean == pytest.approx(50.5)
        assert s.minimum == 1.0
        assert s.maximum == 100.0
        assert s.p50 == pytest.approx(50.5)
        assert s.p95 == pytest.approx(95.05)

    def test_from_histogram(self):
        hist = HdrHistogram()
        hist.record_many([1e-3] * 90 + [1e-2] * 10)
        s = LatencySummary.from_histogram(hist)
        assert s.count == 100
        assert s.p50 == pytest.approx(1e-3, rel=0.05)
        assert s.p99 == pytest.approx(1e-2, rel=0.05)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencySummary.from_samples([])
        with pytest.raises(ValueError):
            LatencySummary.from_histogram(HdrHistogram())

    def test_describe_mentions_percentiles(self):
        s = LatencySummary.from_samples([1e-3, 2e-3, 3e-3])
        text = s.describe()
        assert "p95" in text
        assert "mean" in text

    def test_custom_percentiles(self):
        s = LatencySummary.from_samples(list(range(1, 101)), pcts=(10.0, 90.0))
        assert set(s.percentiles) == {10.0, 90.0}

    def test_histogram_and_samples_agree(self):
        import random

        rng = random.Random(5)
        samples = [rng.expovariate(100.0) for _ in range(20000)]
        hist = HdrHistogram()
        hist.record_many(samples)
        from_s = LatencySummary.from_samples(samples)
        from_h = LatencySummary.from_histogram(hist)
        assert from_h.mean == pytest.approx(from_s.mean, rel=1e-9)
        assert from_h.p95 == pytest.approx(from_s.p95, rel=0.05)
        assert from_h.p99 == pytest.approx(from_s.p99, rel=0.05)

"""Request classification and the priority queue disciplines."""

from repro.control import ClassAssigner, PriorityConfig, RequestClassSpec
from repro.core import Request, VirtualClock
from repro.core.queueing import PriorityBuffer, PriorityRequestQueue


def make_request(priority=0):
    request = Request(payload=None, generated_at=0.0)
    request.sent_at = 0.0
    request.priority = priority
    return request


def two_class_config(mode="strict"):
    return PriorityConfig(
        classes=(
            RequestClassSpec("interactive", priority=1, weight=3.0,
                             fraction=0.8),
            RequestClassSpec("batch", priority=0, weight=1.0, fraction=0.2),
        ),
        mode=mode,
    )


class TestClassAssigner:
    def test_stamps_class_and_priority(self):
        assigner = ClassAssigner(two_class_config(), seed=1)
        request = make_request()
        assigner.classify(request)
        assert request.request_class in ("interactive", "batch")
        assert request.priority in (0, 1)

    def test_split_matches_fractions(self):
        assigner = ClassAssigner(two_class_config(), seed=7)
        n = 5000
        interactive = 0
        for _ in range(n):
            request = make_request()
            assigner.classify(request)
            if request.request_class == "interactive":
                interactive += 1
        assert abs(interactive / n - 0.8) < 0.03

    def test_same_seed_same_sequence(self):
        seq = []
        for _ in range(2):
            assigner = ClassAssigner(two_class_config(), seed=42)
            labels = []
            for _ in range(100):
                request = make_request()
                assigner.classify(request)
                labels.append(request.request_class)
            seq.append(labels)
        assert seq[0] == seq[1]


class TestStrictDiscipline:
    def test_high_priority_always_first(self):
        buffer = PriorityBuffer(mode="strict")
        low = [make_request(priority=0) for _ in range(3)]
        high = [make_request(priority=1) for _ in range(3)]
        for request in [low[0], high[0], low[1], high[1], low[2], high[2]]:
            buffer.push(request)
        popped = [buffer.pop() for _ in range(6)]
        assert popped[:3] == high
        assert popped[3:] == low

    def test_fifo_within_a_class(self):
        buffer = PriorityBuffer(mode="strict")
        requests = [make_request(priority=1) for _ in range(4)]
        for request in requests:
            buffer.push(request)
        assert [buffer.pop() for _ in range(4)] == requests


class TestWeightedDiscipline:
    def test_service_shares_follow_weights(self):
        buffer = PriorityBuffer(mode="weighted", weights={1: 3.0, 0: 1.0})
        # Keep both classes backlogged; count the dequeue mix.
        for _ in range(400):
            buffer.push(make_request(priority=1))
            buffer.push(make_request(priority=0))
        popped = [buffer.pop() for _ in range(400)]
        high_share = sum(1 for r in popped if r.priority == 1) / len(popped)
        assert abs(high_share - 0.75) < 0.05

    def test_drains_whatever_remains(self):
        buffer = PriorityBuffer(mode="weighted", weights={1: 3.0, 0: 1.0})
        only_low = [make_request(priority=0) for _ in range(5)]
        for request in only_low:
            buffer.push(request)
        assert [buffer.pop() for _ in range(5)] == only_low


class TestPriorityRequestQueue:
    def test_strict_queue_reorders_across_classes(self):
        queue = PriorityRequestQueue(VirtualClock(), mode="strict")
        low = make_request(priority=0)
        high = make_request(priority=1)
        queue.put(low)
        queue.put(high)
        assert queue.get() is high
        assert queue.get() is low

"""Closed-loop behavior: AIMD settles near target, autoscaler holds.

These are the CI smoke checks for the control plane: the AIMD limiter
must converge to (and then oscillate tightly around) the limit that
meets its latency target, and the autoscaler must reach the replica
count an overload demands and then hold it without flapping.
"""

from repro.control import (
    AdmissionConfig,
    AdmissionController,
    AutoscalerConfig,
    ControlPlaneConfig,
)
from repro.sim import SimConfig, simulate_load
from repro.sim.calibration import AppProfile
from repro.stats import LogNormal

from .test_controllers import FakeSignals, FakeTarget

_SERVICE = LogNormal(mean=1e-3, sigma=0.5)
_PROFILE = AppProfile(name="synthetic-sleep", service=_SERVICE)


class TestAimdConvergence:
    def test_limit_converges_to_the_plant_capacity(self):
        """Closed loop against a linear plant: p99 = limit * 1ms.

        The limit meeting a 50ms target is 50; AIMD must pull the
        limit from far above into the sawtooth band below it and stay
        there.
        """
        config = AdmissionConfig(
            target_p99=0.05,
            initial_limit=1000,
            min_limit=1,
            additive_increase=1,
            multiplicative_decrease=0.5,
        )
        target = FakeTarget(config)
        signals = FakeSignals()
        controller = AdmissionController(config, target, signals)
        trajectory = []
        for i in range(300):
            signals.next_p99 = controller.limit * 1e-3  # the plant
            controller.tick(float(i))
            trajectory.append(controller.limit)
        settled = trajectory[-100:]
        # Sawtooth band: additive climb to ~50, halve to ~25, repeat.
        assert all(20 <= limit <= 55 for limit in settled)
        # And it keeps probing: the band is a cycle, not a fixed point.
        assert max(settled) - min(settled) >= 5

    def test_overloaded_sim_pulls_limit_down(self):
        config = SimConfig(
            configuration="integrated",
            qps=3000,  # 3x one replica's capacity
            n_threads=1,
            warmup_requests=0,
            measure_requests=3000,
            seed=11,
            control=ControlPlaneConfig(
                enabled=True,
                tick_interval=0.02,
                admission=AdmissionConfig(
                    target_p99=0.05, initial_limit=512, min_limit=4,
                    multiplicative_decrease=0.5,
                ),
            ),
        )
        result = simulate_load(_PROFILE, config)
        assert result.control_counts["final_limit"] < 512
        assert result.control_counts["limit_dropped"] > 0
        # Shedding bounds the served tail that unbounded queueing at
        # 3x load would push into the hundreds of milliseconds.
        assert result.sojourn.p99 < 0.5


class TestAutoscalerConvergence:
    def overload_config(self, seed=0):
        return SimConfig(
            configuration="integrated",
            qps=2500,  # demands ceil(2.5) = 3 replicas
            n_threads=1,
            warmup_requests=0,
            measure_requests=5000,
            seed=seed,
            control=ControlPlaneConfig(
                enabled=True,
                tick_interval=0.02,
                autoscaler=AutoscalerConfig(
                    min_servers=1,
                    max_servers=4,
                    scale_up_depth=4.0,
                    scale_down_util=0.2,
                    hysteresis_ticks=2,
                    cooldown=0.2,
                ),
            ),
        )

    def test_reaches_and_holds_the_demanded_count(self):
        result = simulate_load(_PROFILE, self.overload_config())
        counts = result.control_counts
        # 2.5x load needs 3 replicas in steady state; the controller
        # must reach at least that (a 4th to drain the pre-scale
        # backlog faster is legitimate)...
        assert 3 <= counts["active_servers"] <= 4
        assert counts["scale_ups"] == counts["active_servers"] - 1
        # ...and hold: no scale-down while the overload persists.
        assert counts["scale_downs"] == 0

    def test_scaling_trajectory_is_deterministic(self):
        a = simulate_load(_PROFILE, self.overload_config(seed=3))
        b = simulate_load(_PROFILE, self.overload_config(seed=3))
        assert a.control_counts == b.control_counts
        assert a.sojourn.p99 == b.sojourn.p99
        assert a.server_activity == b.server_activity

    def test_underload_never_scales_up(self):
        config = self.overload_config()
        config = config.replace(qps=300)  # 0.3x: one replica suffices
        result = simulate_load(_PROFILE, config)
        assert result.control_counts["scale_ups"] == 0
        assert result.control_counts["active_servers"] == 1

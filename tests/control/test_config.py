"""Validation rules of the control-plane configuration objects."""

import pytest

from repro.control import (
    NO_CONTROL,
    AdmissionConfig,
    AutoscalerConfig,
    ControlPlaneConfig,
    PriorityConfig,
    RequestClassSpec,
)


class TestAdmissionConfig:
    def test_defaults_valid(self):
        config = AdmissionConfig()
        assert config.min_limit <= config.initial_limit <= config.max_limit

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_p99": 0.0},
            {"codel_target": -0.01},
            {"codel_interval": 0.0},
            {"min_limit": 0},
            {"max_limit": 2, "min_limit": 4},
            {"initial_limit": 10_000},
            {"additive_increase": 0},
            {"multiplicative_decrease": 1.0},
            {"multiplicative_decrease": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionConfig(**kwargs)


class TestPriorityConfig:
    def test_weights_map(self):
        config = PriorityConfig(
            classes=(
                RequestClassSpec("interactive", priority=1, weight=3.0,
                                 fraction=0.7),
                RequestClassSpec("batch", priority=0, weight=1.0,
                                 fraction=0.3),
            ),
            mode="weighted",
        )
        assert config.weights() == {1: 3.0, 0: 1.0}

    def test_rejects_empty_classes(self):
        with pytest.raises(ValueError):
            PriorityConfig(classes=())

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            PriorityConfig(
                classes=(RequestClassSpec("only"),), mode="fifo"
            )

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            PriorityConfig(
                classes=(
                    RequestClassSpec("a", fraction=0.5),
                    RequestClassSpec("a", fraction=0.5),
                )
            )

    def test_rejects_fractions_not_summing_to_one(self):
        with pytest.raises(ValueError):
            PriorityConfig(
                classes=(
                    RequestClassSpec("a", fraction=0.5),
                    RequestClassSpec("b", fraction=0.3),
                )
            )

    def test_rejects_bad_spec_fields(self):
        with pytest.raises(ValueError):
            RequestClassSpec("")
        with pytest.raises(ValueError):
            RequestClassSpec("a", weight=0.0)
        with pytest.raises(ValueError):
            RequestClassSpec("a", fraction=0.0)


class TestAutoscalerConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_servers": 0},
            {"max_servers": 1, "min_servers": 2},
            {"scale_up_depth": 0.0},
            {"scale_down_util": 1.0},
            {"hysteresis_ticks": 0},
            {"cooldown": -1.0},
            {"util_smoothing": 0.0},
            {"util_smoothing": 1.5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            AutoscalerConfig(**kwargs)


class TestControlPlaneConfig:
    def test_disabled_default_is_no_control(self):
        assert NO_CONTROL.enabled is False
        assert NO_CONTROL.admission is None
        assert NO_CONTROL.priority is None
        assert NO_CONTROL.autoscaler is None

    def test_enabled_requires_a_controller(self):
        with pytest.raises(ValueError):
            ControlPlaneConfig(enabled=True)

    def test_enabled_with_any_controller_is_valid(self):
        config = ControlPlaneConfig(
            enabled=True, admission=AdmissionConfig()
        )
        assert config.admission is not None

    def test_rejects_bad_tick_interval(self):
        with pytest.raises(ValueError):
            ControlPlaneConfig(
                enabled=True,
                tick_interval=0.0,
                admission=AdmissionConfig(),
            )

"""Admission-gate decision semantics: AIMD limit + CoDel drop state."""

import math

from repro.control import AdmissionConfig, AdmissionGate
from repro.obs import Tracer


def make_gate(tracer=None, **kwargs):
    defaults = dict(initial_limit=4, min_limit=1, max_limit=64)
    defaults.update(kwargs)
    return AdmissionGate(
        AdmissionConfig(**defaults), server_id=0, tracer=tracer
    )


class TestLimitDrops:
    def test_admits_below_limit(self):
        gate = make_gate()
        assert gate.admit(now=0.0, depth=3)
        assert gate.counts() == {
            "admitted": 1, "codel_dropped": 0, "limit_dropped": 0,
        }

    def test_sheds_at_limit(self):
        gate = make_gate()
        assert not gate.admit(now=0.0, depth=4)
        assert gate.counts()["limit_dropped"] == 1

    def test_set_limit_clamps_to_band(self):
        gate = make_gate(min_limit=2, max_limit=8, initial_limit=4)
        gate.set_limit(100, now=0.0)
        assert gate.limit == 8
        gate.set_limit(0, now=0.0)
        assert gate.limit == 2

    def test_limit_update_traced_only_on_change(self):
        tracer = Tracer()
        gate = make_gate(tracer=tracer)
        gate.set_limit(10, now=1.0)
        gate.set_limit(10, now=2.0)  # no-op: same limit
        updates = [e for e in tracer.events() if e.kind == "limit_update"]
        assert len(updates) == 1
        assert updates[0].value == 10.0


class TestCodelDropState:
    def test_entering_arms_immediate_drop(self):
        gate = make_gate()
        gate.set_dropping(True, now=5.0)
        assert not gate.admit(now=5.0, depth=0)
        assert gate.counts()["codel_dropped"] == 1

    def test_drop_spacing_shrinks_with_sqrt_count(self):
        interval = 0.1
        gate = make_gate(codel_interval=interval)
        gate.set_dropping(True, now=0.0)
        drops = []
        now = 0.0
        # Offer a dense arrival stream; record the drop instants.
        for _ in range(2000):
            if not gate.admit(now, depth=0):
                drops.append(now)
            now += 0.001
        assert len(drops) >= 4
        gaps = [b - a for a, b in zip(drops, drops[1:])]
        # The n-th drop schedules the next interval/sqrt(n) later, so
        # gaps follow the CoDel curve (up to the 1ms arrival grid).
        for n, gap in enumerate(gaps[:5], start=1):
            expected = interval / math.sqrt(n)
            assert abs(gap - expected) <= 0.002

    def test_leaving_drop_state_stops_shedding(self):
        gate = make_gate()
        gate.set_dropping(True, now=0.0)
        assert not gate.admit(now=0.0, depth=0)
        gate.set_dropping(False, now=0.1)
        assert gate.admit(now=0.2, depth=0)

    def test_reentry_rearms_immediate_drop(self):
        gate = make_gate(codel_interval=10.0)
        gate.set_dropping(True, now=0.0)
        assert not gate.admit(now=0.0, depth=0)  # drop_next pushed far out
        gate.set_dropping(False, now=1.0)
        gate.set_dropping(True, now=2.0)
        assert not gate.admit(now=2.0, depth=0)  # immediate again

    def test_limit_takes_precedence_over_codel(self):
        gate = make_gate()
        gate.set_dropping(True, now=0.0)
        assert not gate.admit(now=0.0, depth=10)
        assert gate.counts()["limit_dropped"] == 1
        assert gate.counts()["codel_dropped"] == 0


class TestTraceEvents:
    def test_every_decision_emits_one_event(self):
        tracer = Tracer()
        gate = make_gate(tracer=tracer)
        gate.admit(now=0.0, depth=0)
        gate.admit(now=0.0, depth=4)
        gate.set_dropping(True, now=0.0)
        gate.admit(now=0.1, depth=0)
        kinds = [e.kind for e in tracer.events()]
        assert kinds == ["admit", "drop_limit", "drop_codel"]

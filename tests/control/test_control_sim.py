"""Control plane in the simulator: off = untouched, on = deterministic."""

import pytest

from repro.control import (
    NO_CONTROL,
    AdmissionConfig,
    AutoscalerConfig,
    ControlPlaneConfig,
    PriorityConfig,
    RequestClassSpec,
)
from repro.sim import SimConfig, simulate_load
from repro.sim.calibration import AppProfile
from repro.stats import LogNormal

_PROFILE = AppProfile(
    name="synthetic-sleep", service=LogNormal(mean=1e-3, sigma=0.5)
)


def sim(**overrides):
    params = dict(
        configuration="integrated",
        qps=800,
        n_threads=1,
        warmup_requests=100,
        measure_requests=2000,
        seed=23,
    )
    params.update(overrides)
    return simulate_load(_PROFILE, SimConfig(**params))


def full_control(**overrides):
    params = dict(
        enabled=True,
        tick_interval=0.02,
        admission=AdmissionConfig(target_p99=0.05),
        priority=PriorityConfig(
            classes=(
                RequestClassSpec("interactive", priority=1, weight=3.0,
                                 fraction=0.9),
                RequestClassSpec("batch", priority=0, weight=1.0,
                                 fraction=0.1),
            ),
            mode="strict",
        ),
        autoscaler=AutoscalerConfig(max_servers=3, cooldown=0.2),
    )
    params.update(overrides)
    return ControlPlaneConfig(**params)


class TestDisabledIsUntouched:
    def test_default_config_equals_explicit_no_control(self):
        plain = sim()
        explicit = sim(control=NO_CONTROL)
        assert plain.sojourn.p99 == explicit.sojourn.p99
        assert plain.virtual_time == explicit.virtual_time
        assert plain.outcomes == explicit.outcomes

    def test_disabled_run_reports_no_control_counts(self):
        result = sim()
        assert result.control_counts == {}

    def test_multi_server_disabled_also_untouched(self):
        plain = sim(n_servers=2, balancer="jsq")
        explicit = sim(n_servers=2, balancer="jsq", control=NO_CONTROL)
        assert plain.sojourn.p99 == explicit.sojourn.p99
        assert plain.routed_counts == explicit.routed_counts


class TestEnabledDeterminism:
    def test_controlled_run_is_bit_identical_across_invocations(self):
        a = sim(qps=1500, control=full_control())
        b = sim(qps=1500, control=full_control())
        assert a.sojourn.p99 == b.sojourn.p99
        assert a.control_counts == b.control_counts
        assert a.outcomes == b.outcomes
        assert a.routed_counts == b.routed_counts
        assert a.server_activity == b.server_activity

    def test_control_counts_populated(self):
        result = sim(control=full_control())
        counts = result.control_counts
        assert counts["ticks"] > 0
        assert "admitted" in counts
        assert "final_limit" in counts
        assert "scale_ups" in counts
        assert counts["active_servers"] >= 1

    def test_seed_changes_the_controlled_run(self):
        a = sim(qps=1500, control=full_control(), seed=1)
        b = sim(qps=1500, control=full_control(), seed=2)
        assert a.sojourn.p99 != b.sojourn.p99


class TestControlledBehavior:
    def test_underload_admits_everything(self):
        result = sim(qps=300, control=full_control())
        counts = result.control_counts
        assert counts["codel_dropped"] == 0
        assert counts["limit_dropped"] == 0
        assert result.outcomes.get("shed", 0) == 0

    def test_sheds_are_accounted_not_lost(self):
        result = sim(
            qps=4000,
            warmup_requests=0,
            control=full_control(
                autoscaler=None,  # admission alone: must shed
                admission=AdmissionConfig(
                    target_p99=0.02, initial_limit=16, min_limit=2,
                    multiplicative_decrease=0.5,
                ),
            ),
        )
        shed = result.outcomes.get("shed", 0)
        assert shed > 0
        counts = result.control_counts
        assert shed == counts["codel_dropped"] + counts["limit_dropped"]
        # Offered = served + shed: nothing vanishes.
        assert result.stats.count + shed == 2000

    def test_autoscaler_requires_n_servers_within_band(self):
        with pytest.raises(ValueError):
            SimConfig(
                n_servers=8,
                control=full_control(
                    autoscaler=AutoscalerConfig(max_servers=3)
                ),
            )


class TestLiveControlSmoke:
    """One live run with the whole plane on: the wall-clock loop ticks,
    gates classify and admit, and accounting stays consistent."""

    def test_live_controlled_run(self):
        from repro.core import HarnessConfig, run_harness
        from tests.core.test_harness import ConstantApp

        result = run_harness(
            ConstantApp(),
            HarnessConfig(
                qps=500,
                warmup_requests=50,
                measure_requests=400,
                control=full_control(),
            ),
        )
        counts = result.control_counts
        assert counts["ticks"] > 0
        assert counts["admitted"] > 0
        assert result.stats.count + result.outcomes.get("shed", 0) == 400

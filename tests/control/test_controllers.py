"""Controller state machines against a scripted fake target."""

from repro.control import (
    AdmissionConfig,
    AdmissionController,
    AdmissionGate,
    AutoscaleController,
    AutoscalerConfig,
)
from repro.core.queueing import QueueSnapshot


def snapshot(depth=0, head_sojourn=0.0):
    return QueueSnapshot(
        depth=depth, peak_depth=depth, total_enqueued=0, total_shed=0,
        head_sojourn=head_sojourn,
    )


class FakeTarget:
    """Scripted ControlTarget: tests poke the signals directly."""

    def __init__(self, config, n_servers=1):
        self._gates = {
            i: AdmissionGate(config, server_id=i) for i in range(n_servers)
        }
        self.head_sojourn = {i: 0.0 for i in range(n_servers)}
        self.load = {i: (0, 0, 1) for i in range(n_servers)}
        self.scale_up_calls = 0
        self.scale_down_calls = 0

    def active_servers(self):
        return sorted(self._gates)

    def queue_snapshot(self, server_id, now):
        return snapshot(head_sojourn=self.head_sojourn[server_id])

    def server_load(self, server_id):
        return self.load[server_id]

    def gate(self, server_id):
        return self._gates[server_id]

    def scale_up(self):
        self.scale_up_calls += 1
        server_id = len(self._gates)
        self._gates[server_id] = AdmissionGate(
            AdmissionConfig(), server_id=server_id
        )
        self.head_sojourn[server_id] = 0.0
        self.load[server_id] = (0, 0, 1)
        return server_id

    def scale_down(self):
        self.scale_down_calls += 1
        server_id = max(self._gates)
        del self._gates[server_id]
        self.head_sojourn.pop(server_id)
        self.load.pop(server_id)
        return server_id


class FakeSignals:
    def __init__(self):
        self.next_p99 = None

    def window_p99(self):
        return self.next_p99


class TestAdmissionControllerCodel:
    def make(self, **kwargs):
        defaults = dict(codel_target=0.02, codel_interval=0.1)
        defaults.update(kwargs)
        config = AdmissionConfig(**defaults)
        target = FakeTarget(config)
        signals = FakeSignals()
        return AdmissionController(config, target, signals), target

    def test_enters_drop_state_after_sustained_bad_sojourn(self):
        controller, target = self.make()
        target.head_sojourn[0] = 0.05  # above target
        controller.tick(0.0)  # first bad observation: not yet
        assert not target.gate(0).dropping
        controller.tick(0.1)  # bad for a full interval: enter
        assert target.gate(0).dropping

    def test_brief_spike_does_not_enter_drop_state(self):
        controller, target = self.make()
        target.head_sojourn[0] = 0.05
        controller.tick(0.0)
        target.head_sojourn[0] = 0.0  # recovered before the interval
        controller.tick(0.05)
        target.head_sojourn[0] = 0.05  # the streak restarts
        controller.tick(0.1)
        assert not target.gate(0).dropping

    def test_recovery_releases_drop_state(self):
        controller, target = self.make()
        target.head_sojourn[0] = 0.05
        controller.tick(0.0)
        controller.tick(0.1)
        assert target.gate(0).dropping
        target.head_sojourn[0] = 0.01  # back under target
        controller.tick(0.2)
        assert not target.gate(0).dropping


class TestAdmissionControllerAimd:
    def make(self, **kwargs):
        defaults = dict(
            target_p99=0.05, initial_limit=100, min_limit=1,
            additive_increase=1, multiplicative_decrease=0.5,
        )
        defaults.update(kwargs)
        config = AdmissionConfig(**defaults)
        target = FakeTarget(config)
        signals = FakeSignals()
        return AdmissionController(config, target, signals), target, signals

    def test_multiplicative_decrease_above_target(self):
        controller, target, signals = self.make()
        signals.next_p99 = 0.2
        controller.tick(0.0)
        assert controller.limit == 50
        assert target.gate(0).limit == 50

    def test_additive_increase_at_or_under_target(self):
        controller, target, signals = self.make()
        signals.next_p99 = 0.01
        controller.tick(0.0)
        assert controller.limit == 101

    def test_empty_window_leaves_limit_alone(self):
        controller, target, signals = self.make()
        signals.next_p99 = None
        controller.tick(0.0)
        assert controller.limit == 100

    def test_limit_never_below_min(self):
        controller, target, signals = self.make(min_limit=8)
        signals.next_p99 = 1.0
        for i in range(20):
            controller.tick(float(i))
        assert controller.limit == 8

    def test_limit_installed_on_every_active_gate(self):
        config = AdmissionConfig(initial_limit=100, multiplicative_decrease=0.5)
        target = FakeTarget(config, n_servers=3)
        signals = FakeSignals()
        controller = AdmissionController(config, target, signals)
        signals.next_p99 = 1.0
        controller.tick(0.0)
        assert all(target.gate(i).limit == 50 for i in range(3))


class TestAutoscaleController:
    def make(self, **kwargs):
        defaults = dict(
            min_servers=1, max_servers=4, scale_up_depth=4.0,
            scale_down_util=0.2, hysteresis_ticks=2, cooldown=1.0,
            util_smoothing=1.0,  # raw samples unless a test opts in
        )
        defaults.update(kwargs)
        config = AutoscalerConfig(**defaults)
        target = FakeTarget(AdmissionConfig())
        return AutoscaleController(config, target), target

    def test_scale_up_needs_hysteresis_streak(self):
        controller, target = self.make()
        target.load[0] = (10, 1, 1)
        controller.tick(0.0)
        assert target.scale_up_calls == 0  # one breach is not enough
        controller.tick(0.1)
        assert target.scale_up_calls == 1
        assert controller.scale_ups == 1

    def test_broken_streak_resets(self):
        controller, target = self.make()
        target.load[0] = (10, 1, 1)
        controller.tick(0.0)
        target.load[0] = (0, 1, 1)  # healthy tick in between
        controller.tick(0.1)
        target.load[0] = (10, 1, 1)
        controller.tick(0.2)
        assert target.scale_up_calls == 0

    def test_cooldown_blocks_back_to_back_actions(self):
        controller, target = self.make()
        target.load[0] = (10, 1, 1)
        controller.tick(0.0)
        controller.tick(0.1)  # scales up at t=0.1
        target.load = {i: (10, 1, 1) for i in target.load}
        controller.tick(0.2)
        controller.tick(0.3)  # streak satisfied but inside cooldown
        assert target.scale_up_calls == 1
        controller.tick(1.2)
        controller.tick(1.3)  # cooldown expired
        assert target.scale_up_calls == 2

    def test_scale_down_on_sustained_idleness(self):
        controller, target = self.make()
        target.scale_up()
        target.load = {i: (0, 0, 1) for i in target.load}
        controller.tick(0.0)
        controller.tick(0.1)
        assert target.scale_down_calls == 1

    def test_never_scales_below_min(self):
        controller, target = self.make()
        target.load[0] = (0, 0, 1)
        for i in range(10):
            controller.tick(float(i) * 2)  # spaced beyond cooldown
        assert target.scale_down_calls == 0

    def test_never_scales_above_max(self):
        controller, target = self.make(max_servers=2)
        target.load[0] = (10, 1, 1)
        for i in range(10):
            target.load = {j: (10, 1, 1) for j in target.load}
            controller.tick(float(i) * 2)
        assert len(target.active_servers()) == 2

    def test_smoothing_ignores_instantaneous_idle_samples(self):
        # At moderate load the 0/1 busy sample is often 0; with EWMA
        # smoothing a short run of idle samples must not scale down.
        controller, target = self.make(util_smoothing=0.2)
        target.scale_up()
        busy = [(1, 1, 1), (1, 1, 1), (0, 0, 1), (0, 0, 1), (1, 1, 1)]
        for i, load in enumerate(busy * 4):
            target.load = {j: load for j in target.load}
            controller.tick(float(i) * 2)
        assert target.scale_down_calls == 0

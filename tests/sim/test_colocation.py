"""Tests for the colocation interference model."""

import pytest

from repro.sim import (
    BatchColocation,
    SimConfig,
    max_safe_batch_share,
    paper_profile,
    simulate_colocated,
)


class TestBatchColocation:
    def test_no_colocation_is_identity(self):
        assert BatchColocation().dilation == 1.0

    def test_cpu_share_dilates_hyperbolically(self):
        assert BatchColocation(cpu_share=0.5).dilation == pytest.approx(2.0)
        assert BatchColocation(cpu_share=0.75).dilation == pytest.approx(4.0)

    def test_mem_pressure_compounds(self):
        colocation = BatchColocation(cpu_share=0.5, mem_pressure=0.2)
        assert colocation.dilation == pytest.approx(2.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchColocation(cpu_share=1.0)
        with pytest.raises(ValueError):
            BatchColocation(mem_pressure=-0.1)


class TestSimulateColocated:
    def test_batch_degrades_tail(self):
        profile = paper_profile("xapian")
        qps = 0.3 / profile.service.mean
        config = SimConfig(qps=qps, measure_requests=4000)
        alone = simulate_colocated(profile, config, BatchColocation())
        shared = simulate_colocated(
            profile, config, BatchColocation(cpu_share=0.5, mem_pressure=0.15)
        )
        # The paper's point: colocation degrades tails far more than
        # the naive "half the CPU => 2x latency" intuition, because the
        # dilated server sits much closer to saturation.
        assert shared.sojourn.p95 > 3 * alone.sojourn.p95

    def test_no_colocation_matches_plain_simulation(self):
        from repro.sim import simulate_load

        profile = paper_profile("masstree")
        config = SimConfig(qps=2000, measure_requests=3000)
        colocated = simulate_colocated(profile, config, BatchColocation())
        plain = simulate_load(profile, config)
        assert colocated.sojourn.p95 == pytest.approx(plain.sojourn.p95)


class TestMaxSafeBatchShare:
    def test_lower_load_fits_more_batch(self):
        profile = paper_profile("xapian")
        saturation = 1.0 / profile.service.mean
        low = max_safe_batch_share(
            profile, 0.2 * saturation, slo_seconds=10e-3, measure_requests=3000
        )
        high = max_safe_batch_share(
            profile, 0.6 * saturation, slo_seconds=10e-3, measure_requests=3000
        )
        assert low > high

    def test_infeasible_slo_gives_zero(self):
        profile = paper_profile("xapian")
        share = max_safe_batch_share(
            profile,
            0.9 / profile.service.mean,
            slo_seconds=1e-4,  # below even the service p95
            measure_requests=2000,
        )
        assert share == 0.0

    def test_result_actually_meets_slo(self):
        profile = paper_profile("masstree")
        qps = 0.3 / profile.service.mean
        slo = 2e-3
        share = max_safe_batch_share(
            profile, qps, slo_seconds=slo, measure_requests=4000
        )
        assert share > 0
        result = simulate_colocated(
            profile,
            SimConfig(qps=qps, measure_requests=4000),
            BatchColocation(cpu_share=share, mem_pressure=share * 0.3),
        )
        assert result.sojourn.p95 <= slo * 1.15  # small sampling slack

    def test_validation(self):
        profile = paper_profile("silo")
        with pytest.raises(ValueError):
            max_safe_batch_share(profile, 0.0, 1e-3)
        with pytest.raises(ValueError):
            max_safe_batch_share(profile, 100.0, 0.0)

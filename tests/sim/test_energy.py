"""Tests for the energy package (power model, policies, simulation)."""

import pytest

from repro.energy import (
    DeepSleep,
    EnergyAccount,
    NoSleep,
    PowerModel,
    QueueBoost,
    StaticFrequency,
    simulate_energy,
)
from repro.stats import Exponential


class TestPowerModel:
    def test_nominal_power_is_one(self):
        assert PowerModel().active_power(1.0) == pytest.approx(1.0)

    def test_cubic_dynamic_scaling(self):
        model = PowerModel(static_fraction=0.0)
        assert model.active_power(0.5) == pytest.approx(0.125)

    def test_static_floor(self):
        model = PowerModel(static_fraction=0.3)
        assert model.active_power(0.01) == pytest.approx(0.3, abs=1e-4)

    def test_state_ordering(self):
        model = PowerModel()
        assert model.sleep_power < model.idle_power < model.active_power(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(static_fraction=1.5)
        with pytest.raises(ValueError):
            PowerModel().active_power(0.0)


class TestEnergyAccount:
    def test_accumulates_by_state(self):
        account = EnergyAccount(PowerModel())
        account.add_active(1.0, 1.0)
        account.add_idle(2.0)
        account.add_sleep(4.0)
        assert account.busy_time == 1.0
        assert account.total_time == 7.0
        expected = 1.0 + 2.0 * 0.45 + 4.0 * 0.05
        assert account.total_energy == pytest.approx(expected)
        assert account.average_power == pytest.approx(expected / 7.0)

    def test_validation(self):
        account = EnergyAccount(PowerModel())
        with pytest.raises(ValueError):
            account.add_active(-1.0, 1.0)
        with pytest.raises(ValueError):
            account.average_power


class TestPolicies:
    def test_static_frequency(self):
        assert StaticFrequency(0.8).frequency(5, 1.0) == 0.8

    def test_queue_boost_reacts_to_pressure(self):
        policy = QueueBoost(low=0.6, high=1.0)
        assert policy.frequency(0, 0.0) == 0.6  # alone: slow
        assert policy.frequency(3, 0.0) == 1.0  # backlog: boost
        assert policy.frequency(0, 1e-3) == 1.0  # waited: boost

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticFrequency(0.0)
        with pytest.raises(ValueError):
            QueueBoost(low=1.0, high=0.5)
        with pytest.raises(ValueError):
            DeepSleep(wakeup_latency=-1.0)


class TestSimulateEnergy:
    SERVICE = Exponential.from_mean(200e-6)

    def run(self, **kwargs):
        defaults = dict(
            service=self.SERVICE,
            qps=0.3 / 200e-6,
            measure_requests=6000,
            warmup_requests=500,
        )
        defaults.update(kwargs)
        return simulate_energy(**defaults)

    def test_lower_frequency_saves_energy_costs_latency(self):
        fast = self.run(frequency_policy=StaticFrequency(1.0))
        slow = self.run(frequency_policy=StaticFrequency(0.6))
        assert slow.energy_per_request < fast.energy_per_request
        assert slow.sojourn.p95 > fast.sojourn.p95

    def test_queue_boost_dominates_static_low(self):
        # Reactive DVFS must beat the static-low point on latency while
        # keeping most of the savings — the Rubik/Adrenaline result.
        fast = self.run(frequency_policy=StaticFrequency(1.0))
        slow = self.run(frequency_policy=StaticFrequency(0.6))
        boost = self.run(frequency_policy=QueueBoost(low=0.6, high=1.0))
        assert boost.sojourn.p95 < slow.sojourn.p95
        assert boost.energy_per_request < fast.energy_per_request

    def test_deep_sleep_saves_energy_adds_wakeup_to_tail(self):
        awake = self.run(sleep_policy=NoSleep())
        sleepy = self.run(sleep_policy=DeepSleep(wakeup_latency=300e-6))
        assert sleepy.energy.sleep_time > 0
        assert sleepy.average_power < awake.average_power
        # At low load, most requests wake a sleeping worker: the tail
        # shifts by roughly the transition latency.
        delta = sleepy.sojourn.p95 - awake.sojourn.p95
        assert 100e-6 < delta < 500e-6

    def test_sleep_never_entered_at_high_load(self):
        result = self.run(
            qps=0.95 / 200e-6,
            sleep_policy=DeepSleep(entry_threshold=100e-6),
        )
        # Busy servers rarely idle past the threshold.
        assert result.energy.sleep_time < 0.1 * result.energy.busy_time

    def test_memory_bound_work_does_not_scale_with_frequency(self):
        fast = self.run(
            frequency_policy=StaticFrequency(1.0), compute_fraction=0.0
        )
        slow = self.run(
            frequency_policy=StaticFrequency(0.5), compute_fraction=0.0
        )
        # Service times identical when nothing is compute-bound.
        assert slow.stats.summary("service").mean == pytest.approx(
            fast.stats.summary("service").mean, rel=0.05
        )

    def test_energy_time_accounting_consistent(self):
        result = self.run(n_threads=2)
        # Per-worker time sums to ~n_threads x virtual span.
        assert result.energy.total_time == pytest.approx(
            2 * result.virtual_time, rel=0.05
        )

    def test_deterministic_given_seed(self):
        a = self.run(seed=7)
        b = self.run(seed=7)
        assert a.sojourn.p95 == b.sojourn.p95
        assert a.energy.total_energy == b.energy.total_energy

    def test_validation(self):
        with pytest.raises(ValueError):
            self.run(qps=0.0)
        with pytest.raises(ValueError):
            self.run(n_threads=0)
        with pytest.raises(ValueError):
            self.run(compute_fraction=1.5)
"""Tests for top-level virtual-time load testing."""

import pytest

from repro.queueing import mean_sojourn
from repro.sim import (
    PAPER_PROFILES,
    AppProfile,
    SimConfig,
    paper_profile,
    simulate_app,
    simulate_load,
)
from repro.stats import Deterministic, Exponential


class TestSimConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimConfig(qps=0)
        with pytest.raises(ValueError):
            SimConfig(n_threads=0)
        with pytest.raises(ValueError):
            SimConfig(measure_requests=0)

    def test_with_qps_and_seed(self):
        config = SimConfig(qps=100, seed=1, ideal_memory=True)
        assert config.with_qps(200).qps == 200
        assert config.with_qps(200).ideal_memory is True
        assert config.with_seed(9).seed == 9
        assert config.with_seed(9).qps == 100


class TestSimulateLoad:
    def test_deterministic_given_seed(self):
        config = SimConfig(qps=5000, measure_requests=2000)
        a = simulate_app("masstree", config)
        b = simulate_app("masstree", config)
        assert a.sojourn.p95 == b.sojourn.p95

    def test_different_seeds_differ(self):
        a = simulate_app("masstree", SimConfig(qps=5000, measure_requests=2000, seed=0))
        b = simulate_app("masstree", SimConfig(qps=5000, measure_requests=2000, seed=1))
        assert a.sojourn.p95 != b.sojourn.p95

    def test_mm1_matches_theory(self):
        # M/M/1 sanity anchor: mean sojourn = 1 / (mu - lambda).
        service = Exponential.from_mean(1e-3)
        profile = AppProfile(name="mm1", service=service)
        result = simulate_load(
            profile,
            SimConfig(qps=500.0, measure_requests=60_000, warmup_requests=5000),
        )
        expected = 1.0 / (1000.0 - 500.0)
        assert result.sojourn.mean == pytest.approx(expected, rel=0.08)

    def test_md1_matches_pollaczek_khinchine(self):
        service = Deterministic(1e-3)
        profile = AppProfile(name="md1", service=service)
        result = simulate_load(
            profile,
            SimConfig(qps=700.0, measure_requests=60_000, warmup_requests=5000),
        )
        expected = mean_sojourn(700.0, service)
        assert result.sojourn.mean == pytest.approx(expected, rel=0.08)

    def test_utilization_tracks_offered_load(self):
        result = simulate_app(
            "xapian", SimConfig(qps=0.5 / paper_profile("xapian").service.mean,
                                measure_requests=5000)
        )
        assert result.utilization == pytest.approx(0.5, abs=0.05)

    def test_tail_grows_faster_than_mean(self):
        # The central Fig. 3 observation, sharpest for near-constant
        # service times where queueing is the whole story (masstree):
        # relative p99 growth outpaces relative mean growth, and in
        # absolute terms the tail opens a far larger gap.
        prof = paper_profile("masstree")
        sat = 1.0 / prof.service.mean
        low = simulate_app(
            "masstree", SimConfig(qps=0.2 * sat, measure_requests=12000)
        )
        high = simulate_app(
            "masstree", SimConfig(qps=0.85 * sat, measure_requests=12000)
        )
        mean_growth = high.sojourn.mean / low.sojourn.mean
        p99_growth = high.sojourn.p99 / low.sojourn.p99
        assert p99_growth > mean_growth
        assert (high.sojourn.p99 - low.sojourn.p99) > (
            high.sojourn.mean - low.sojourn.mean
        )

    def test_saturated_flag(self):
        prof = paper_profile("masstree")
        sat = 1.0 / prof.service.mean
        over = simulate_app("masstree", SimConfig(qps=1.3 * sat, measure_requests=4000))
        under = simulate_app("masstree", SimConfig(qps=0.3 * sat, measure_requests=4000))
        assert over.saturated
        assert not under.saturated

    def test_warmup_requests_dropped(self):
        result = simulate_app(
            "silo", SimConfig(qps=1000, warmup_requests=500, measure_requests=1000)
        )
        assert result.stats.count == 1000
        assert result.stats.dropped_warmup == 500

    def test_describe(self):
        result = simulate_app("silo", SimConfig(qps=1000, measure_requests=1000))
        assert "silo" in result.describe()


class TestConfigurationEffects:
    def test_networked_slower_than_integrated(self):
        config = SimConfig(qps=2000, measure_requests=5000)
        integrated = simulate_app("silo", config)
        networked = simulate_app(
            "silo", SimConfig(qps=2000, measure_requests=5000,
                              configuration="networked")
        )
        assert networked.sojourn.p50 > integrated.sojourn.p50

    def test_simulated_system_speed_error(self):
        # sim_speed < 1 => faster service => lower latency at equal QPS.
        prof = paper_profile("shore")
        assert prof.sim_speed < 1.0
        config = SimConfig(qps=1000, measure_requests=5000)
        real = simulate_app("shore", config)
        simulated = simulate_app(
            "shore", SimConfig(qps=1000, measure_requests=5000,
                               simulated_system=True)
        )
        assert simulated.service.mean < real.service.mean

    def test_ideal_memory_removes_mem_contention_only(self):
        prof = paper_profile("moses")
        normal = prof.service_model(n_threads=4)
        ideal = prof.service_model(n_threads=4, ideal_memory=True)
        assert ideal.mean < normal.mean
        # silo is sync-bound: ideal memory barely helps.
        silo = paper_profile("silo")
        assert silo.service_model(n_threads=4, ideal_memory=True).mean == (
            pytest.approx(silo.service_model(n_threads=4).mean, rel=0.05)
        )


class TestPaperProfiles:
    def test_all_eight_apps_present(self):
        assert set(PAPER_PROFILES) == {
            "xapian", "masstree", "moses", "sphinx",
            "img-dnn", "specjbb", "silo", "shore",
        }

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            paper_profile("redis")

    def test_service_time_ordering_matches_paper(self):
        # Fig. 2 / Fig. 3: silo < specjbb < masstree < shore < xapian
        # < img-dnn ~ moses << sphinx in mean service time.
        means = {name: p.service.mean for name, p in PAPER_PROFILES.items()}
        assert means["silo"] < means["specjbb"] < means["masstree"]
        assert means["masstree"] < means["shore"] < means["xapian"]
        assert means["xapian"] < means["img-dnn"] <= means["moses"]
        assert means["moses"] < means["sphinx"]

    def test_near_constant_apps_have_low_scv(self):
        assert PAPER_PROFILES["masstree"].service.scv < 0.15
        assert PAPER_PROFILES["img-dnn"].service.scv < 0.15

    def test_long_tail_apps_have_high_scv(self):
        assert PAPER_PROFILES["silo"].service.scv > 1.0
        assert PAPER_PROFILES["shore"].service.scv > 0.3


class TestAttemptTimeoutClamp:
    def test_attempt_timers_never_outlive_the_deadline(self):
        # Regression: every attempt is dropped, so attempt timeouts and
        # backoff alone drive the run. Unclamped, the final retry's
        # timer (scheduled after backoff sleeps ate the budget) fired
        # past the deadline and stretched virtual time beyond the last
        # request's resolution; clamped, the simulation ends exactly at
        # the last arrival + deadline.
        from repro.core.resilience import ResilienceConfig
        from repro.faults import FaultPlan

        profile = AppProfile(name="clamp", service=Deterministic(1e-3))
        config = SimConfig(
            qps=1000, warmup_requests=0, measure_requests=50, seed=3,
            deterministic_arrivals=True,
            faults=FaultPlan(drop_rate=1.0),
            resilience=ResilienceConfig(deadline=0.05, max_retries=3),
        )
        result = simulate_load(profile, config)
        assert result.outcomes["timed_out"] == 50
        last_arrival = 50 / 1000.0
        assert result.virtual_time <= last_arrival + 0.05 + 1e-9

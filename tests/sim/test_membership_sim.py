"""Runtime replica membership in virtual time.

Sim counterpart of ``tests/core/test_membership.py``: the topology's
routing layer must never target a draining replica, under every
balancer policy, and added replicas must join the routable set.
"""

import random

import pytest

from repro.core.balancer import balancer_names, make_balancer
from repro.core.collector import StatsCollector
from repro.core.request import Request
from repro.sim.engine import Engine
from repro.sim.latency_sim import _Topology
from repro.sim.network_model import network_model_for
from repro.sim.server_model import SimulatedServer
from repro.sim.service_models import ServiceTimeModel
from repro.stats import Deterministic

ALL_POLICIES = balancer_names()


def make_topology(policy, n_servers=3, service_time=0.01):
    engine = Engine()
    collector = StatsCollector()
    model = ServiceTimeModel(Deterministic(service_time))
    network = network_model_for("integrated")

    def build(server_id):
        return SimulatedServer(
            engine,
            model,
            network,
            n_threads=1,
            collector=collector,
            rng=random.Random(1000 + server_id),
            server_id=server_id,
        )

    topology = _Topology(
        [build(i) for i in range(n_servers)],
        make_balancer(policy, seed=5),
        engine=engine,
        server_factory=build,
    )
    return engine, topology


def submit(topology, at):
    request = Request(payload=None, generated_at=at)
    request.sent_at = at
    return topology.submit_attempt(request)


class TestSimMembership:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_no_routing_to_drained_replica(self, policy):
        engine, topology = make_topology(policy)
        drained = topology.drain_server()
        assert drained == 2  # youngest active
        assert topology.active_ids() == [0, 1]
        routed = [submit(topology, at=i * 0.001) for i in range(60)]
        engine.run()
        assert drained not in routed

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_added_replica_becomes_routable(self, policy):
        engine, topology = make_topology(policy, n_servers=2)
        new_id = topology.add_server()
        assert new_id == 2
        assert topology.active_ids() == [0, 1, 2]
        # Saturating load: every depth-aware policy must spill onto the
        # new replica; round-robin reaches it by rotation.
        routed = [submit(topology, at=i * 0.001) for i in range(90)]
        engine.run()
        assert 2 in routed

    def test_drain_keeps_last_replica(self):
        engine, topology = make_topology("round_robin", n_servers=2)
        assert topology.drain_server() == 1
        assert topology.drain_server() is None
        assert topology.active_ids() == [0]

    def test_drained_replica_finishes_queued_work(self):
        engine, topology = make_topology("round_robin", n_servers=2)
        completed = []
        topology.set_response_callback(
            lambda request: completed.append(request.server_id)
        )
        for i in range(10):
            submit(topology, at=i * 0.001)
        drained = topology.drain_server()
        assert drained is not None
        engine.run()
        assert len(completed) == 10
        assert drained in completed

    def test_drain_stamps_membership_window(self):
        engine, topology = make_topology("round_robin", n_servers=2)
        submit(topology, at=0.0)
        engine.run()
        drained = topology.drain_server()
        server = topology.server(drained)
        assert server.draining
        assert server.drained_at == engine.now

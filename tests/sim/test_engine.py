"""Tests for the discrete-event engine and event queue."""

import pytest

from repro.sim import Engine, EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, order.append, "c")
        queue.push(1.0, order.append, "a")
        queue.push(2.0, order.append, "b")
        while True:
            event = queue.pop()
            if event is None:
                break
            event.fn(*event.args)
        assert order == ["a", "b", "c"]

    def test_fifo_at_equal_times(self):
        queue = EventQueue()
        order = []
        for label in ("first", "second", "third"):
            queue.push(1.0, order.append, label)
        while (event := queue.pop()) is not None:
            event.fn(*event.args)
        assert order == ["first", "second", "third"]

    def test_cancellation(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, fired.append, "x")
        event.cancelled = True
        assert queue.pop() is None
        assert not fired

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        drop = queue.push(2.0, lambda: None)
        drop.cancelled = True
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(5.0, lambda: None)
        assert queue.peek_time() == 5.0


class TestEngine:
    def test_clock_advances_through_events(self):
        engine = Engine()
        times = []
        engine.at(1.0, lambda: times.append(engine.now))
        engine.at(2.5, lambda: times.append(engine.now))
        engine.run()
        assert times == [1.0, 2.5]
        assert engine.now == 2.5

    def test_after_is_relative(self):
        engine = Engine(start_time=10.0)
        fired = []
        engine.after(5.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [15.0]

    def test_events_can_schedule_events(self):
        engine = Engine()
        log = []

        def chain(n):
            log.append((engine.now, n))
            if n > 0:
                engine.after(1.0, chain, n - 1)

        engine.at(0.0, chain, 3)
        engine.run()
        assert log == [(0.0, 3), (1.0, 2), (2.0, 1), (3.0, 0)]

    def test_run_until_stops_midway(self):
        engine = Engine()
        fired = []
        engine.at(1.0, fired.append, "early")
        engine.at(10.0, fired.append, "late")
        engine.run(until=5.0)
        assert fired == ["early"]
        assert engine.now == 5.0
        engine.run()
        assert fired == ["early", "late"]

    def test_cancel(self):
        engine = Engine()
        fired = []
        event = engine.at(1.0, fired.append, "x")
        engine.cancel(event)
        engine.run()
        assert not fired

    def test_scheduling_in_past_rejected(self):
        engine = Engine()
        engine.at(5.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.at(1.0, lambda: None)
        with pytest.raises(ValueError):
            engine.after(-1.0, lambda: None)

    def test_runaway_guard(self):
        engine = Engine()

        def forever():
            engine.after(0.001, forever)

        engine.at(0.0, forever)
        with pytest.raises(RuntimeError):
            engine.run(max_events=1000)

    def test_executed_events_counted(self):
        engine = Engine()
        for i in range(5):
            engine.at(float(i), lambda: None)
        engine.run()
        assert engine.executed_events == 5

"""Tests for dispatch policies and bursty (MMPP) arrivals."""

import random

import pytest

from repro.core import ArrivalSchedule, BurstyArrivals, PoissonArrivals
from repro.sim import (
    SimConfig,
    compare_dispatch,
    paper_profile,
    simulate_load,
    simulate_random_dispatch,
)
from repro.stats import Exponential


class TestBurstyArrivals:
    def test_average_rate_preserved(self):
        process = BurstyArrivals(qps=1000.0, burstiness=8.0, burst_fraction=0.15)
        schedule = ArrivalSchedule.generate(process, 60_000, seed=1)
        assert schedule.observed_qps == pytest.approx(1000.0, rel=0.1)

    def test_regime_rates(self):
        process = BurstyArrivals(qps=1000.0, burstiness=10.0, burst_fraction=0.1)
        # f*B*c + (1-f)*c = qps
        recovered = (
            0.1 * process.burst_rate + 0.9 * process.calm_rate
        )
        assert recovered == pytest.approx(1000.0)
        assert process.burst_rate == pytest.approx(10 * process.calm_rate)

    def test_burstier_than_poisson(self):
        # Index of dispersion of counts: MMPP must exceed Poisson's ~1.
        def dispersion(process, seed=2):
            schedule = ArrivalSchedule.generate(process, 40_000, seed=seed)
            window = 0.05
            counts = {}
            for t in schedule:
                counts[int(t / window)] = counts.get(int(t / window), 0) + 1
            values = list(counts.values())
            mean = sum(values) / len(values)
            var = sum((v - mean) ** 2 for v in values) / len(values)
            return var / mean

        poisson = dispersion(PoissonArrivals(1000.0))
        bursty = dispersion(
            BurstyArrivals(qps=1000.0, burstiness=10.0, burst_fraction=0.1)
        )
        assert bursty > 3 * poisson

    def test_gaps_positive(self):
        process = BurstyArrivals(qps=500.0)
        rng = random.Random(0)
        assert all(process.next_gap(rng) > 0 for _ in range(1000))

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(qps=0.0)
        with pytest.raises(ValueError):
            BurstyArrivals(qps=10.0, burstiness=1.0)
        with pytest.raises(ValueError):
            BurstyArrivals(qps=10.0, burst_fraction=0.0)
        with pytest.raises(ValueError):
            BurstyArrivals(qps=10.0, regime_dwell=0.0)

    def test_bursty_load_inflates_tails_at_equal_rate(self):
        # The methodology point: same offered QPS, far worse tails.
        service = Exponential.from_mean(1e-3)
        qps = 600.0

        def run(process):
            # Reuse the simulator's machinery with a custom schedule.
            from repro.core.collector import StatsCollector
            from repro.sim import Engine, SimulatedServer, ServiceTimeModel
            from repro.sim.network_model import NETWORK_MODELS

            engine = Engine()
            collector = StatsCollector(warmup_requests=2000)
            server = SimulatedServer(
                engine, ServiceTimeModel(service),
                NETWORK_MODELS["integrated"], 1, collector, random.Random(1),
            )
            schedule = ArrivalSchedule.generate(process, 22_000, seed=4)
            for t in schedule:
                server.submit(t)
            engine.run()
            return collector.snapshot().summary("sojourn")

        poisson = run(PoissonArrivals(qps))
        bursty = run(
            BurstyArrivals(qps=qps, burstiness=6.0, burst_fraction=0.15)
        )
        assert bursty.p99 > 1.5 * poisson.p99


class TestDispatchPolicies:
    def test_shared_queue_beats_random_dispatch_on_tails(self):
        profile = paper_profile("masstree")
        config = SimConfig(
            qps=0.7 * 4 / profile.service.mean,
            n_threads=4,
            measure_requests=12_000,
        )
        results = compare_dispatch(profile, config)
        assert results["shared"].sojourn.p95 < 0.6 * results["random"].sojourn.p95
        assert results["shared"].sojourn.p99 < results["random"].sojourn.p99

    def test_equal_throughput_despite_latency_gap(self):
        profile = paper_profile("masstree")
        config = SimConfig(
            qps=0.6 * 4 / profile.service.mean,
            n_threads=4,
            measure_requests=8000,
        )
        results = compare_dispatch(profile, config)
        assert results["random"].utilization == pytest.approx(
            results["shared"].utilization, abs=0.05
        )

    def test_single_worker_designs_equivalent(self):
        # With one worker there is nothing to dispatch over: both
        # designs reduce to the same M/G/1 queue.
        profile = paper_profile("xapian")
        config = SimConfig(
            qps=0.5 / profile.service.mean, n_threads=1,
            measure_requests=10_000,
        )
        shared = simulate_load(profile, config)
        partitioned = simulate_random_dispatch(profile, config)
        assert partitioned.sojourn.mean == pytest.approx(
            shared.sojourn.mean, rel=0.15
        )

    def test_records_valid(self):
        profile = paper_profile("silo")
        result = simulate_random_dispatch(
            profile, SimConfig(qps=5000, n_threads=2, measure_requests=2000)
        )
        for record in result.stats.records:
            assert record.sojourn_time >= record.service_time >= 0

"""Tests for the simulator's multi-server topology."""

import pytest

from repro.core.resilience import ResilienceConfig
from repro.faults import FaultPlan
from repro.sim import SimConfig, simulate_app, simulate_dispatch
from repro.sim.calibration import paper_profile
from repro.sim.dispatch import compare_dispatch


def _sim(**overrides):
    params = dict(
        qps=9000, warmup_requests=200, measure_requests=2500, seed=17
    )
    params.update(overrides)
    return simulate_app("xapian", SimConfig(**params))


class TestSimTopology:
    @pytest.mark.parametrize(
        "balancer", ["round_robin", "random", "power_of_two", "jsq"]
    )
    def test_four_servers_complete_everything(self, balancer):
        result = _sim(n_servers=4, balancer=balancer)
        assert result.stats.count == 2500
        assert sum(result.routed_counts) == 2700
        assert result.alive_workers == (1, 1, 1, 1)

    def test_round_robin_splits_exactly(self):
        result = _sim(n_servers=4, measure_requests=2200)
        assert result.routed_counts == (600, 600, 600, 600)

    def test_per_server_stats_partition_aggregate(self):
        result = _sim(n_servers=4, balancer="power_of_two")
        counts = [
            result.stats.server_count(server_id)
            for server_id in result.stats.server_ids
        ]
        assert sum(counts) == result.stats.count
        merged = sorted(
            sample
            for server_id in result.stats.server_ids
            for sample in result.stats.server_samples(server_id, "sojourn")
        )
        assert merged == sorted(result.stats.samples("sojourn"))

    def test_topology_runs_are_deterministic(self):
        a = _sim(n_servers=4, balancer="jsq")
        b = _sim(n_servers=4, balancer="jsq")
        assert a.sojourn.p99 == b.sojourn.p99
        assert a.routed_counts == b.routed_counts
        assert a.virtual_time == b.virtual_time

    def test_single_server_unaffected_by_topology_fields(self):
        """n_servers=1 must reproduce the pre-topology simulator."""
        explicit = _sim(n_servers=1, n_clients=2, balancer="jsq")
        default = _sim()
        assert explicit.sojourn.p99 == default.sojourn.p99
        assert explicit.virtual_time == default.virtual_time

    def test_jsq_beats_round_robin_at_high_load(self):
        """Depth-aware routing dominates blind routing in the tail."""
        rr = _sim(n_servers=4, balancer="round_robin", qps=11000)
        jsq = _sim(n_servers=4, balancer="jsq", qps=11000)
        assert jsq.sojourn.p99 <= rr.sojourn.p99

    def test_describe_mentions_topology(self):
        result = _sim(n_servers=2, measure_requests=500)
        assert "topology: 2 servers" in result.describe()


class TestSimTopologyFaults:
    def test_faults_scoped_to_one_server(self):
        plan = FaultPlan(worker_crash_rate=1.0, server_ids=(1,))
        result = _sim(
            n_servers=2,
            n_threads=2,
            qps=4000,
            measure_requests=800,
            faults=plan,
            resilience=ResilienceConfig(deadline=1.0),
        )
        assert result.alive_workers[0] == 2
        assert result.alive_workers[1] == 0

    def test_hedging_with_replicas_succeeds(self):
        result = _sim(
            n_servers=2,
            qps=4000,
            measure_requests=800,
            resilience=ResilienceConfig(
                deadline=1.0, hedge_after=0.005, max_hedges=1
            ),
        )
        assert result.outcomes.get("succeeded", 0) == 1000


class TestDispatchPolicies:
    def test_depth_aware_dispatch_beats_random(self):
        profile = paper_profile("xapian")
        config = SimConfig(
            qps=2500,
            n_threads=4,
            warmup_requests=200,
            measure_requests=2000,
            seed=9,
        )
        results = compare_dispatch(profile, config, extra_policies=("jsq",))
        assert results["jsq"].sojourn.p99 <= results["random"].sojourn.p99
        # The shared queue remains the best design of the three.
        assert results["shared"].sojourn.p99 <= results["jsq"].sojourn.p99

    def test_dispatch_counts_cover_all_workers(self):
        profile = paper_profile("xapian")
        config = SimConfig(
            qps=2000,
            n_threads=4,
            warmup_requests=100,
            measure_requests=1000,
            seed=4,
        )
        result = simulate_dispatch(profile, config, policy="round_robin")
        assert sum(result.routed_counts) == config.total_requests
        assert result.routed_counts == (275, 275, 275, 275)

"""Tests for contention, network, and service-time models."""

import random

import pytest

from repro.sim import (
    NETWORK_MODELS,
    NO_CONTENTION,
    ContentionModel,
    NetworkModel,
    ServiceTimeModel,
    network_model_for,
    profile_application,
)
from repro.stats import Deterministic, Empirical, Exponential


class TestContentionModel:
    def test_no_contention_is_identity(self):
        for k in (1, 2, 4, 8):
            assert NO_CONTENTION.factor(k) == 1.0

    def test_single_thread_never_dilated(self):
        model = ContentionModel(mem_alpha=0.5, sync_alpha=0.5)
        assert model.factor(1) == 1.0

    def test_factors_compose(self):
        model = ContentionModel(mem_alpha=0.1, sync_alpha=0.2)
        assert model.factor(3) == pytest.approx(
            model.mem_factor(3) * model.sync_factor(3)
        )

    def test_ideal_memory_removes_mem_term(self):
        model = ContentionModel(mem_alpha=0.3, sync_alpha=0.1)
        assert model.factor(4, ideal_memory=True) == pytest.approx(
            model.sync_factor(4)
        )

    def test_superlinear_memory_exponent(self):
        # moses's shape: negligible at 2 threads, severe at 4.
        model = ContentionModel(mem_alpha=0.1, mem_exponent=2.0)
        assert model.mem_factor(2) == pytest.approx(1.1)
        assert model.mem_factor(4) == pytest.approx(1.9)

    def test_monotone_in_threads(self):
        model = ContentionModel(mem_alpha=0.1, sync_alpha=0.05)
        factors = [model.factor(k) for k in (1, 2, 4, 8)]
        assert factors == sorted(factors)

    def test_validation(self):
        with pytest.raises(ValueError):
            ContentionModel(mem_alpha=-0.1)
        with pytest.raises(ValueError):
            ContentionModel(mem_exponent=0.0)
        with pytest.raises(ValueError):
            NO_CONTENTION.factor(0)


class TestNetworkModel:
    def test_three_configurations_exist(self):
        assert set(NETWORK_MODELS) == {"integrated", "loopback", "networked"}

    def test_integrated_is_free(self):
        model = network_model_for("integrated")
        assert model.wire_latency_each_way == 0.0
        assert model.server_occupancy == 0.0

    def test_cost_ordering(self):
        integrated = network_model_for("integrated")
        loopback = network_model_for("loopback")
        networked = network_model_for("networked")
        assert (
            integrated.round_trip_wire
            < loopback.round_trip_wire
            < networked.round_trip_wire
        )
        assert integrated.server_occupancy < loopback.server_occupancy

    def test_paper_magnitudes(self):
        # Sec. VI: tuned network RTT ~50 us; loopback ~20 us per end.
        networked = network_model_for("networked")
        assert 30e-6 <= networked.round_trip_wire <= 150e-6
        loopback = network_model_for("loopback")
        assert 10e-6 <= loopback.round_trip_wire <= 80e-6

    def test_unknown_configuration(self):
        with pytest.raises(ValueError):
            network_model_for("quantum")

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel("bad", -1.0, 0.0)


class TestServiceTimeModel:
    def test_scale_and_added_compose(self):
        model = ServiceTimeModel(Deterministic(1e-3), scale=2.0, added=1e-4)
        rng = random.Random(0)
        assert model.sample(rng) == pytest.approx(2.1e-3)
        assert model.mean == pytest.approx(2.1e-3)

    def test_variance_scales_quadratically(self):
        base = Exponential.from_mean(1.0)
        model = ServiceTimeModel(base, scale=3.0)
        assert model.variance == pytest.approx(9.0 * base.variance)

    def test_saturation_qps(self):
        model = ServiceTimeModel(Deterministic(1e-3))
        assert model.saturation_qps() == pytest.approx(1000.0)
        assert model.saturation_qps(4) == pytest.approx(4000.0)

    def test_with_dilation(self):
        model = ServiceTimeModel(Deterministic(1e-3), scale=2.0, added=1e-5)
        dilated = model.with_dilation(scale=1.5, added=2e-5)
        assert dilated.scale == pytest.approx(3.0)
        assert dilated.added == pytest.approx(3e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceTimeModel(Deterministic(1.0), scale=0.0)
        with pytest.raises(ValueError):
            ServiceTimeModel(Deterministic(1.0), added=-1.0)
        with pytest.raises(ValueError):
            ServiceTimeModel(Deterministic(1.0)).saturation_qps(0)


class TestProfileApplication:
    class BusyApp:
        def process(self, payload):
            return sum(i for i in range(payload))

        def make_client(self, seed=0):
            class _Client:
                def next_request(self):
                    return 300

            return _Client()

    def test_builds_empirical_distribution(self):
        empirical = profile_application(self.BusyApp(), n_requests=50)
        assert isinstance(empirical, Empirical)
        assert len(empirical.values) == 50
        assert empirical.mean > 0

    def test_virtual_clock_supported(self):
        from repro.core import VirtualClock

        # With a virtual clock that nobody advances, all samples are 0.
        empirical = profile_application(
            self.BusyApp(), n_requests=5, clock=VirtualClock()
        )
        assert empirical.mean == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            profile_application(self.BusyApp(), n_requests=0)

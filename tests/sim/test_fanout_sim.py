"""Simulator fan-out: K=1 bit-identity, determinism, tail prediction."""

import pytest

from repro.core import FanoutConfig
from repro.core.config import ObservabilityConfig
from repro.sim import SimConfig, paper_profile, simulate_app, simulate_load
from repro.stats import quantile


def _fingerprint(result):
    return (
        tuple(round(x, 12) for x in result.stats.samples()),
        dict(result.outcomes),
        tuple(result.routed_counts),
    )


def _config(k, **kwargs):
    return SimConfig(
        qps=600.0,
        n_threads=1,
        configuration="integrated",
        n_servers=k,
        warmup_requests=50,
        measure_requests=1500,
        seed=5,
        fanout=FanoutConfig(enabled=True, shards=k),
        **kwargs,
    )


class TestSimFanoutValidation:
    def test_requires_matching_servers(self):
        with pytest.raises(ValueError, match="n_servers == fanout.shards"):
            SimConfig(
                n_servers=2, fanout=FanoutConfig(enabled=True, shards=4)
            )


class TestK1BitIdentity:
    def test_k1_sharded_equals_unsharded(self):
        sharded = simulate_app("xapian", _config(1))
        plain = simulate_app(
            "xapian",
            SimConfig(
                qps=600.0,
                n_threads=1,
                configuration="integrated",
                n_servers=1,
                warmup_requests=50,
                measure_requests=1500,
                seed=5,
            ),
        )
        assert _fingerprint(sharded) == _fingerprint(plain)

    def test_k1_fanout_stats_match_e2e(self):
        result = simulate_app("xapian", _config(1))
        assert result.fanout.leaf_samples() == pytest.approx(
            list(result.stats.samples())
        )
        assert result.fanout.critical_counts == [1500]


class TestSimFanout:
    @pytest.fixture(scope="class")
    def result(self):
        return simulate_app("vsearch", _config(4))

    def test_deterministic_per_seed(self, result):
        again = simulate_app("vsearch", _config(4))
        assert _fingerprint(result) == _fingerprint(again)
        assert result.fanout.critical_counts == again.fanout.critical_counts

    def test_every_gather_completes(self, result):
        assert result.fanout.completed == 1550
        assert result.fanout.failed == 0
        assert result.stats.count == 1500
        for shard in range(4):
            assert len(result.fanout.shard_samples[shard]) == 1500

    def test_scatter_amplification(self, result):
        assert result.outcomes["offered"] == 1550
        assert result.outcomes["attempts"] == 6200

    def test_e2e_p99_at_least_any_shard_p99(self, result):
        e2e = quantile(result.stats.samples(), 0.99)
        for shard in range(4):
            assert e2e >= result.fanout.shard_p99(shard) - 1e-12

    def test_prediction_matches_measured(self, result):
        # Moderate utilization: the iid order-statistic prediction
        # should land within ~12% of the measured e2e p99 (the shards
        # share the arrival stream, so exactness is not expected).
        measured = quantile(result.stats.samples(), 0.99)
        predicted = result.fanout.predicted_quantile(0.99)
        assert measured == pytest.approx(predicted, rel=0.12)

    def test_e2e_tail_climbs_with_fanout(self):
        p99 = {}
        for k in (1, 2, 8):
            r = simulate_app("vsearch", _config(k))
            p99[k] = quantile(r.stats.samples(), 0.99)
        assert p99[1] < p99[2] < p99[8]

    def test_trace_events(self):
        result = simulate_app(
            "vsearch",
            _config(
                2,
                observability=ObservabilityConfig(tracing=True,
                                                  trace_capacity=50_000),
            ),
        )
        kinds = [e.kind for e in result.obs.events]
        assert kinds.count("fanout_send") == 3100
        assert kinds.count("fanout_gather") == 1550

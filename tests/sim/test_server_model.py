"""Tests for the virtual-time server model."""

import random

import pytest

from repro.core import StatsCollector
from repro.sim import Engine, SimulatedServer, ServiceTimeModel
from repro.sim.network_model import NETWORK_MODELS
from repro.stats import Deterministic, Exponential


def run_server(service, arrivals, n_threads=1, network="integrated"):
    engine = Engine()
    collector = StatsCollector()
    server = SimulatedServer(
        engine,
        ServiceTimeModel(service),
        NETWORK_MODELS[network],
        n_threads,
        collector,
        random.Random(0),
    )
    for t in arrivals:
        server.submit(t)
    engine.run()
    return server, collector.snapshot(), engine


class TestSingleServer:
    def test_no_queueing_when_spaced_out(self):
        # Deterministic 1 ms service, arrivals 10 ms apart: zero waits.
        server, stats, _ = run_server(
            Deterministic(0.001), [i * 0.01 for i in range(10)]
        )
        assert stats.count == 10
        assert all(q == pytest.approx(0.0) for q in stats.samples("queue"))
        assert all(
            s == pytest.approx(0.001) for s in stats.samples("service")
        )

    def test_back_to_back_arrivals_queue_fifo(self):
        # All arrive at t=0; waits are 0, S, 2S, ... (FIFO).
        server, stats, _ = run_server(Deterministic(0.001), [0.0] * 5)
        waits = sorted(stats.samples("queue"))
        assert waits == pytest.approx([0.0, 0.001, 0.002, 0.003, 0.004])

    def test_peak_queue_depth(self):
        server, _, _ = run_server(Deterministic(0.001), [0.0] * 5)
        assert server.peak_queue_depth == 4  # one in service

    def test_utilization(self):
        server, _, engine = run_server(
            Deterministic(0.001), [i * 0.002 for i in range(100)]
        )
        # 1 ms busy every 2 ms => ~50% utilization.
        assert server.utilization(engine.now) == pytest.approx(0.5, rel=0.05)


class TestMultiServer:
    def test_parallel_service(self):
        # 4 simultaneous arrivals, 2 workers: waits 0,0,S,S.
        server, stats, _ = run_server(
            Deterministic(0.001), [0.0] * 4, n_threads=2
        )
        waits = sorted(stats.samples("queue"))
        assert waits == pytest.approx([0.0, 0.0, 0.001, 0.001])

    def test_more_threads_less_waiting(self):
        arrivals = [i * 0.0005 for i in range(200)]
        _, one, _ = run_server(Deterministic(0.001), arrivals, n_threads=1)
        _, four, _ = run_server(Deterministic(0.001), arrivals, n_threads=4)
        assert (
            sum(four.samples("queue")) < sum(one.samples("queue"))
        )


class TestNetworkEffects:
    def test_wire_latency_added_to_sojourn_not_service(self):
        _, integrated, _ = run_server(Deterministic(0.001), [0.0])
        _, networked, _ = run_server(
            Deterministic(0.001), [0.0], network="networked"
        )
        net = NETWORK_MODELS["networked"]
        delta = (
            networked.samples("sojourn")[0] - integrated.samples("sojourn")[0]
        )
        assert delta == pytest.approx(net.round_trip_wire)
        assert networked.samples("service")[0] == pytest.approx(0.001)

    def test_records_have_valid_chains(self):
        _, stats, _ = run_server(
            Exponential.from_mean(0.001),
            [i * 0.0015 for i in range(50)],
            network="networked",
        )
        for record in stats.records:
            assert record.sojourn_time >= record.service_time
            assert record.queue_time >= 0

    def test_thread_validation(self):
        with pytest.raises(ValueError):
            run_server(Deterministic(0.001), [0.0], n_threads=0)

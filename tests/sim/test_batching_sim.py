"""Tests for dynamic batching in the virtual-time simulator."""

import pytest

from repro.batching import BatchingConfig
from repro.sim import AppProfile, SimConfig, simulate_load
from repro.stats import Exponential, LogNormal


def profile():
    return AppProfile(name="batch-sim", service=LogNormal(mean=1e-3, sigma=0.5))


def config(seed=0, **batch_kwargs):
    batching = (
        BatchingConfig(enabled=True, **batch_kwargs)
        if batch_kwargs
        else BatchingConfig()
    )
    return SimConfig(
        qps=1400,  # past single-worker capacity: batching has work to do
        n_threads=1,
        warmup_requests=100,
        measure_requests=3000,
        seed=seed,
        batching=batching,
    )


class TestSimBatching:
    def test_deterministic_given_seed(self):
        kwargs = dict(max_batch_size=8, max_batch_delay=0.004,
                      sim_marginal_cost=0.3)
        a = simulate_load(profile(), config(**kwargs))
        b = simulate_load(profile(), config(**kwargs))
        assert a.stats.samples("sojourn") == b.stats.samples("sojourn")
        assert a.stats.batch_occupancy == b.stats.batch_occupancy
        assert a.virtual_time == b.virtual_time

    def test_occupancy_bounded_by_max_batch_size(self):
        result = simulate_load(
            profile(),
            config(max_batch_size=8, max_batch_delay=0.004,
                   sim_marginal_cost=0.3),
        )
        occupancy = result.stats.batch_occupancy
        assert occupancy
        assert max(occupancy) <= 8
        assert sum(occupancy.values()) == result.stats.count

    def test_batching_amortizes_overload(self):
        # At 1.4x single-worker capacity the unbatched queue diverges;
        # with marginal cost 0.3 an 8-batch costs ~3.1 draws for 8
        # requests, pulling the server well under saturation.
        unbatched = simulate_load(profile(), config())
        batched = simulate_load(
            profile(),
            config(max_batch_size=8, max_batch_delay=0.004,
                   sim_marginal_cost=0.3),
        )
        assert batched.stats.mean_batch_size > 2.0
        assert batched.sojourn.p99 < unbatched.sojourn.p99 / 5
        assert batched.utilization < unbatched.utilization

    def test_batch_size_one_reproduces_unbatched_run(self):
        # A 1-batch with zero delay is the unbatched discipline: same
        # RNG draw order, same dispatch instants — bit-identical
        # results, which is the "structurally zero disabled cost"
        # property one level up from off.
        service = Exponential.from_mean(1e-3)
        prof = AppProfile(name="eq", service=service)
        base = SimConfig(
            qps=800, warmup_requests=100, measure_requests=3000, seed=5
        )
        plain = simulate_load(prof, base)
        degenerate = simulate_load(
            prof,
            SimConfig(
                qps=800, warmup_requests=100, measure_requests=3000, seed=5,
                batching=BatchingConfig(
                    enabled=True, max_batch_size=1, max_batch_delay=0.0
                ),
            ),
        )
        assert plain.stats.samples("sojourn") == degenerate.stats.samples(
            "sojourn"
        )
        assert plain.virtual_time == degenerate.virtual_time

    def test_marginal_cost_one_is_serial_service(self):
        # With marginal cost 1.0 a batch costs the sum of its members'
        # draws — no amortization, so batching cannot beat saturation.
        result = simulate_load(
            profile(),
            config(max_batch_size=8, max_batch_delay=0.004,
                   sim_marginal_cost=1.0),
        )
        assert result.utilization == pytest.approx(1.0, abs=0.02)

    def test_trace_events_emitted(self):
        from repro.core.config import ObservabilityConfig

        result = simulate_load(
            profile(),
            SimConfig(
                qps=1400, n_threads=1, warmup_requests=0,
                measure_requests=500, seed=1,
                batching=BatchingConfig(
                    enabled=True, max_batch_size=8, max_batch_delay=0.004
                ),
                observability=ObservabilityConfig(tracing=True),
            ),
        )
        events = result.obs.events
        kinds = {e.kind for e in events}
        assert {"batch_form", "batch_start", "batch_end"} <= kinds
        forms = [e for e in events if e.kind == "batch_form"]
        starts = [e for e in events if e.kind == "batch_start"]
        ends = [e for e in events if e.kind == "batch_end"]
        # One form event per member, each naming its request and batch.
        assert len(forms) == 500
        assert all(e.request_id is not None for e in forms)
        assert len(starts) == len(ends)
        # Every member's batch sequence number matches a started batch.
        assert {e.value for e in forms} == {e.value for e in starts}

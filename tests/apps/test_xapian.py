"""Tests for the xapian search-engine application."""

import pytest

from repro.apps.xapian import (
    Document,
    InvertedIndex,
    SyntheticCorpus,
    XapianApp,
    tokenize,
)


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello WORLD") == ["hello", "world"]

    def test_drops_stopwords(self):
        assert tokenize("the cat and the hat") == ["cat", "hat"]

    def test_strips_plural_suffixes(self):
        assert tokenize("cats running") == ["cat", "runn"]

    def test_keeps_short_words_unstripped(self):
        assert tokenize("bus") == ["bus"]

    def test_numbers_kept(self):
        assert tokenize("tpc 99") == ["tpc", "99"]

    def test_stopwords_can_be_kept(self):
        assert "the" in tokenize("the cat", drop_stopwords=False)


class TestInvertedIndex:
    @pytest.fixture()
    def index(self):
        docs = [
            Document(0, "apple pie", "apple pie with fresh apple slices"),
            Document(1, "banana bread", "banana bread recipe banana banana"),
            Document(2, "fruit salad", "apple banana cherry fruit salad"),
        ]
        idx = InvertedIndex()
        idx.build(docs)
        return idx

    def test_statistics(self, index):
        assert index.n_docs == 3
        assert index.doc_frequency("apple") == 2
        assert index.doc_frequency("banana") == 2
        assert index.doc_frequency("cherry") == 1
        assert index.doc_frequency("missing") == 0

    def test_postings_sorted_with_tf(self, index):
        postings = index.postings("apple")
        assert [doc for doc, _ in postings] == [0, 2]
        assert dict(postings)[0] == 2  # "apple" twice in doc 0

    def test_search_ranks_by_relevance(self, index):
        results = index.search("banana")
        assert results[0].doc_id == 1  # highest tf
        assert {r.doc_id for r in results} == {1, 2}

    def test_multi_term_disjunction(self, index):
        results = index.search("apple banana")
        assert {r.doc_id for r in results} == {0, 1, 2}
        # Doc 2 matches both terms; it should not rank below a doc
        # that matches only one term with equal tf.
        scores = {r.doc_id: r.score for r in results}
        assert scores[2] > min(scores[0], scores[1]) or len(scores) == 3

    def test_unknown_terms_empty(self, index):
        assert index.search("zzz qqq") == []

    def test_empty_query(self, index):
        assert index.search("") == []
        assert index.search("the and of") == []  # all stopwords

    def test_top_k_limits(self, index):
        assert len(index.search("apple banana", top_k=1)) == 1

    def test_idf_decreases_with_frequency(self, index):
        assert index.idf("cherry") > index.idf("apple")

    def test_duplicate_doc_rejected(self, index):
        with pytest.raises(ValueError):
            index.add_document(Document(0, "dup", "dup"))

    def test_scores_positive_and_sorted(self, index):
        results = index.search("apple banana cherry")
        scores = [r.score for r in results]
        assert all(s > 0 for s in scores)
        assert scores == sorted(scores, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            InvertedIndex(k1=-1.0)
        with pytest.raises(ValueError):
            InvertedIndex(b=1.5)


class TestSyntheticCorpus:
    def test_deterministic(self):
        a = SyntheticCorpus(n_docs=20, vocab_size=100, seed=1).documents()
        b = SyntheticCorpus(n_docs=20, vocab_size=100, seed=1).documents()
        assert [d.text for d in a] == [d.text for d in b]

    def test_doc_count_and_vocab(self):
        corpus = SyntheticCorpus(n_docs=30, vocab_size=200, seed=2)
        docs = corpus.documents()
        assert len(docs) == 30
        assert len(corpus.vocabulary) == 200

    def test_zipfian_term_usage(self):
        corpus = SyntheticCorpus(n_docs=100, vocab_size=500, seed=3)
        text = " ".join(d.text for d in corpus.documents())
        words = text.split()
        rank0 = words.count(corpus.vocabulary[0])
        rank100 = words.count(corpus.vocabulary[100])
        assert rank0 > rank100

    def test_variable_lengths(self):
        corpus = SyntheticCorpus(n_docs=100, vocab_size=100, seed=4)
        lengths = {len(d.text.split()) for d in corpus.documents()}
        assert len(lengths) > 20

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticCorpus(n_docs=0)


class TestXapianApp:
    @pytest.fixture(scope="class")
    def app(self):
        app = XapianApp(n_docs=200, vocab_size=500, mean_doc_len=60)
        app.setup()
        return app

    def test_process_returns_ranked_results(self, app):
        client = app.make_client(seed=0)
        query = client.next_request()
        results = app.process(query)
        assert isinstance(results, list)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_popular_queries_have_hits(self, app):
        # Zipfian clients query popular terms, which must be indexed.
        client = app.make_client(seed=1)
        hits = sum(1 for _ in range(50) if app.process(client.next_request()))
        assert hits > 35

    def test_requires_setup(self):
        with pytest.raises(RuntimeError):
            XapianApp(n_docs=10).process("query")

    def test_client_streams_differ_by_seed(self, app):
        a = app.make_client(seed=1)
        b = app.make_client(seed=2)
        assert [a.next_request() for _ in range(5)] != [
            b.next_request() for _ in range(5)
        ]

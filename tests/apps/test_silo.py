"""Tests for the silo OCC engine and its TPC-C workload."""

import threading

import pytest

from repro.apps.silo import (
    Database,
    SiloApp,
    TransactionAborted,
)
from repro.workloads import TpccScale, TpccTransaction, TpccWorkload


class TestOccBasics:
    def test_insert_read_commit(self):
        db = Database()
        table = db.create_table("t")
        txn = db.transaction()
        txn.insert(table, 1, "one")
        assert txn.read(table, 1) == "one"  # read-your-writes
        txn.commit()
        txn2 = db.transaction()
        assert txn2.read(table, 1) == "one"

    def test_uncommitted_writes_invisible(self):
        db = Database()
        table = db.create_table("t")
        db.run(lambda t: t.insert(table, 1, "v0"))
        txn = db.transaction()
        txn.write(table, 1, "v1")
        other = db.transaction()
        assert other.read(table, 1) == "v0"

    def test_write_then_read_buffered(self):
        db = Database()
        table = db.create_table("t")
        db.run(lambda t: t.insert(table, 1, "v0"))
        txn = db.transaction()
        txn.write(table, 1, "v1")
        assert txn.read(table, 1) == "v1"

    def test_delete_commits(self):
        db = Database()
        table = db.create_table("t")
        db.run(lambda t: t.insert(table, 1, "x"))
        db.run(lambda t: t.delete(table, 1))
        assert db.run(lambda t: t.read(table, 1)) is None

    def test_reinsert_after_delete_visible_to_scans(self):
        # Regression (found by hypothesis): re-inserting over a delete
        # tombstone must restore the key in the partition's sorted key
        # list, or scans silently miss it.
        db = Database()
        table = db.create_table("t", lambda key: 0)
        db.run(lambda t: t.insert(table, 0, "first"))
        db.run(lambda t: t.delete(table, 0))
        db.run(lambda t: t.insert(table, 0, "second"))
        assert db.run(lambda t: t.read(table, 0)) == "second"
        assert db.run(lambda t: t.scan(table, 0, 0, 100)) == [(0, "second")]

    def test_read_set_validation_aborts_stale_reader(self):
        db = Database()
        table = db.create_table("t")
        db.run(lambda t: t.insert(table, 1, 0))
        reader = db.transaction()
        assert reader.read(table, 1) == 0
        reader.write(table, 1, 100)  # will validate its read at commit
        # A concurrent committer changes the record first.
        db.run(lambda t: t.write(table, 1, 7))
        with pytest.raises(TransactionAborted):
            reader.commit()
        # The failed transaction's write must not have applied.
        assert db.run(lambda t: t.read(table, 1)) == 7

    def test_blind_write_does_not_validate_reads_it_never_made(self):
        db = Database()
        table = db.create_table("t")
        db.run(lambda t: t.insert(table, 1, 0))
        writer = db.transaction()
        writer.write(table, 1, 42)  # blind write, no read
        db.run(lambda t: t.write(table, 1, 7))
        writer.commit()  # last-writer-wins is fine without a read dep
        assert db.run(lambda t: t.read(table, 1)) == 42

    def test_phantom_protection_on_scans(self):
        db = Database()
        table = db.create_table("t", lambda key: 0)
        db.run(lambda t: t.insert(table, 1, "a"))
        scanner = db.transaction()
        assert len(scanner.scan(table, 0, 0, 100)) == 1
        scanner.write(table, 1, "a2")
        # Concurrent insert into the scanned partition => phantom.
        db.run(lambda t: t.insert(table, 2, "b"))
        with pytest.raises(TransactionAborted):
            scanner.commit()

    def test_scan_sees_own_inserts(self):
        db = Database()
        table = db.create_table("t", lambda key: 0)
        txn = db.transaction()
        txn.insert(table, 5, "mine")
        results = txn.scan(table, 0, 0, 10)
        assert (5, "mine") in results

    def test_scan_respects_partitions(self):
        db = Database()
        table = db.create_table("t", lambda key: key[0])
        db.run(lambda t: t.insert(table, (1, 1), "a"))
        db.run(lambda t: t.insert(table, (2, 1), "b"))
        txn = db.transaction()
        assert len(txn.scan(table, 1, (1, 0), (1, 99))) == 1

    def test_insert_duplicate_key_aborts(self):
        db = Database()
        table = db.create_table("t")
        db.run(lambda t: t.insert(table, 1, "x"))
        txn = db.transaction()
        txn.insert(table, 1, "dup")
        with pytest.raises(KeyError):
            txn.commit()

    def test_tid_monotone_across_commits(self):
        db = Database()
        table = db.create_table("t")
        db.run(lambda t: t.insert(table, 1, 0))
        tids = []
        for i in range(5):
            db.run(lambda t: t.write(table, 1, i))
            tids.append(table.get_record(1).tid)
        assert tids == sorted(tids)
        assert len(set(tids)) == 5

    def test_epoch_advances(self):
        db = Database(epoch_commit_interval=10)
        table = db.create_table("t")
        start = db.epoch
        for i in range(25):
            db.run(lambda t, i=i: t.insert(table, i, i))
        assert db.epoch >= start + 2

    def test_run_retries_and_gives_up(self):
        db = Database()

        def always_aborts(txn):
            raise TransactionAborted("no luck")

        with pytest.raises(TransactionAborted):
            db.run(always_aborts, max_retries=3)
        assert db.stats["aborts"] == 3

    def test_last_key(self):
        db = Database()
        table = db.create_table("t", lambda key: key[0])
        for o in (3, 1, 7):
            db.run(lambda t, o=o: t.insert(table, (1, o), o))
        assert table.last_key(1) == (1, 7)
        assert table.last_key(1, below=(1, 7)) == (1, 3)
        assert table.last_key(2) is None


class TestOccConcurrency:
    def test_concurrent_counter_increments_are_serializable(self):
        db = Database()
        table = db.create_table("counter")
        table.load("c", 0)
        n_threads, n_incr = 4, 50

        def worker():
            for _ in range(n_incr):
                def body(txn):
                    value = txn.read(table, "c")
                    txn.write(table, "c", value + 1)
                db.run(body, max_retries=10_000)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        final = db.run(lambda t: t.read(table, "c"))
        # OCC must never lose an increment: this is the fundamental
        # serializability guarantee.
        assert final == n_threads * n_incr

    def test_disjoint_writes_do_not_conflict(self):
        db = Database()
        table = db.create_table("t")
        for i in range(4):
            table.load(i, 0)
        errors = []

        def worker(i):
            try:
                for _ in range(100):
                    def body(txn, i=i):
                        txn.write(table, i, txn.read(table, i) + 1)
                    db.run(body)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert not errors
        assert [db.run(lambda t, i=i: t.read(table, i)) for i in range(4)] == [100] * 4


class TestSiloTpcc:
    @pytest.fixture(scope="class")
    def app(self):
        app = SiloApp(scale=TpccScale.small())
        app.setup()
        return app

    def test_new_order_advances_district_counter(self, app):
        workload = TpccWorkload(scale=TpccScale.small(), seed=1)
        txn = workload.new_order()
        result = app.process(txn)
        assert result["order_id"] >= 1
        assert result["total"] > 0

    def test_payment_by_id_and_by_name(self, app):
        by_id = TpccTransaction(
            "payment", {"w_id": 1, "d_id": 1, "c_id": 1, "amount": 10.0}
        )
        result = app.process(by_id)
        assert result["customer_found"]
        from repro.workloads import make_last_name

        by_name = TpccTransaction(
            "payment",
            {"w_id": 1, "d_id": 1, "c_last": make_last_name(0), "amount": 5.0},
        )
        result = app.process(by_name)
        assert result["customer_found"]

    def test_order_status_finds_last_order(self, app):
        status = app.process(
            TpccTransaction("order_status", {"w_id": 1, "d_id": 1, "c_id": 1})
        )
        assert status["order_id"] is not None
        assert len(status["lines"]) >= 5

    def test_delivery_drains_new_orders(self, app):
        result = app.process(
            TpccTransaction("delivery", {"w_id": 1, "carrier_id": 3})
        )
        # Fresh database has undelivered initial orders in every district.
        assert len(result["delivered_orders"]) >= 1

    def test_stock_level_counts(self, app):
        result = app.process(
            TpccTransaction(
                "stock_level", {"w_id": 1, "d_id": 1, "threshold": 100}
            )
        )
        assert result["low_stock"] >= 0

    def test_mixed_workload_runs_clean(self, app):
        workload = TpccWorkload(scale=TpccScale.small(), seed=9)
        for _ in range(200):
            app.process(workload.next_transaction())
        assert app.database.stats["commits"] > 200

    def test_concurrent_tpcc_no_errors(self, app):
        errors = []

        def worker(seed):
            workload = TpccWorkload(scale=TpccScale.small(), seed=seed)
            try:
                for _ in range(60):
                    app.process(workload.next_transaction())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120.0)
        assert not errors

    def test_requires_setup(self):
        with pytest.raises(RuntimeError):
            SiloApp().process(TpccTransaction("delivery", {"w_id": 1, "carrier_id": 1}))

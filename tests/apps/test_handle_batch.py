"""Batched service paths must match the per-request paths exactly."""

import numpy as np
import pytest

from repro.apps.base import Application
from repro.apps.img_dnn import ImgDnnApp
from repro.apps.masstree import MasstreeApp
from repro.apps.xapian import XapianApp
from repro.workloads.ycsb import YcsbOperation


class TestDefaultHandleBatch:
    def test_falls_back_to_process_loop(self):
        class Doubler(Application):
            name = "doubler"

            def setup(self):
                pass

            def process(self, payload):
                return payload * 2

            def make_client(self, seed=0):
                raise NotImplementedError

        app = Doubler()
        assert app.handle_batch([1, 2, 3]) == [2, 4, 6]
        assert app.handle_batch([]) == []


@pytest.fixture(scope="module")
def img_dnn():
    app = ImgDnnApp(train_samples=200, epochs=3, seed=0)
    app.setup()
    return app


class TestImgDnnBatch:
    def test_matches_per_request_predictions(self, img_dnn):
        client = img_dnn.make_client(seed=1)
        payloads = [client.next_request() for _ in range(16)]
        singles = [img_dnn.process(p) for p in payloads]
        batched = img_dnn.handle_batch(payloads)
        assert batched == singles
        assert all(isinstance(label, int) for label in batched)

    def test_singleton_and_empty_batches(self, img_dnn):
        payload = img_dnn.make_client(seed=2).next_request()
        assert img_dnn.handle_batch([payload]) == [img_dnn.process(payload)]
        assert img_dnn.handle_batch([]) == []


class TestMasstreeBatch:
    def make_apps(self):
        a = MasstreeApp(n_records=300, seed=0)
        b = MasstreeApp(n_records=300, seed=0)
        a.setup()
        b.setup()
        return a, b

    def test_matches_sequential_semantics(self):
        batched_app, loop_app = self.make_apps()
        client = batched_app.make_client(seed=3)
        ops = [client.next_request() for _ in range(64)]
        batched = batched_app.handle_batch(ops)
        singles = [loop_app.process(op) for op in ops]
        assert batched == singles

    def test_put_then_get_within_one_batch(self):
        batched_app, loop_app = self.make_apps()
        key = "user0000000000000042"
        ops = [
            YcsbOperation("get", key),
            YcsbOperation("put", key, b"fresh-value"),
            YcsbOperation("get", key),  # must see the in-batch write
        ]
        batched = batched_app.handle_batch(list(ops))
        singles = [loop_app.process(op) for op in ops]
        assert batched == singles
        assert batched[2] == b"fresh-value"


class TestXapianBatch:
    @pytest.fixture(scope="class")
    def xapian(self):
        app = XapianApp(n_docs=200, vocab_size=500, mean_doc_len=60, seed=0)
        app.setup()
        return app

    def test_matches_per_request_search(self, xapian):
        client = xapian.make_client(seed=4)
        queries = [client.next_request() for _ in range(20)]
        batched = xapian.handle_batch(queries)
        singles = [xapian.process(q) for q in queries]
        assert batched == singles

    def test_duplicate_queries_get_independent_results(self, xapian):
        client = xapian.make_client(seed=5)
        query = client.next_request()
        first, second = xapian.handle_batch([query, query])
        assert first == second
        assert first is not second  # memo shares work, not the list


class TestBatchIsVectorized:
    def test_img_dnn_uses_one_stacked_forward_pass(self, img_dnn):
        calls = []
        original = img_dnn.model.predict

        def spy(x):
            calls.append(np.asarray(x).shape)
            return original(x)

        img_dnn.model.predict = spy
        try:
            client = img_dnn.make_client(seed=6)
            img_dnn.handle_batch([client.next_request() for _ in range(8)])
        finally:
            img_dnn.model.predict = original
        assert len(calls) == 1
        assert calls[0][0] == 8

"""Tests for app extensions: range scans, AND-queries, WER scoring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.masstree import Masstree, MasstreeApp
from repro.apps.sphinx import edit_distance, word_error_rate
from repro.apps.xapian import Document, InvertedIndex
from repro.workloads import YcsbOperation, make_key


class TestMasstreeRange:
    def test_range_respects_bounds(self):
        tree = Masstree()
        for key in (b"a", b"b", b"c", b"d"):
            tree.put(key, key.decode())
        assert [k for k, _ in tree.range(b"b", b"d")] == [b"b", b"c"]

    def test_range_across_layers(self):
        tree = Masstree()
        keys = [b"prefix--" + bytes([i]) for i in range(10)] + [b"prefix--"]
        for key in keys:
            tree.put(key, 1)
        result = [k for k, _ in tree.range(b"prefix--", b"prefix--\x05")]
        assert result == sorted(k for k in keys if k < b"prefix--\x05")

    def test_empty_range(self):
        tree = Masstree()
        tree.put(b"x", 1)
        assert list(tree.range(b"y", b"z")) == []

    def test_type_checked(self):
        with pytest.raises(TypeError):
            list(Masstree().range("a", "b"))

    @given(st.sets(st.binary(min_size=0, max_size=12), max_size=60),
           st.binary(max_size=12), st.binary(max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_sorted_filter(self, keys, lo, hi):
        tree = Masstree()
        for key in keys:
            tree.put(key, True)
        expected = sorted(k for k in keys if lo <= k < hi)
        assert [k for k, _ in tree.range(lo, hi)] == expected

    def test_scan_operation_via_app(self):
        app = MasstreeApp(n_records=100)
        app.setup()
        result = app.process(
            YcsbOperation("scan", make_key(0), (5).to_bytes(1, "big"))
        )
        assert len(result) == 5
        keys = [k for k, _ in result]
        assert keys == sorted(keys)
        assert keys[0] == make_key(0).encode()


class TestConjunctiveSearch:
    @pytest.fixture()
    def index(self):
        idx = InvertedIndex()
        idx.build([
            Document(0, "a", "apple banana"),
            Document(1, "b", "apple cherry"),
            Document(2, "c", "banana cherry"),
            Document(3, "d", "apple banana cherry"),
        ])
        return idx

    def test_and_requires_all_terms(self, index):
        results = index.search("apple banana", conjunctive=True)
        assert {r.doc_id for r in results} == {0, 3}

    def test_and_subset_of_or(self, index):
        or_ids = {r.doc_id for r in index.search("apple cherry")}
        and_ids = {r.doc_id for r in index.search("apple cherry", conjunctive=True)}
        assert and_ids <= or_ids
        assert and_ids == {1, 3}

    def test_and_with_missing_term_empty(self, index):
        assert index.search("apple zzz", conjunctive=True) == []

    def test_and_scores_still_ranked(self, index):
        results = index.search("apple banana cherry", conjunctive=True)
        assert [r.doc_id for r in results] == [3]
        assert results[0].score > 0


class TestWer:
    def test_identical_zero(self):
        assert edit_distance(["a", "b"], ["a", "b"]) == 0
        assert word_error_rate(["a", "b"], ["a", "b"]) == 0.0

    def test_substitution(self):
        assert edit_distance(["a", "b", "c"], ["a", "x", "c"]) == 1

    def test_insertion_and_deletion(self):
        assert edit_distance(["a", "b"], ["a", "x", "b"]) == 1
        assert edit_distance(["a", "x", "b"], ["a", "b"]) == 1

    def test_empty_cases(self):
        assert edit_distance([], ["a"]) == 1
        assert edit_distance(["a", "b"], []) == 2
        with pytest.raises(ValueError):
            word_error_rate([], ["a"])

    def test_wer_can_exceed_one(self):
        assert word_error_rate(["a"], ["x", "y", "z"]) == 3.0

    @given(st.lists(st.sampled_from("abc"), max_size=15),
           st.lists(st.sampled_from("abc"), max_size=15))
    @settings(max_examples=100, deadline=None)
    def test_property_metric_axioms(self, x, y):
        d = edit_distance(x, y)
        assert d == edit_distance(y, x)  # symmetry
        assert (d == 0) == (x == y)  # identity
        assert d <= max(len(x), len(y))  # upper bound

    def test_recognizer_wer_is_low_on_clean_speech(self):
        from repro.apps.sphinx import SphinxApp, UtteranceGenerator

        app = SphinxApp(seed=0)
        app.setup()
        gen = UtteranceGenerator(app.model, noise=0.1, seed=11,
                                 min_words=3, max_words=5)
        total_wer = 0.0
        n = 8
        for _ in range(n):
            utt = gen.next_utterance()
            result = app.process(utt.frames)
            total_wer += word_error_rate(utt.transcript, result.words)
        assert total_wer / n < 0.5

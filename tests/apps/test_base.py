"""Tests for the application interface and registry."""

import pytest

from repro.apps import Application, app_names, create_app, register_app
from repro.apps.base import _REGISTRY


class TestRegistry:
    def test_all_paper_apps_plus_vsearch_registered(self):
        assert app_names() == [
            "img-dnn", "masstree", "moses", "shore",
            "silo", "specjbb", "sphinx", "vsearch", "xapian",
        ]

    def test_create_app_passes_kwargs(self):
        app = create_app("masstree", n_records=123)
        assert app._n_records == 123

    def test_unknown_app_helpful_error(self):
        with pytest.raises(KeyError, match="known:"):
            create_app("redis")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_app("masstree", lambda: None)

    def test_register_and_use_custom_app(self):
        class EchoApp(Application):
            name = "echo-test"

            def setup(self):
                pass

            def process(self, payload):
                return payload

            def make_client(self, seed=0):
                class _Client:
                    def next_request(self):
                        return "ping"

                return _Client()

        register_app("echo-test", EchoApp)
        try:
            app = create_app("echo-test")
            app.setup()
            assert app.process("x") == "x"
            assert app.make_client().next_request() == "ping"
        finally:
            _REGISTRY.pop("echo-test")

    def test_interface_is_abstract(self):
        app = Application()
        with pytest.raises(NotImplementedError):
            app.setup()
        with pytest.raises(NotImplementedError):
            app.process(None)
        with pytest.raises(NotImplementedError):
            app.make_client()

    def test_apps_have_paper_metadata(self):
        for name in app_names():
            app = create_app(name)
            assert app.name
            assert app.domain

"""Tests for the moses statistical machine translation application."""

import math
import random

import pytest

from repro.apps.moses import (
    BOS,
    EOS,
    MosesApp,
    NGramLanguageModel,
    ParallelCorpus,
    PhraseTable,
    StackDecoder,
)


class TestParallelCorpus:
    def test_deterministic(self):
        a = ParallelCorpus(vocab_size=50, n_sentences=20, seed=1)
        b = ParallelCorpus(vocab_size=50, n_sentences=20, seed=1)
        assert a.sentence_pairs() == b.sentence_pairs()

    def test_pair_lengths_match(self):
        corpus = ParallelCorpus(vocab_size=50, n_sentences=50, seed=2)
        for pair in corpus.sentence_pairs():
            assert len(pair.source) == len(pair.target)
            assert len(pair.source) >= 1

    def test_source_vocab(self):
        corpus = ParallelCorpus(vocab_size=30, n_sentences=10, seed=0)
        vocab = set(corpus.source_vocabulary)
        for pair in corpus.sentence_pairs():
            assert set(pair.source) <= vocab

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelCorpus(vocab_size=5)


class TestLanguageModel:
    @pytest.fixture()
    def lm(self):
        lm = NGramLanguageModel(order=3)
        lm.train([("a", "b", "c"), ("a", "b", "d"), ("a", "b", "c")])
        return lm

    def test_probabilities_sum_to_one(self, lm):
        vocab = ["a", "b", "c", "d", BOS, EOS]
        total = sum(lm.prob(w, ("a", "b")) for w in vocab)
        assert total <= 1.0 + 1e-9

    def test_seen_continuation_more_likely(self, lm):
        assert lm.prob("c", ("a", "b")) > lm.prob("d", ("a", "b"))
        assert lm.prob("c", ("a", "b")) > lm.prob("z", ("a", "b"))

    def test_unseen_word_nonzero(self, lm):
        assert lm.prob("zzz", ("a", "b")) > 0.0

    def test_sentence_logprob_finite_and_ordered(self, lm):
        likely = lm.sentence_logprob(("a", "b", "c"))
        unlikely = lm.sentence_logprob(("d", "c", "a"))
        assert math.isfinite(likely) and math.isfinite(unlikely)
        assert likely > unlikely

    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            NGramLanguageModel().prob("a", ())

    def test_validation(self):
        with pytest.raises(ValueError):
            NGramLanguageModel(order=0)
        with pytest.raises(ValueError):
            NGramLanguageModel(order=2, lambdas=(0.9,))
        with pytest.raises(ValueError):
            NGramLanguageModel(order=1, lambdas=(1.2,))


class TestPhraseTable:
    @pytest.fixture()
    def table(self):
        corpus = ParallelCorpus(vocab_size=60, n_sentences=400, seed=3)
        table = PhraseTable(max_phrase_len=3)
        table.build(corpus.sentence_pairs())
        return table

    def test_extracts_phrases(self, table):
        assert len(table) > 0

    def test_log_probs_normalized(self, table):
        # Per source phrase, translation probs must not exceed 1.
        checked = 0
        for src in list(table._table)[:50]:
            total = sum(math.exp(o.log_prob) for o in table.options(src))
            assert total <= 1.0 + 1e-9
            checked += 1
        assert checked > 0

    def test_options_ranked_by_probability(self, table):
        for src in list(table._table)[:50]:
            probs = [o.log_prob for o in table.options(src)]
            assert probs == sorted(probs, reverse=True)

    def test_unknown_word_passthrough(self, table):
        spans = table.lookup_all(("qqqqq",))
        assert (0, 1) in spans
        assert spans[(0, 1)][0].target == ("qqqqq",)

    def test_lookup_all_covers_every_position(self, table):
        sentence = ("s0", "s1", "s2", "s3")
        spans = table.lookup_all(sentence)
        for i in range(len(sentence)):
            assert any(start <= i < end for (start, end) in spans)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhraseTable(max_phrase_len=0)


class TestStackDecoder:
    @pytest.fixture(scope="class")
    def app(self):
        app = MosesApp(vocab_size=80, n_sentences=600, stack_size=10)
        app.setup()
        return app

    def test_translates_known_words(self, app):
        # s<i> should translate mostly to t<i> given the corpus design.
        result = app.process(("s0", "s1"))
        assert len(result.target) >= 2
        assert result.score > float("-inf")

    def test_full_coverage(self, app):
        # Every source position must be translated exactly once.
        source = ("s0", "s3", "s2", "s5", "s1")
        result = app.process(source)
        assert len(result.target) >= len(source) - 1  # phrases may merge

    def test_translation_accuracy_on_common_words(self, app):
        rng = random.Random(0)
        correct = total = 0
        for _ in range(30):
            i = rng.randrange(10)  # common words are well-attested
            result = app.process((f"s{i}",))
            total += 1
            if f"t{i}" in result.target:
                correct += 1
        assert correct / total > 0.6

    def test_empty_sentence(self, app):
        result = app.process(())
        assert result.target == ()

    def test_longer_sentences_expand_more_hypotheses(self, app):
        short = app.process(("s0", "s1"))
        long = app.process(tuple(f"s{i}" for i in range(10)))
        assert long.n_hypotheses > short.n_hypotheses

    def test_larger_stack_never_worse(self, app):
        decoder = app.decoder
        small = StackDecoder(
            decoder.phrase_table, decoder.language_model, stack_size=1
        )
        big = StackDecoder(
            decoder.phrase_table, decoder.language_model, stack_size=50
        )
        sentence = tuple(f"s{i}" for i in (4, 2, 9, 1, 7))
        assert big.decode(sentence).score >= small.decode(sentence).score - 1e-9

    def test_decoder_validation(self, app):
        decoder = app.decoder
        with pytest.raises(ValueError):
            StackDecoder(decoder.phrase_table, decoder.language_model, stack_size=0)

    def test_requires_setup(self):
        with pytest.raises(RuntimeError):
            MosesApp(vocab_size=20, n_sentences=20).process(("s0",))

    def test_client_draws_source_sentences(self, app):
        client = app.make_client(seed=0)
        sentence = client.next_request()
        assert all(w.startswith("s") for w in sentence)

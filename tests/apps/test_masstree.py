"""Tests for the masstree key-value store (B+tree + trie layering)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.masstree import BPlusTree, Masstree, MasstreeApp, key_slices
from repro.workloads import YcsbOperation


class TestBPlusTree:
    def test_put_get(self):
        tree = BPlusTree(order=4)
        tree.put(5, "five")
        tree.put(3, "three")
        assert tree.get(5) == "five"
        assert tree.get(3) == "three"
        assert tree.get(99) is None
        assert tree.get(99, "default") == "default"

    def test_overwrite(self):
        tree = BPlusTree()
        assert tree.put(1, "a") is True
        assert tree.put(1, "b") is False
        assert tree.get(1) == "b"
        assert len(tree) == 1

    def test_contains(self):
        tree = BPlusTree()
        tree.put(1, None)  # None values are storable
        assert 1 in tree
        assert 2 not in tree

    def test_splits_maintain_order(self):
        tree = BPlusTree(order=4)
        for i in range(200):
            tree.put(i, i * 10)
        assert len(tree) == 200
        assert [k for k, _ in tree.items()] == list(range(200))
        tree.check_invariants()

    def test_reverse_and_random_insertion(self):
        for order, keys in ((3, range(99, -1, -1)), (5, None)):
            tree = BPlusTree(order=order)
            key_list = list(keys) if keys else random.Random(0).sample(range(500), 300)
            for k in key_list:
                tree.put(k, k)
            assert [k for k, _ in tree.items()] == sorted(key_list)
            tree.check_invariants()

    def test_delete(self):
        tree = BPlusTree(order=4)
        for i in range(50):
            tree.put(i, i)
        assert tree.delete(25) is True
        assert tree.delete(25) is False
        assert 25 not in tree
        assert len(tree) == 49
        tree.check_invariants()

    def test_range_scan(self):
        tree = BPlusTree(order=4)
        for i in range(0, 100, 2):
            tree.put(i, i)
        assert [k for k, _ in tree.range(10, 20)] == [10, 12, 14, 16, 18]
        assert list(tree.range(99, 200)) == []
        assert [k for k, _ in tree.range(-5, 3)] == [0, 2]

    def test_string_keys(self):
        tree = BPlusTree(order=4)
        words = ["pear", "apple", "fig", "date", "cherry", "banana"]
        for w in words:
            tree.put(w, w.upper())
        assert [k for k, _ in tree.items()] == sorted(words)
        assert tree.get("fig") == "FIG"

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_dict(self, keys):
        tree = BPlusTree(order=4)
        reference = {}
        for k in keys:
            tree.put(k, k * 2)
            reference[k] = k * 2
        assert len(tree) == len(reference)
        for k, v in reference.items():
            assert tree.get(k) == v
        assert list(tree.items()) == sorted(reference.items())
        tree.check_invariants()

    @given(
        st.lists(st.integers(min_value=0, max_value=500), max_size=200),
        st.lists(st.integers(min_value=0, max_value=500), max_size=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_delete_matches_dict(self, inserts, deletes):
        tree = BPlusTree(order=5)
        reference = {}
        for k in inserts:
            tree.put(k, k)
            reference[k] = k
        for k in deletes:
            assert tree.delete(k) == (k in reference)
            reference.pop(k, None)
        assert list(tree.items()) == sorted(reference.items())


class TestKeySlices:
    def test_short_key_single_slice(self):
        slices = key_slices(b"abc")
        assert len(slices) == 1
        assert slices[0][1] == 3  # true length tag

    def test_long_key_multiple_slices(self):
        slices = key_slices(b"0123456789abcdef" + b"xy")
        assert len(slices) == 3
        assert slices[0][1] == 8 and slices[2][1] == 2

    def test_padding_does_not_collide(self):
        assert key_slices(b"a") != key_slices(b"a\x00")

    def test_empty_key(self):
        assert len(key_slices(b"")) == 1

    def test_type_checked(self):
        with pytest.raises(TypeError):
            key_slices("not-bytes")


class TestMasstree:
    def test_put_get_delete(self):
        tree = Masstree()
        tree.put(b"hello", 1)
        assert tree.get(b"hello") == 1
        assert tree.delete(b"hello") is True
        assert tree.get(b"hello") is None
        assert len(tree) == 0

    def test_prefix_keys_coexist(self):
        # The masstree layering case: keys sharing 8-byte prefixes.
        tree = Masstree()
        tree.put(b"12345678", "exact")
        tree.put(b"12345678extra", "longer")
        tree.put(b"1234", "shorter")
        assert tree.get(b"12345678") == "exact"
        assert tree.get(b"12345678extra") == "longer"
        assert tree.get(b"1234") == "shorter"
        assert len(tree) == 3

    def test_delete_with_shared_prefix(self):
        tree = Masstree()
        tree.put(b"aaaaaaaa", 1)
        tree.put(b"aaaaaaaabbbbbbbb", 2)
        assert tree.delete(b"aaaaaaaa") is True
        assert tree.get(b"aaaaaaaa") is None
        assert tree.get(b"aaaaaaaabbbbbbbb") == 2

    def test_items_in_lexicographic_order(self):
        tree = Masstree()
        keys = [b"pear", b"apple", b"app", b"banana-split-very-long-key", b"fig"]
        for i, k in enumerate(keys):
            tree.put(k, i)
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_overwrite_returns_false(self):
        tree = Masstree()
        assert tree.put(b"k", 1) is True
        assert tree.put(b"k", 2) is False
        assert tree.get(b"k") == 2

    def test_missing_delete_returns_false(self):
        tree = Masstree()
        assert tree.delete(b"ghost") is False

    @given(
        st.dictionaries(
            st.binary(min_size=0, max_size=24),
            st.integers(),
            max_size=150,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_dict(self, reference):
        tree = Masstree()
        for k, v in reference.items():
            tree.put(k, v)
        assert len(tree) == len(reference)
        for k, v in reference.items():
            assert tree.get(k) == v
        assert [k for k, _ in tree.items()] == sorted(reference)

    @given(
        st.lists(st.binary(min_size=0, max_size=20), max_size=80),
        st.lists(st.binary(min_size=0, max_size=20), max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_deletes(self, inserts, deletes):
        tree = Masstree()
        reference = {}
        for k in inserts:
            tree.put(k, len(k))
            reference[k] = len(k)
        for k in deletes:
            assert tree.delete(k) == (k in reference)
            reference.pop(k, None)
        for k, v in reference.items():
            assert tree.get(k) == v
        assert len(tree) == len(reference)


class TestMasstreeApp:
    @pytest.fixture(scope="class")
    def app(self):
        app = MasstreeApp(n_records=300)
        app.setup()
        return app

    def test_gets_return_preloaded_values(self, app):
        from repro.workloads import make_key, make_value

        result = app.process(YcsbOperation("get", make_key(0)))
        assert result == make_value(0, 100)

    def test_put_then_get(self, app):
        from repro.workloads import make_key

        key = make_key(1)
        app.process(YcsbOperation("put", key, b"fresh"))
        assert app.process(YcsbOperation("get", key)) == b"fresh"

    def test_unknown_op_rejected(self, app):
        with pytest.raises(ValueError):
            app.process(YcsbOperation("increment", "k"))

    def test_requires_setup(self):
        with pytest.raises(RuntimeError):
            MasstreeApp(n_records=10).process(YcsbOperation("get", "k"))

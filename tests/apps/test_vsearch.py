"""Tests for the sharded vector-search application (vsearch)."""

import numpy as np
import pytest

from repro.apps import create_app
from repro.apps.base import ShardedApp
from repro.apps.vsearch import (
    EmbeddingCorpus,
    IVFIndex,
    VsearchApp,
    brute_force_topk,
    merge_topk,
)


class TestEmbeddingCorpus:
    def test_deterministic_per_seed(self):
        a = EmbeddingCorpus(n_vectors=256, seed=7)
        b = EmbeddingCorpus(n_vectors=256, seed=7)
        c = EmbeddingCorpus(n_vectors=256, seed=8)
        assert np.array_equal(a.vectors, b.vectors)
        assert np.array_equal(a.queries, b.queries)
        assert not np.array_equal(a.vectors, c.vectors)

    def test_shapes_and_dtypes(self):
        corpus = EmbeddingCorpus(n_vectors=128, dim=16, n_queries=32)
        assert corpus.vectors.shape == (128, 16)
        assert corpus.queries.shape == (32, 16)
        assert corpus.vectors.dtype == np.float32
        assert corpus.ids.dtype == np.int64
        assert np.array_equal(corpus.ids, np.arange(128))

    def test_partition_is_disjoint_and_complete(self):
        corpus = EmbeddingCorpus(n_vectors=130)
        parts = corpus.partition(4)
        assert len(parts) == 4
        all_ids = np.concatenate([ids for _, ids in parts])
        assert sorted(all_ids.tolist()) == list(range(130))
        # Round-robin: shard sizes differ by at most one.
        sizes = [len(ids) for _, ids in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_partition_rows_match_global_rows(self):
        corpus = EmbeddingCorpus(n_vectors=64)
        for vectors, ids in corpus.partition(3):
            assert np.array_equal(vectors, corpus.vectors[ids])


class TestIVFIndex:
    @pytest.fixture(scope="class")
    def corpus(self):
        return EmbeddingCorpus(n_vectors=1024, n_queries=64, seed=1)

    @pytest.fixture(scope="class")
    def index(self, corpus):
        index = IVFIndex(n_lists=16, seed=1)
        index.build(corpus.vectors, corpus.ids)
        return index

    def test_posting_lists_cover_corpus(self, index):
        assert sum(index.list_sizes) == 1024

    def test_full_probe_equals_brute_force(self, corpus, index):
        for qid in range(16):
            query = corpus.queries[qid]
            got = index.search(query, k=10, nprobe=16)
            truth = brute_force_topk(corpus.vectors, corpus.ids, query, 10)
            assert got == truth

    def test_recall_improves_with_nprobe(self, corpus, index):
        def recall(nprobe):
            total = 0.0
            for qid in range(32):
                query = corpus.queries[qid]
                truth = {d for d, _ in brute_force_topk(
                    corpus.vectors, corpus.ids, query, 10)}
                got = {d for d, _ in index.search(query, k=10, nprobe=nprobe)}
                total += len(truth & got) / len(truth)
            return total / 32

        r1, r4, r16 = recall(1), recall(4), recall(16)
        assert r1 <= r4 + 1e-9 <= r16 + 2e-9
        assert r4 > 0.7
        assert r16 == pytest.approx(1.0)

    def test_probed_size_grows_with_nprobe(self, corpus, index):
        query = corpus.queries[0]
        sizes = [index.probed_size(query, n) for n in (1, 4, 16)]
        assert sizes == sorted(sizes)
        assert sizes[-1] == 1024

    def test_search_requires_build(self):
        with pytest.raises(RuntimeError):
            IVFIndex().search(np.zeros(8, dtype=np.float32))

    def test_build_rejects_bad_input(self):
        with pytest.raises(ValueError):
            IVFIndex().build(np.zeros((0, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            IVFIndex(n_lists=0)


class TestMergeTopk:
    def test_merge_is_global_topk(self):
        rng = np.random.default_rng(3)
        dists = rng.random(100)
        ids = np.arange(100, dtype=np.int64)
        hits = [(int(i), float(d)) for i, d in zip(ids, dists)]
        # Split into 4 "shards", each contributing its local top-5.
        shards = [
            sorted(hits[s::4], key=lambda h: (h[1], h[0]))[:5]
            for s in range(4)
        ]
        merged = merge_topk(shards, 5)
        assert merged == sorted(hits, key=lambda h: (h[1], h[0]))[:5]

    def test_ties_break_by_id(self):
        merged = merge_topk([[(9, 1.0)], [(2, 1.0)], [(5, 1.0)]], 2)
        assert merged == [(2, 1.0), (5, 1.0)]


class TestVsearchApp:
    @pytest.fixture(scope="class")
    def app(self):
        app = VsearchApp(n_vectors=1024, n_queries=64, seed=0)
        app.setup()
        return app

    def test_registered(self):
        app = create_app("vsearch", n_vectors=128)
        assert isinstance(app, VsearchApp)
        assert app.name == "vsearch"
        assert app.domain

    def test_process_returns_topk(self, app):
        hits = app.process(0)
        assert len(hits) == 10
        dists = [d for _, d in hits]
        assert dists == sorted(dists)

    def test_recall_at_k_monotone(self, app):
        r_low = app.recall_at_k(nprobe=1, sample=24)
        r_high = app.recall_at_k(nprobe=32, sample=24)
        assert r_low <= r_high + 1e-9
        assert r_high == pytest.approx(1.0)

    def test_client_is_deterministic_and_zipfian(self, app):
        a_client = app.make_client(seed=5)
        a = [a_client.next_request() for _ in range(200)]
        b_client = app.make_client(seed=5)
        b = [b_client.next_request() for _ in range(200)]
        assert a == b
        assert all(0 <= qid < 64 for qid in a)
        # Zipf skew: rank 0 is the most frequent draw.
        assert a.count(0) >= max(a.count(q) for q in set(a) if q != 0)

    def test_handle_batch_matches_process(self, app):
        batch = app.handle_batch([3, 1, 3])
        assert batch[0] == app.process(3)
        assert batch[1] == app.process(1)
        assert batch[2] == batch[0]
        assert batch[2] is not batch[0]  # duplicates get their own list


class TestShardedVsearch:
    @pytest.fixture(scope="class")
    def app(self):
        return VsearchApp(n_vectors=1024, n_queries=48, seed=2)

    def test_sharded_merge_equals_global_topk_exactly(self, app):
        # Full probe on every shard => each shard's local top-k is
        # exact, and the determinism contract (per-row distances, ties
        # by id) makes the merge equal the global brute force, exactly.
        sharded = VsearchApp(
            n_vectors=1024, n_queries=48, n_lists=8, nprobe=8, seed=2
        ).sharded(4)
        sharded.setup()
        for qid in range(48):
            assert sharded.process(qid) == app.exact_topk(qid)

    def test_sharded_app_shape(self, app):
        sharded = app.sharded(3)
        assert isinstance(sharded, ShardedApp)
        assert sharded.n_shards == 3
        assert sharded.name == "vsearch"
        sharded.setup()
        for shard in range(3):
            assert sharded.replica(shard) is sharded.shards[shard]

    def test_shard_sizes_balanced(self, app):
        sharded = app.sharded(4)
        sharded.setup()
        sizes = [sum(s._index.list_sizes) for s in sharded.shards]
        assert sum(sizes) == 1024
        assert max(sizes) - min(sizes) <= 1

    def test_merge_responses_used_by_gather(self, app):
        sharded = app.sharded(2)
        sharded.setup()
        partials = [shard.process(0) for shard in sharded.shards]
        assert sharded.merge_responses(partials) == sharded.process(0)

    def test_sharded_client_matches_unsharded(self, app):
        plain = app.make_client(seed=1)
        a = [plain.next_request() for _ in range(50)]
        sharded = app.sharded(2)
        client = sharded.make_client(seed=1)
        assert [client.next_request() for _ in range(50)] == a

"""TPC-C consistency conditions on both database engines.

Adapted from TPC-C clause 3.3.2's consistency requirements: after an
arbitrary mix of transactions, structural invariants must hold. The
same checks run against silo (OCC) and shore (2PL + paged storage),
since both execute the same transaction bodies.
"""

import pytest

from repro.apps.shore import ShoreApp
from repro.apps.silo import SiloApp
from repro.apps.silo.tables import MAX_ID
from repro.workloads import TpccScale, TpccWorkload

SCALE = TpccScale.small()


def run_mix(app, n=250, seed=11):
    workload = TpccWorkload(scale=SCALE, seed=seed)
    for _ in range(n):
        app.process(workload.next_transaction())


def engine_and_tables(app):
    if isinstance(app, SiloApp):
        return app.database, app._executor._t
    return app.engine, app._executor._t


def check_consistency(app):
    """Run every consistency condition; raises AssertionError on violation."""
    engine, tables = engine_and_tables(app)

    def read(table, key):
        return engine.run(lambda t: t.read(table, key))

    def scan(table, partition, lo, hi):
        return engine.run(lambda t: t.scan(table, partition, lo, hi))

    for w in range(1, SCALE.warehouses + 1):
        district_ytd_sum = 0.0
        for d in range(1, SCALE.districts_per_warehouse + 1):
            district = read(tables.district, (w, d))
            district_ytd_sum += district["ytd"]
            next_o_id = district["next_o_id"]

            # C1: next order id is one beyond the largest existing
            # order id in the district (orders and their index agree).
            orders = scan(tables.orders, (w, d), (w, d, 0), (w, d, MAX_ID))
            max_o = max(o_id for (_, _, o_id), _ in orders)
            assert next_o_id == max_o + 1, (w, d)

            # C1b: every NEW-ORDER entry refers to an existing,
            # undelivered order.
            pending = scan(
                tables.new_orders, (w, d), (w, d, 0), (w, d, MAX_ID)
            )
            order_by_id = {o_id: v for (_, _, o_id), v in orders}
            for (_, _, o_id), _ in pending:
                assert o_id in order_by_id, (w, d, o_id)
                assert order_by_id[o_id]["carrier_id"] is None, (w, d, o_id)

            # C2: per order, order-line count matches ol_cnt, and
            # delivered orders carry a carrier id.
            pending_ids = {o_id for (_, _, o_id), _ in pending}
            lines = scan(
                tables.order_lines, (w, d), (w, d, 0, 0), (w, d, MAX_ID, MAX_ID)
            )
            line_counts = {}
            for (_, _, o_id, _line_no), _v in lines:
                line_counts[o_id] = line_counts.get(o_id, 0) + 1
            for o_id, order in order_by_id.items():
                assert line_counts.get(o_id, 0) == order["ol_cnt"], (w, d, o_id)
                if o_id not in pending_ids:
                    assert order["carrier_id"] is not None, (w, d, o_id)

            # C3: the customer-order index covers exactly the orders.
            indexed = scan(
                tables.customer_order_index,
                *((w, d, 1), (w, d, 1, 0), (w, d, 1, MAX_ID)),
            )
            for (_, _, _c, o_id), stored in indexed:
                assert stored == o_id

        # C4 (money): warehouse YTD equals the sum of its districts'.
        warehouse = read(tables.warehouse, w)
        assert warehouse["ytd"] == pytest.approx(district_ytd_sum)


class TestSiloConsistency:
    def test_invariants_hold_after_mixed_workload(self):
        app = SiloApp(scale=SCALE)
        app.setup()
        check_consistency(app)  # initial state is consistent
        run_mix(app)
        check_consistency(app)

    def test_invariants_hold_after_concurrent_workload(self):
        import threading

        app = SiloApp(scale=SCALE)
        app.setup()
        errors = []

        def worker(seed):
            try:
                run_mix(app, n=80, seed=seed)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(180.0)
        assert not errors
        check_consistency(app)


class TestShoreConsistency:
    def test_invariants_hold_after_mixed_workload(self):
        app = ShoreApp(scale=SCALE, buffer_capacity=64)
        app.setup()
        run_mix(app)
        check_consistency(app)
        app.teardown()

    def test_invariants_survive_crash_recovery(self, tmp_path):
        # Run a workload, crash without flushing, recover into a fresh
        # engine, and re-check every consistency condition.
        from repro.apps.shore import ShoreEngine
        from repro.apps.silo.tables import TpccTables, populate
        from repro.apps.silo.tpcc import TpccExecutor

        log_path = str(tmp_path / "wal.log")
        engine = ShoreEngine(
            buffer_capacity=64,
            db_path=str(tmp_path / "d.db"),
            log_path=log_path,
        )
        tables = TpccTables.create(engine)
        populate(tables, SCALE, seed=0)
        executor = TpccExecutor(tables)
        workload = TpccWorkload(scale=SCALE, seed=3)
        # Initial population is unlogged: checkpoint makes it durable.
        engine.checkpoint()
        for _ in range(120):
            txn = workload.next_transaction()
            engine.run(lambda t, txn=txn: executor.execute(t, txn.kind, txn.params))
        engine.log.force()  # crash: pages NOT flushed beyond checkpoint

        recovered = ShoreEngine(
            buffer_capacity=64,
            db_path=str(tmp_path / "d.db"),
            log_path=log_path,
        )
        rtables = TpccTables.create(recovered)
        recovered.recover()

        class _Shim:
            def __init__(self):
                self.engine = recovered
                self._executor = TpccExecutor(rtables)

        shim = _Shim()
        check_consistency(shim)
        recovered.close()
        engine.close()

"""Tests for the img-dnn image recognition application."""

import numpy as np
import pytest

from repro.apps.img_dnn import (
    IMAGE_SIZE,
    N_CLASSES,
    AutoencoderClassifier,
    ImgDnnApp,
    SyntheticMnist,
    sigmoid,
    softmax,
)


class TestActivations:
    def test_sigmoid_range_and_midpoint(self):
        x = np.array([-100.0, 0.0, 100.0])
        y = sigmoid(x)
        assert y[0] == pytest.approx(0.0, abs=1e-9)
        assert y[1] == pytest.approx(0.5)
        assert y[2] == pytest.approx(1.0, abs=1e-9)

    def test_sigmoid_no_overflow(self):
        assert np.all(np.isfinite(sigmoid(np.array([-1e4, 1e4]))))

    def test_softmax_normalizes(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert probs[1, 0] == pytest.approx(1 / 3)

    def test_softmax_shift_invariant(self):
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(softmax(x), softmax(x + 1000.0))


class TestSyntheticMnist:
    def test_sample_shape_and_range(self):
        gen = SyntheticMnist(seed=0)
        sample = gen.sample()
        assert sample.pixels.shape == (IMAGE_SIZE * IMAGE_SIZE,)
        assert np.all((sample.pixels >= 0) & (sample.pixels <= 1))
        assert 0 <= sample.label < N_CLASSES

    def test_requested_digit(self):
        gen = SyntheticMnist(seed=1)
        assert gen.sample(digit=7).label == 7

    def test_digits_are_distinct(self):
        gen = SyntheticMnist(shift=0, noise=0.0, seed=2)
        imgs = {d: gen.sample(d).pixels for d in range(N_CLASSES)}
        for a in range(N_CLASSES):
            for b in range(a + 1, N_CLASSES):
                assert np.abs(imgs[a] - imgs[b]).sum() > 1.0

    def test_noise_varies_samples(self):
        gen = SyntheticMnist(seed=3)
        a, b = gen.sample(5).pixels, gen.sample(5).pixels
        assert not np.array_equal(a, b)

    def test_dataset_balanced(self):
        gen = SyntheticMnist(seed=4)
        x, y = gen.dataset(100)
        assert x.shape == (100, IMAGE_SIZE * IMAGE_SIZE)
        counts = np.bincount(y, minlength=N_CLASSES)
        assert counts.min() == counts.max() == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticMnist(shift=-1)
        with pytest.raises(ValueError):
            SyntheticMnist(seed=0).sample(digit=10)
        with pytest.raises(ValueError):
            SyntheticMnist(seed=0).dataset(5)


class TestAutoencoderClassifier:
    def test_pretraining_reduces_reconstruction_error(self):
        gen = SyntheticMnist(seed=5)
        x, _ = gen.dataset(300)
        model = AutoencoderClassifier(
            layer_sizes=(IMAGE_SIZE * IMAGE_SIZE, 64, 32), seed=0
        )
        first = model.pretrain(x, epochs=1)
        later = model.pretrain(x, epochs=4)
        assert later < first

    def test_training_reduces_loss(self):
        gen = SyntheticMnist(seed=6)
        x, y = gen.dataset(300)
        model = AutoencoderClassifier(
            layer_sizes=(IMAGE_SIZE * IMAGE_SIZE, 64, 32), seed=0
        )
        model.pretrain(x, epochs=2)
        first = model.train_classifier(x, y, epochs=1)
        later = model.train_classifier(x, y, epochs=5)
        assert later < first

    def test_encode_shape(self):
        model = AutoencoderClassifier(layer_sizes=(256, 64, 32), seed=0)
        codes = model.encode(np.random.default_rng(0).random((7, 256)))
        assert codes.shape == (7, 32)

    def test_predict_single_and_batch(self):
        model = AutoencoderClassifier(layer_sizes=(256, 32, 16), seed=0)
        rng = np.random.default_rng(1)
        single = model.predict(rng.random(256))
        batch = model.predict(rng.random((5, 256)))
        assert isinstance(int(single), int)
        assert batch.shape == (5,)

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoencoderClassifier(layer_sizes=(256,))


class TestImgDnnApp:
    @pytest.fixture(scope="class")
    def app(self):
        app = ImgDnnApp(train_samples=600, epochs=14, seed=0)
        app.setup()
        return app

    def test_learns_the_task(self, app):
        assert app.train_accuracy > 0.8

    def test_classifies_fresh_samples(self, app):
        gen = SyntheticMnist(seed=99)
        correct = 0
        n = 50
        for _ in range(n):
            sample = gen.sample()
            if app.process(sample.pixels) == sample.label:
                correct += 1
        assert correct / n > 0.6

    def test_process_returns_int_label(self, app):
        client = app.make_client(seed=0)
        label = app.process(client.next_request())
        assert isinstance(label, int)
        assert 0 <= label < N_CLASSES

    def test_requires_setup(self):
        with pytest.raises(RuntimeError):
            ImgDnnApp(train_samples=20).process(np.zeros(IMAGE_SIZE ** 2))

    def test_validation(self):
        with pytest.raises(ValueError):
            ImgDnnApp(train_samples=3)

"""Tests for shore's storage layers: SSD, pages, buffer pool, WAL, locks."""

import threading

import pytest

from repro.apps.shore import (
    BufferPool,
    BufferPoolFullError,
    LockManager,
    LockTimeout,
    PageFullError,
    SimulatedSSD,
    SlottedPage,
    WriteAheadLog,
)


class TestSimulatedSSD:
    def test_write_read_roundtrip(self):
        ssd = SimulatedSSD()
        try:
            page_id = ssd.allocate_page()
            data = bytes(range(256)) * (ssd.page_size // 256)
            ssd.write_page(page_id, data)
            assert ssd.read_page(page_id) == data
        finally:
            ssd.close()

    def test_unwritten_page_reads_zeros(self):
        ssd = SimulatedSSD()
        try:
            page_id = ssd.allocate_page()
            assert ssd.read_page(page_id) == b"\x00" * ssd.page_size
        finally:
            ssd.close()

    def test_page_ids_sequential(self):
        ssd = SimulatedSSD()
        try:
            assert [ssd.allocate_page() for _ in range(3)] == [0, 1, 2]
            assert ssd.n_pages == 3
        finally:
            ssd.close()

    def test_out_of_range_rejected(self):
        ssd = SimulatedSSD()
        try:
            with pytest.raises(ValueError):
                ssd.read_page(0)
            ssd.allocate_page()
            with pytest.raises(ValueError):
                ssd.read_page(1)
        finally:
            ssd.close()

    def test_wrong_size_write_rejected(self):
        ssd = SimulatedSSD()
        try:
            ssd.allocate_page()
            with pytest.raises(ValueError):
                ssd.write_page(0, b"short")
        finally:
            ssd.close()

    def test_stats_counted(self):
        ssd = SimulatedSSD()
        try:
            ssd.allocate_page()
            ssd.write_page(0, b"\x01" * ssd.page_size)
            ssd.read_page(0)
            assert ssd.stats == {"reads": 1, "writes": 1}
        finally:
            ssd.close()

    def test_added_latency_is_paid(self):
        import time

        ssd = SimulatedSSD(read_latency=0.002)
        try:
            ssd.allocate_page()
            start = time.perf_counter()
            ssd.read_page(0)
            assert time.perf_counter() - start >= 0.002
        finally:
            ssd.close()


class TestSlottedPage:
    def test_insert_read(self):
        page = SlottedPage(4096)
        slot = page.insert({"a": 1})
        assert page.read(slot) == {"a": 1}

    def test_encode_decode_roundtrip(self):
        page = SlottedPage(4096)
        slots = [page.insert(f"record-{i}" * 5) for i in range(10)]
        page.delete(slots[3])
        page.page_lsn = 77
        image = page.encode()
        assert len(image) == 4096
        restored = SlottedPage(4096, image)
        assert restored.page_lsn == 77
        assert restored.read(slots[0]) == "record-0" * 5
        assert not restored.is_live(slots[3])
        with pytest.raises(KeyError):
            restored.read(slots[3])

    def test_update_in_place(self):
        page = SlottedPage(4096)
        slot = page.insert("small")
        page.update(slot, "other")
        assert page.read(slot) == "other"

    def test_update_growth_beyond_free_space_rejected(self):
        page = SlottedPage(512)
        slot = page.insert("x")
        with pytest.raises(PageFullError):
            page.update(slot, "y" * 600)

    def test_page_full_on_insert(self):
        page = SlottedPage(512)
        with pytest.raises(PageFullError):
            for i in range(100):
                page.insert("payload" * 10)

    def test_free_bytes_decrease(self):
        page = SlottedPage(4096)
        before = page.free_bytes()
        page.insert("data")
        assert page.free_bytes() < before

    def test_delete_twice_rejected(self):
        page = SlottedPage(4096)
        slot = page.insert(1)
        page.delete(slot)
        with pytest.raises(KeyError):
            page.delete(slot)

    def test_bad_slot_rejected(self):
        page = SlottedPage(4096)
        with pytest.raises(KeyError):
            page.read(5)


class TestBufferPool:
    def _make(self, capacity=4):
        ssd = SimulatedSSD()
        pool = BufferPool(ssd, capacity=capacity)
        pages = [ssd.allocate_page() for _ in range(10)]
        for page_id in pages:
            ssd.write_page(page_id, SlottedPage(ssd.page_size).encode())
        return ssd, pool, pages

    def test_hit_after_first_access(self):
        ssd, pool, pages = self._make()
        try:
            pool.pin(pages[0])
            pool.unpin(pages[0])
            pool.pin(pages[0])
            pool.unpin(pages[0])
            assert pool.stats["hits"] == 1
            assert pool.stats["misses"] == 1
        finally:
            ssd.close()

    def test_lru_eviction(self):
        ssd, pool, pages = self._make(capacity=2)
        try:
            for page_id in pages[:3]:
                pool.pin(page_id)
                pool.unpin(page_id)
            assert pool.stats["evictions"] == 1
            # pages[0] was LRU and must have been evicted.
            pool.pin(pages[0])
            assert pool.stats["misses"] == 4
        finally:
            ssd.close()

    def test_pinned_pages_not_evicted(self):
        ssd, pool, pages = self._make(capacity=2)
        try:
            pool.pin(pages[0])
            pool.pin(pages[1])
            with pytest.raises(BufferPoolFullError):
                pool.pin(pages[2])
        finally:
            ssd.close()

    def test_dirty_writeback_on_eviction(self):
        ssd, pool, pages = self._make(capacity=1)
        try:
            page = pool.pin(pages[0])
            slot = page.insert("persisted")
            pool.unpin(pages[0], dirty=True)
            pool.pin(pages[1])  # evicts pages[0], forcing writeback
            pool.unpin(pages[1])
            assert pool.stats["writebacks"] == 1
            restored = SlottedPage(ssd.page_size, ssd.read_page(pages[0]))
            assert restored.read(slot) == "persisted"
        finally:
            ssd.close()

    def test_flush_all(self):
        ssd, pool, pages = self._make()
        try:
            page = pool.pin(pages[0])
            slot = page.insert("flushed")
            pool.unpin(pages[0], dirty=True)
            pool.flush_all()
            restored = SlottedPage(ssd.page_size, ssd.read_page(pages[0]))
            assert restored.read(slot) == "flushed"
        finally:
            ssd.close()

    def test_unpin_without_pin_rejected(self):
        ssd, pool, pages = self._make()
        try:
            with pytest.raises(ValueError):
                pool.unpin(pages[0])
        finally:
            ssd.close()

    def test_hit_rate(self):
        ssd, pool, pages = self._make()
        try:
            assert pool.hit_rate == 0.0
            pool.pin(pages[0]); pool.unpin(pages[0])
            pool.pin(pages[0]); pool.unpin(pages[0])
            assert pool.hit_rate == 0.5
        finally:
            ssd.close()


class TestWriteAheadLog:
    def test_append_and_replay(self):
        log = WriteAheadLog()
        try:
            log.append(1, "insert", "t", key=1, value="a")
            log.append(1, "update", "t", key=1, value="b")
            log.commit(1)
            records = list(log.records())
            assert [r.op for r in records] == ["insert", "update", "commit"]
            assert records[1].value == "b"
        finally:
            log.close()

    def test_lsns_monotone(self):
        log = WriteAheadLog()
        try:
            lsns = [log.append(1, "insert", "t", key=i) for i in range(5)]
            assert lsns == sorted(lsns)
            assert len(set(lsns)) == 5
        finally:
            log.close()

    def test_unforced_records_not_durable(self):
        log = WriteAheadLog()
        try:
            log.append(1, "insert", "t", key=1, value="x")
            # records() reads the durable file only after an explicit
            # flush inside; pending buffer is separate until force().
            assert list(log.records()) == []
            log.force()
            assert len(list(log.records())) == 1
        finally:
            log.close()

    def test_invalid_op_rejected(self):
        log = WriteAheadLog()
        try:
            with pytest.raises(ValueError):
                log.append(1, "explode")
        finally:
            log.close()

    def test_force_counted(self):
        log = WriteAheadLog()
        try:
            log.commit(1)
            assert log.stats["forces"] == 1
        finally:
            log.close()


class TestLockManager:
    def test_shared_locks_compatible(self):
        mgr = LockManager()
        mgr.acquire_shared(1, "a")
        mgr.acquire_shared(2, "a")  # no deadlock, both hold it
        assert "a" in mgr.held_by(1) and "a" in mgr.held_by(2)

    def test_exclusive_blocks_shared(self):
        mgr = LockManager(timeout=0.05)
        mgr.acquire_exclusive(1, "a")
        with pytest.raises(LockTimeout):
            mgr.acquire_shared(2, "a")

    def test_shared_blocks_exclusive(self):
        mgr = LockManager(timeout=0.05)
        mgr.acquire_shared(1, "a")
        with pytest.raises(LockTimeout):
            mgr.acquire_exclusive(2, "a")

    def test_upgrade_own_shared_to_exclusive(self):
        mgr = LockManager(timeout=0.05)
        mgr.acquire_shared(1, "a")
        mgr.acquire_exclusive(1, "a")  # upgrade must succeed
        with pytest.raises(LockTimeout):
            mgr.acquire_shared(2, "a")

    def test_release_all_wakes_waiters(self):
        mgr = LockManager(timeout=2.0)
        mgr.acquire_exclusive(1, "a")
        acquired = threading.Event()

        def waiter():
            mgr.acquire_exclusive(2, "a")
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        mgr.release_all(1)
        assert acquired.wait(3.0)
        thread.join(1.0)

    def test_reentrant_acquisition(self):
        mgr = LockManager()
        mgr.acquire_exclusive(1, "a")
        mgr.acquire_exclusive(1, "a")
        mgr.acquire_shared(1, "a")  # exclusive implies shared

    def test_deadlock_resolved_by_timeout(self):
        mgr = LockManager(timeout=0.1)
        mgr.acquire_exclusive(1, "a")
        mgr.acquire_exclusive(2, "b")
        results = []

        def t1():
            try:
                mgr.acquire_exclusive(1, "b")
                results.append("t1-ok")
            except LockTimeout:
                results.append("t1-timeout")

        def t2():
            try:
                mgr.acquire_exclusive(2, "a")
                results.append("t2-ok")
            except LockTimeout:
                results.append("t2-timeout")

        threads = [threading.Thread(target=t1), threading.Thread(target=t2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(5.0)
        assert "t1-timeout" in results or "t2-timeout" in results

    def test_validates_timeout(self):
        with pytest.raises(ValueError):
            LockManager(timeout=0.0)

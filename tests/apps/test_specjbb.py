"""Tests for the specjbb wholesale-company middleware application."""

import threading

import pytest

from repro.apps.specjbb import Company, JbbRequest, SpecJbbApp
from repro.apps.specjbb import transactions as txn


@pytest.fixture()
def company():
    return Company(
        n_warehouses=2, n_districts=2, customers_per_district=10,
        n_items=100, seed=0,
    )


class TestCompanyModel:
    def test_population(self, company):
        assert len(company.warehouses) == 2
        wh = company.warehouse(1)
        assert len(wh.customers) == 2
        assert len(wh.customers[1]) == 10
        assert len(wh.stock) == 100

    def test_prices_positive(self, company):
        assert all(p > 0 for p in company.item_prices.values())

    def test_unknown_lookups(self, company):
        with pytest.raises(KeyError):
            company.warehouse(99)
        with pytest.raises(KeyError):
            company.price(9999)

    def test_validation(self):
        with pytest.raises(ValueError):
            Company(n_warehouses=0)


class TestTransactions:
    def test_new_order_charges_customer(self, company):
        items = [{"item_id": 1, "quantity": 2}, {"item_id": 2, "quantity": 1}]
        result = txn.new_order(company, 1, 1, 1, items)
        expected = round(company.price(1) * 2 + company.price(2), 2)
        assert result["total"] == pytest.approx(expected)
        customer = company.warehouse(1).customers[1][1]
        assert customer.balance == pytest.approx(expected)
        assert customer.order_history == [result["order_id"]]

    def test_new_order_ids_increment(self, company):
        items = [{"item_id": 1, "quantity": 1}]
        first = txn.new_order(company, 1, 1, 1, items)["order_id"]
        second = txn.new_order(company, 1, 1, 2, items)["order_id"]
        assert second == first + 1

    def test_new_order_restocks_when_low(self, company):
        wh = company.warehouse(1)
        wh.stock[5] = 6
        txn.new_order(company, 1, 1, 1, [{"item_id": 5, "quantity": 3}])
        assert wh.stock[5] == 6 - 3 + 100

    def test_new_order_requires_items(self, company):
        with pytest.raises(ValueError):
            txn.new_order(company, 1, 1, 1, [])

    def test_payment_updates_balance_and_ytd(self, company):
        result = txn.process_payment(company, 1, 1, 3, 50.0)
        assert result["balance"] == pytest.approx(-50.0)
        assert company.warehouse(1).ytd == pytest.approx(50.0)
        customer = company.warehouse(1).customers[1][3]
        assert customer.payment_count == 1

    def test_payment_rejects_non_positive(self, company):
        with pytest.raises(ValueError):
            txn.process_payment(company, 1, 1, 1, 0.0)

    def test_order_status_empty_history(self, company):
        result = txn.order_status(company, 1, 1, 4)
        assert result["order_id"] is None

    def test_order_status_reflects_latest_order(self, company):
        items = [{"item_id": 1, "quantity": 1}]
        txn.new_order(company, 1, 1, 5, items)
        latest = txn.new_order(company, 1, 1, 5, items)["order_id"]
        status = txn.order_status(company, 1, 1, 5)
        assert status["order_id"] == latest
        assert status["delivered"] is False

    def test_delivery_processes_fifo_batch(self, company):
        items = [{"item_id": 1, "quantity": 1}]
        ids = [txn.new_order(company, 1, 1, 1, items)["order_id"] for _ in range(3)]
        result = txn.process_deliveries(company, 1, carrier_id=7, batch_size=2)
        assert result["delivered"] == 2
        orders = company.warehouse(1).orders
        assert orders[ids[0]].delivered and orders[ids[1]].delivered
        assert not orders[ids[2]].delivered
        assert orders[ids[0]].carrier_id == 7

    def test_delivery_settles_balance(self, company):
        items = [{"item_id": 1, "quantity": 1}]
        total = txn.new_order(company, 1, 2, 1, items)["total"]
        customer = company.warehouse(1).customers[2][1]
        assert customer.balance == pytest.approx(total)
        txn.process_deliveries(company, 1, carrier_id=1, batch_size=100)
        assert customer.balance == pytest.approx(0.0)

    def test_stock_report_counts_low_items(self, company):
        wh = company.warehouse(1)
        low = sum(1 for q in wh.stock.values() if q < 80)
        assert txn.stock_report(company, 1, 80)["low_stock_items"] == low

    def test_customer_report_aggregates(self, company):
        txn.process_payment(company, 2, 1, 1, 25.0)
        report = txn.customer_report(company, 2, 1)
        assert report["customers"] == 10
        assert report["total_balance"] == pytest.approx(-25.0)


class TestSpecJbbApp:
    @pytest.fixture(scope="class")
    def app(self):
        app = SpecJbbApp(n_warehouses=2, n_districts=2,
                         customers_per_district=20, n_items=200)
        app.setup()
        return app

    def test_processes_full_mix(self, app):
        client = app.make_client(seed=0)
        kinds = set()
        for _ in range(300):
            request = client.next_request()
            kinds.add(request.kind)
            result = app.process(request)
            assert isinstance(result, dict)
        assert kinds == {
            "new_order", "payment", "order_status",
            "delivery", "stock_report", "customer_report",
        }

    def test_unknown_kind_rejected(self, app):
        with pytest.raises(ValueError):
            app.process(JbbRequest("mine_bitcoin", {}))

    def test_thread_safe_under_concurrency(self, app):
        errors = []

        def worker(seed):
            client = app.make_client(seed=seed)
            try:
                for _ in range(100):
                    app.process(client.next_request())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not errors

    def test_requires_setup(self):
        with pytest.raises(RuntimeError):
            SpecJbbApp().process(JbbRequest("payment", {}))

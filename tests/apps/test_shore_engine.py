"""Tests for the shore engine: 2PL transactions, recovery, TPC-C."""

import threading

import pytest

from repro.apps.shore import ShoreApp, ShoreEngine
from repro.apps.silo import TransactionAborted
from repro.workloads import TpccScale, TpccTransaction, TpccWorkload


@pytest.fixture()
def engine():
    eng = ShoreEngine(buffer_capacity=16)
    yield eng
    eng.close()


class TestShoreTransactions:
    def test_insert_read(self, engine):
        table = engine.create_table("t")
        engine.run(lambda txn: txn.insert(table, 1, {"v": "one"}))
        assert engine.run(lambda txn: txn.read(table, 1)) == {"v": "one"}

    def test_update(self, engine):
        table = engine.create_table("t")
        engine.run(lambda txn: txn.insert(table, 1, "a"))
        engine.run(lambda txn: txn.write(table, 1, "b"))
        assert engine.run(lambda txn: txn.read(table, 1)) == "b"

    def test_delete(self, engine):
        table = engine.create_table("t")
        engine.run(lambda txn: txn.insert(table, 1, "x"))
        engine.run(lambda txn: txn.delete(table, 1))
        assert engine.run(lambda txn: txn.read(table, 1)) is None

    def test_read_your_writes(self, engine):
        table = engine.create_table("t")

        def body(txn):
            txn.insert(table, 5, "mine")
            return txn.read(table, 5)

        assert engine.run(body) == "mine"

    def test_abort_discards_buffered_effects(self, engine):
        table = engine.create_table("t")
        txn = engine.transaction()
        txn.insert(table, 1, "ghost")
        txn.abort()
        assert engine.run(lambda t: t.read(table, 1)) is None

    def test_scan_range_and_partition(self, engine):
        table = engine.create_table("t", lambda key: key[0])
        for d in (1, 2):
            for o in (1, 2, 3):
                engine.run(lambda t, d=d, o=o: t.insert(table, (d, o), o * d))
        result = engine.run(lambda t: t.scan(table, 1, (1, 2), (1, 99)))
        assert [k for k, _ in result] == [(1, 2), (1, 3)]

    def test_scan_includes_own_inserts(self, engine):
        table = engine.create_table("t", lambda key: 0)

        def body(txn):
            txn.insert(table, 7, "new")
            return txn.scan(table, 0, 0, 100)

        assert (7, "new") in engine.run(body)

    def test_last_key(self, engine):
        table = engine.create_table("t", lambda key: key[0])
        for o in (4, 9, 2):
            engine.run(lambda t, o=o: t.insert(table, (1, o), o))
        assert table.last_key(1) == (1, 9)
        assert table.last_key(1, below=(1, 9)) == (1, 4)

    def test_record_relocation_on_growth(self, engine):
        # Fill a page with several records, then grow one so it no
        # longer fits in place: it must relocate to a fresh page and
        # stay reachable through the index.
        table = engine.create_table("t")
        for i in range(4):
            engine.run(lambda t, i=i: t.insert(table, i, "y" * 800))
        engine.run(lambda t: t.write(table, 0, "z" * 2500))
        assert engine.run(lambda t: t.read(table, 0)) == "z" * 2500
        for i in range(1, 4):
            assert engine.run(lambda t, i=i: t.read(table, i)) == "y" * 800

    def test_write_conflicts_timeout_to_abort(self, engine):
        engine.locks.timeout = 0.05
        table = engine.create_table("t", lambda key: key)
        engine.run(lambda t: t.insert(table, 1, 0))
        holder = engine.transaction()
        holder.write(table, 1, 99)  # holds exclusive partition lock
        with pytest.raises(TransactionAborted):
            contender = engine.transaction()
            contender.write(table, 1, 100)
        holder.abort()

    def test_two_phase_holds_until_commit(self, engine):
        engine.locks.timeout = 0.05
        table = engine.create_table("t", lambda key: key)
        engine.run(lambda t: t.insert(table, 1, 0))
        txn = engine.transaction()
        txn.read(table, 1)
        # Reader still holds its shared lock; a writer must fail.
        writer = engine.transaction()
        with pytest.raises(TransactionAborted):
            writer.write(table, 1, 5)
        txn.commit()  # releases
        engine.run(lambda t: t.write(table, 1, 5))
        assert engine.run(lambda t: t.read(table, 1)) == 5

    def test_concurrent_counter_increments(self, engine):
        table = engine.create_table("counter", lambda key: key)
        table.load("c", 0)
        n_threads, n_incr = 4, 30

        def worker():
            for _ in range(n_incr):
                def body(txn):
                    txn.write(table, "c", txn.read(table, "c") + 1)
                engine.run(body, max_retries=10_000)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120.0)
        assert engine.run(lambda t: t.read(table, "c")) == n_threads * n_incr


class TestDurability:
    def test_committed_data_survives_via_redo(self, tmp_path):
        db_path = str(tmp_path / "data.db")
        log_path = str(tmp_path / "wal.log")
        engine = ShoreEngine(db_path=db_path, log_path=log_path)
        table = engine.create_table("t")
        engine.run(lambda txn: txn.insert(table, 1, "durable"))
        engine.run(lambda txn: txn.insert(table, 2, "also"))
        engine.run(lambda txn: txn.write(table, 1, "updated"))
        engine.run(lambda txn: txn.delete(table, 2))
        # Simulate a crash: drop the engine WITHOUT flushing pages.
        engine.log.force()
        uncommitted = engine.transaction()
        uncommitted.insert(table, 3, "never-committed")
        # (no commit)

        recovered = ShoreEngine(db_path=str(tmp_path / "fresh.db"),
                                log_path=log_path)
        rtable = recovered.create_table("t")
        n = recovered.recover()
        assert n >= 3
        assert recovered.run(lambda txn: txn.read(rtable, 1)) == "updated"
        assert recovered.run(lambda txn: txn.read(rtable, 2)) is None
        assert recovered.run(lambda txn: txn.read(rtable, 3)) is None
        recovered.close()

    def test_commit_forces_log(self, tmp_path):
        engine = ShoreEngine(log_path=str(tmp_path / "wal.log"))
        table = engine.create_table("t")
        before = engine.log.stats["forces"]
        engine.run(lambda txn: txn.insert(table, 1, "x"))
        assert engine.log.stats["forces"] == before + 1
        engine.close()

    def test_read_only_transaction_does_not_force(self, tmp_path):
        engine = ShoreEngine(log_path=str(tmp_path / "wal.log"))
        table = engine.create_table("t")
        engine.run(lambda txn: txn.insert(table, 1, "x"))
        before = engine.log.stats["forces"]
        engine.run(lambda txn: txn.read(table, 1))
        assert engine.log.stats["forces"] == before
        engine.close()


class TestShoreTpcc:
    @pytest.fixture(scope="class")
    def app(self):
        app = ShoreApp(scale=TpccScale.small(), buffer_capacity=64)
        app.setup()
        yield app
        app.teardown()

    def test_runs_the_standard_mix(self, app):
        workload = TpccWorkload(scale=TpccScale.small(), seed=5)
        for _ in range(150):
            result = app.process(workload.next_transaction())
            assert isinstance(result, dict)
        assert app.engine.stats["commits"] >= 150

    def test_buffer_pool_misses_occur(self, app):
        # The pool is smaller than the dataset by design: requests must
        # take page misses (the long-tail mechanism).
        assert app.engine.pool.stats["misses"] > 0

    def test_new_order_and_status_agree(self, app):
        order = app.process(
            TpccTransaction(
                "new_order",
                {
                    "w_id": 1, "d_id": 1, "c_id": 1,
                    "lines": [{"item_id": 1, "supply_w_id": 1, "quantity": 2}],
                },
            )
        )
        status = app.process(
            TpccTransaction("order_status", {"w_id": 1, "d_id": 1, "c_id": 1})
        )
        assert status["order_id"] == order["order_id"]

    def test_concurrent_workers(self, app):
        errors = []

        def worker(seed):
            workload = TpccWorkload(scale=TpccScale.small(), seed=seed)
            try:
                for _ in range(30):
                    app.process(workload.next_transaction())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(180.0)
        assert not errors

    def test_requires_setup(self):
        with pytest.raises(RuntimeError):
            ShoreApp().process(TpccTransaction("delivery", {"w_id": 1, "carrier_id": 1}))


class TestCheckpointRecovery:
    def test_restart_from_checkpoint_without_replaying_everything(self, tmp_path):
        db_path = str(tmp_path / "data.db")
        log_path = str(tmp_path / "wal.log")
        engine = ShoreEngine(db_path=db_path, log_path=log_path)
        table = engine.create_table("t")
        for i in range(20):
            engine.run(lambda t, i=i: t.insert(table, i, f"v{i}"))
        engine.checkpoint()
        # Post-checkpoint activity: updates, an insert, a delete.
        engine.run(lambda t: t.write(table, 3, "updated"))
        engine.run(lambda t: t.insert(table, 99, "late"))
        engine.run(lambda t: t.delete(table, 7))
        engine.log.force()

        # Restart against the SAME database file (checkpoint flushed it)
        # plus the log tail.
        restarted = ShoreEngine(db_path=db_path, log_path=log_path)
        rtable = restarted.create_table("t")
        replayed = restarted.recover()
        # Only the 3 post-checkpoint transactions replay.
        assert replayed == 3
        assert restarted.run(lambda t: t.read(rtable, 3)) == "updated"
        assert restarted.run(lambda t: t.read(rtable, 99)) == "late"
        assert restarted.run(lambda t: t.read(rtable, 7)) is None
        for i in (0, 5, 19):
            if i != 7:
                assert restarted.run(
                    lambda t, i=i: t.read(rtable, i)
                ) == f"v{i}"
        assert len(rtable) == 20  # 20 inserted +1 late -1 deleted
        restarted.close()
        engine.close()

    def test_rebuild_indexes_scans_pages(self, tmp_path):
        db_path = str(tmp_path / "data.db")
        engine = ShoreEngine(db_path=db_path, log_path=str(tmp_path / "w.log"))
        a = engine.create_table("a")
        b = engine.create_table("b", lambda key: key[0])
        engine.run(lambda t: t.insert(a, 1, "x"))
        engine.run(lambda t: t.insert(b, (1, 2), "y"))
        engine.pool.flush_all()

        restarted = ShoreEngine(db_path=db_path,
                                log_path=str(tmp_path / "w2.log"))
        ra = restarted.create_table("a")
        rb = restarted.create_table("b", lambda key: key[0])
        indexed = restarted.rebuild_indexes()
        assert indexed == 2
        assert restarted.run(lambda t: t.read(ra, 1)) == "x"
        assert restarted.run(lambda t: t.read(rb, (1, 2))) == "y"
        # Partition structures rebuilt too (scans work).
        assert restarted.run(lambda t: t.scan(rb, 1, (1, 0), (1, 9))) == [
            ((1, 2), "y")
        ]
        restarted.close()
        engine.close()

    def test_checkpoint_makes_unlogged_loads_durable(self, tmp_path):
        # Initial population bypasses the WAL; a checkpoint makes it
        # recoverable anyway (pages flushed + marker in log).
        db_path = str(tmp_path / "data.db")
        log_path = str(tmp_path / "wal.log")
        engine = ShoreEngine(db_path=db_path, log_path=log_path)
        table = engine.create_table("t")
        table.load(1, "preloaded")
        engine.checkpoint()

        restarted = ShoreEngine(db_path=db_path, log_path=log_path)
        rtable = restarted.create_table("t")
        restarted.recover()
        assert restarted.run(lambda t: t.read(rtable, 1)) == "preloaded"
        restarted.close()
        engine.close()

"""Tests for the sphinx speech-recognition application."""

import numpy as np
import pytest

from repro.apps.sphinx import (
    STATES_PER_PHONE,
    AcousticModel,
    SphinxApp,
    UtteranceGenerator,
    ViterbiDecoder,
    build_lexicon,
)


class TestLexicon:
    def test_covers_letters_and_digits(self):
        lexicon = build_lexicon()
        assert len(lexicon) == 36
        assert "a" in lexicon and "zero" in lexicon

    def test_all_phones_valid(self):
        build_lexicon()  # raises on invalid phones


class TestAcousticModel:
    @pytest.fixture(scope="class")
    def model(self):
        return AcousticModel(build_lexicon(), seed=0)

    def test_network_dimensions(self, model):
        net = model.network()
        total_phones = sum(len(p) for p in build_lexicon().values())
        assert net.n_states == total_phones * STATES_PER_PHONE
        assert len(net.word_entry) == len(net.words) == 36

    def test_word_spans_contiguous(self, model):
        net = model.network()
        for w, word in enumerate(net.words):
            n_phones = len(build_lexicon()[word])
            assert (
                net.word_exit[w] - net.word_entry[w] + 1
                == n_phones * STATES_PER_PHONE
            )

    def test_same_phone_shares_means_across_words(self, model):
        net = model.network()
        words = list(net.words)
        # 'b' = [b, iy]; 'e' = [iy]: the iy states should be close.
        b_idx, e_idx = words.index("b"), words.index("e")
        b_iy_state = net.word_entry[b_idx] + STATES_PER_PHONE  # second phone
        e_iy_state = net.word_entry[e_idx]
        dist = np.linalg.norm(
            net.means[b_iy_state].mean(axis=0) - net.means[e_iy_state].mean(axis=0)
        )
        assert dist < 2.0  # same phone cluster, only mixture jitter apart

    def test_emission_logprobs_shape(self, model):
        net = model.network()
        frames = np.zeros((5, net.dim))
        ll = model.emission_logprobs(frames)
        assert ll.shape == (5, net.n_states)
        assert np.all(np.isfinite(ll))

    def test_emission_active_mask(self, model):
        net = model.network()
        frames = np.zeros((2, net.dim))
        active = np.zeros(net.n_states, dtype=bool)
        active[:6] = True
        ll = model.emission_logprobs(frames, active)
        assert np.all(np.isfinite(ll[:, :6]))
        assert np.all(np.isneginf(ll[:, 6:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            AcousticModel({}, seed=0)
        with pytest.raises(ValueError):
            AcousticModel(build_lexicon(), self_loop_prob=1.5)


class TestUtteranceGenerator:
    @pytest.fixture(scope="class")
    def model(self):
        return AcousticModel(build_lexicon(), seed=0)

    def test_transcript_lengths(self, model):
        gen = UtteranceGenerator(model, min_words=2, max_words=5, seed=1)
        for _ in range(20):
            utt = gen.next_utterance()
            assert 2 <= len(utt.transcript) <= 5
            assert utt.frames.shape[1] == model.dim

    def test_longer_transcripts_more_frames(self, model):
        short_gen = UtteranceGenerator(model, min_words=1, max_words=1, seed=2)
        long_gen = UtteranceGenerator(model, min_words=8, max_words=8, seed=2)
        short_frames = np.mean(
            [short_gen.next_utterance().frames.shape[0] for _ in range(10)]
        )
        long_frames = np.mean(
            [long_gen.next_utterance().frames.shape[0] for _ in range(10)]
        )
        assert long_frames > short_frames * 3

    def test_validation(self, model):
        with pytest.raises(ValueError):
            UtteranceGenerator(model, min_words=0)
        with pytest.raises(ValueError):
            UtteranceGenerator(model, mean_dwell=0.5)


class TestViterbiDecoder:
    @pytest.fixture(scope="class")
    def app(self):
        app = SphinxApp(seed=0)
        app.setup()
        return app

    def test_recognizes_clean_speech(self, app):
        # With low noise, word accuracy should be high.
        gen = UtteranceGenerator(app.model, noise=0.1, seed=3,
                                 min_words=2, max_words=4)
        correct = total = 0
        for _ in range(10):
            utt = gen.next_utterance()
            result = app.process(utt.frames)
            total += len(utt.transcript)
            # position-insensitive word accuracy (transcript alignment
            # is overkill for a smoke-level accuracy bound)
            hits = len(set(result.words) & set(utt.transcript))
            correct += min(hits, len(utt.transcript))
        assert correct / total > 0.5

    def test_decode_returns_score_and_work(self, app):
        gen = UtteranceGenerator(app.model, seed=4)
        utt = gen.next_utterance()
        result = app.process(utt.frames)
        assert result.active_states > 0
        assert np.isfinite(result.score)
        assert len(result.words) >= 1

    def test_narrow_beam_less_work(self, app):
        gen = UtteranceGenerator(app.model, seed=5)
        utt = gen.next_utterance()
        wide = ViterbiDecoder(app.model, beam=200.0).decode(utt.frames)
        narrow = ViterbiDecoder(app.model, beam=10.0).decode(utt.frames)
        assert narrow.active_states < wide.active_states

    def test_empty_utterance(self, app):
        decoder = ViterbiDecoder(app.model)
        result = decoder.decode(np.zeros((0, app.model.dim)))
        assert result.words == ()

    def test_shape_validation(self, app):
        decoder = ViterbiDecoder(app.model)
        with pytest.raises(ValueError):
            decoder.decode(np.zeros((5, 2)))

    def test_beam_validation(self, app):
        with pytest.raises(ValueError):
            ViterbiDecoder(app.model, beam=0.0)

    def test_requires_setup(self):
        with pytest.raises(RuntimeError):
            SphinxApp().process(np.zeros((1, 13)))

"""Property-based tests for the two database engines.

Both engines must be sequentially equivalent to a plain dict per
table, under arbitrary interleavings of insert/update/delete/read
within and across transactions — and shore must additionally recover
exactly the committed state from its log.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.shore import ShoreEngine
from repro.apps.silo import Database

# An operation: (kind, key, value) applied inside its own transaction.
_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete", "read"]),
        st.integers(min_value=0, max_value=20),
        st.integers(),
    ),
    max_size=40,
)


def apply_sequentially(run, table, ops):
    """Apply ops via single-op transactions; mirror into a dict."""
    reference = {}
    for kind, key, value in ops:
        if kind == "insert":
            if key in reference:
                continue  # engines reject duplicate inserts
            run(lambda t, k=key, v=value: t.insert(table, k, v))
            reference[key] = value
        elif kind == "update":
            if key not in reference:
                continue
            run(lambda t, k=key, v=value: t.write(table, k, v))
            reference[key] = value
        elif kind == "delete":
            if key not in reference:
                continue
            run(lambda t, k=key: t.delete(table, k))
            del reference[key]
        else:  # read
            observed = run(lambda t, k=key: t.read(table, k))
            assert observed == reference.get(key)
    return reference


class TestSiloSequentialEquivalence:
    @given(_ops)
    @settings(max_examples=40, deadline=None)
    def test_matches_dict(self, ops):
        db = Database()
        table = db.create_table("t", lambda key: 0)
        reference = apply_sequentially(db.run, table, ops)
        for key in range(21):
            assert db.run(lambda t, k=key: t.read(table, k)) == reference.get(key)
        # Scans agree too (ordered).
        scanned = db.run(lambda t: t.scan(table, 0, 0, 100))
        assert scanned == sorted(reference.items())


class TestShoreSequentialEquivalence:
    @given(ops=_ops)
    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_matches_dict_and_recovers(self, tmp_path_factory, ops):
        tmp = tmp_path_factory.mktemp("shore-prop")
        log_path = str(tmp / "wal.log")
        engine = ShoreEngine(
            buffer_capacity=8,  # tiny: force evictions mid-run
            db_path=str(tmp / "data.db"),
            log_path=log_path,
        )
        table = engine.create_table("t", lambda key: 0)
        reference = apply_sequentially(engine.run, table, ops)
        for key in range(21):
            assert engine.run(
                lambda t, k=key: t.read(table, k)
            ) == reference.get(key)

        # Crash (no page flush) and redo-recover into a fresh engine.
        engine.log.force()
        recovered = ShoreEngine(
            db_path=str(tmp / "fresh.db"), log_path=log_path
        )
        rtable = recovered.create_table("t", lambda key: 0)
        recovered.recover()
        for key, value in reference.items():
            assert recovered.run(
                lambda t, k=key: t.read(rtable, k)
            ) == value
        scanned = recovered.run(lambda t: t.scan(rtable, 0, 0, 100))
        assert scanned == sorted(reference.items())
        recovered.close()
        engine.close()

"""Chaos scenarios: plan composition, scoping, timed playback.

Satellite of the failure-aware-serving PR: :meth:`FaultPlan.merged`
with ``server_ids`` scoping, and the recovery-window contract — a
scenario phase that ends mid-run *stops injecting*, live (driver
thread) and simulated (engine events).
"""

import time

import pytest

from repro.core import WallClock
from repro.faults import (
    FaultPhase,
    FaultPlan,
    Scenario,
    ScenarioDriver,
    ScenarioInjector,
    crash_recover,
    error_burst,
    retry_storm,
    scenario_names,
    slow_replica,
)


class TestMergedScoping:
    def test_scoped_ids_union(self):
        a = FaultPlan(error_rate=0.1, server_ids=(0,))
        b = FaultPlan(error_rate=0.1, server_ids=(2, 1))
        assert a.merged(b).server_ids == (0, 1, 2)

    def test_unscoped_side_wins_the_union(self):
        scoped = FaultPlan(error_rate=0.1, server_ids=(0,))
        everywhere = FaultPlan(drop_rate=0.1)  # server_ids=None
        assert scoped.merged(everywhere).server_ids is None
        assert everywhere.merged(scoped).server_ids is None

    def test_applies_to(self):
        plan = FaultPlan(error_rate=0.5, server_ids=(1, 3))
        assert plan.applies_to(1)
        assert plan.applies_to(3)
        assert not plan.applies_to(0)
        assert FaultPlan(error_rate=0.5).applies_to(7)

    def test_server_ids_normalized(self):
        plan = FaultPlan(error_rate=0.5, server_ids=(3, 1, 3))
        assert plan.server_ids == (1, 3)

    def test_rejects_empty_or_negative_ids(self):
        with pytest.raises(ValueError):
            FaultPlan(error_rate=0.5, server_ids=())
        with pytest.raises(ValueError):
            FaultPlan(error_rate=0.5, server_ids=(-1,))


class TestScenarioData:
    def test_phases_sorted_and_horizon(self):
        scenario = Scenario(
            name="x",
            phases=(
                FaultPhase(5.0, 2.0, FaultPlan(error_rate=0.5)),
                FaultPhase(1.0, 1.0, FaultPlan(drop_rate=0.5)),
            ),
        )
        assert [p.start for p in scenario.phases] == [1.0, 5.0]
        assert scenario.horizon == 7.0
        assert scenario.boundaries() == (1.0, 2.0, 5.0, 7.0)

    def test_plan_at_inside_and_outside_windows(self):
        scenario = error_burst(start=2.0, duration=3.0, error_rate=0.8)
        assert scenario.plan_at(1.0).is_noop
        assert scenario.plan_at(2.0).error_rate == 0.8
        assert scenario.plan_at(4.999).error_rate == 0.8
        assert scenario.plan_at(5.0).is_noop  # end is exclusive

    def test_overlapping_phases_merge(self):
        scenario = Scenario(
            name="x",
            phases=(
                FaultPhase(0.0, 10.0, FaultPlan(error_rate=0.5,
                                                server_ids=(0,))),
                FaultPhase(5.0, 10.0, FaultPlan(error_rate=0.5,
                                                server_ids=(1,))),
            ),
        )
        assert scenario.plan_at(7.0).error_rate == pytest.approx(0.75)
        assert scenario.plan_at(7.0).server_ids == (0, 1)
        assert scenario.plan_at(12.0).server_ids == (1,)

    def test_standing_base_plan_overlaid(self):
        scenario = error_burst(start=1.0, duration=1.0, error_rate=0.5)
        base = FaultPlan(drop_rate=0.1)
        merged = scenario.plan_at(1.5, base)
        assert merged.drop_rate == pytest.approx(0.1)
        assert merged.error_rate == pytest.approx(0.5)
        # Outside the window only the standing plan remains.
        assert scenario.plan_at(3.0, base).drop_rate == pytest.approx(0.1)
        # A noop base is ignored so phase scoping survives.
        assert scenario.plan_at(1.5, FaultPlan()) == scenario.plan_at(1.5)

    def test_builtin_factories(self):
        assert set(scenario_names()) == {
            "slow_replica", "crash_recover", "error_burst", "retry_storm",
        }
        assert slow_replica(server_id=1).phases[0].plan.server_ids == (1,)
        assert crash_recover().phases[0].plan.worker_crash_rate == 1.0
        assert retry_storm(pause=0.4).phases[0].plan.worker_pause == 0.4


class TestScenarioInjector:
    def test_recovery_window_stops_injection(self):
        # Phase [0, 1): error_rate=1.0 on server 0 only. After
        # advance_to(1.0) the injector must stop injecting even though
        # the run continues — the recovery-window contract.
        scenario = error_burst(
            start=0.0, duration=1.0, error_rate=1.0, server_ids=(0,)
        )
        injector = ScenarioInjector(scenario, seed=3)
        injector.start_run(0.0)
        view0, view1 = injector.for_server(0), injector.for_server(1)
        assert view0.app_error()
        assert not view1.app_error()  # scoped out, consumes no draw
        injector.advance_to(1.0)
        assert injector.plan.is_noop
        assert not view0.app_error()
        assert injector.counts()["phase_changes"] == 1

    def test_scope_recheck_follows_phase_changes(self):
        # Target moves from replica 0 to replica 1 across phases; the
        # per-server views must follow without being rebuilt.
        scenario = Scenario(
            name="moving",
            phases=(
                FaultPhase(0.0, 1.0, FaultPlan(error_rate=1.0,
                                               server_ids=(0,))),
                FaultPhase(1.0, 1.0, FaultPlan(error_rate=1.0,
                                               server_ids=(1,))),
            ),
        )
        injector = ScenarioInjector(scenario, seed=3)
        injector.start_run(0.0)
        view0, view1 = injector.for_server(0), injector.for_server(1)
        assert view0.app_error() and not view1.app_error()
        injector.advance_to(1.0)
        assert not view0.app_error() and view1.app_error()

    def test_same_seed_same_decisions(self):
        scenario = error_burst(start=0.0, duration=1.0, error_rate=0.3)
        def draws(seed):
            injector = ScenarioInjector(scenario, seed=seed)
            injector.start_run(0.0)
            view = injector.for_server(0)
            return [view.app_error() for _ in range(200)]
        assert draws(11) == draws(11)
        assert draws(11) != draws(12)

    def test_base_plan_outside_all_phases(self):
        scenario = error_burst(start=5.0, duration=1.0, error_rate=1.0)
        injector = ScenarioInjector(
            scenario, seed=3, base=FaultPlan(error_rate=1.0)
        )
        injector.start_run(0.0)
        assert injector.for_server(0).app_error()  # base active at t=0


class TestScenarioDriver:
    def test_live_playback_advances_and_heals(self):
        # Real (short) wall-clock playback: the driver thread must
        # activate the phase and deactivate it when the window closes.
        scenario = error_burst(start=0.05, duration=0.1, error_rate=1.0)
        injector = ScenarioInjector(scenario, seed=0)
        clock = WallClock()
        driver = ScenarioDriver(injector, clock)
        injector.start_run(clock.now())
        driver.start(clock.now())
        try:
            assert injector.plan.is_noop  # before the phase opens
            deadline = time.time() + 2.0
            while injector.plan.is_noop and time.time() < deadline:
                time.sleep(0.005)
            assert injector.plan.error_rate == 1.0
            while not injector.plan.is_noop and time.time() < deadline:
                time.sleep(0.005)
            assert injector.plan.is_noop  # healed mid-run
            assert injector.counts()["phase_changes"] == 2
        finally:
            driver.stop()

    def test_stop_interrupts_playback(self):
        scenario = error_burst(start=30.0, duration=1.0, error_rate=1.0)
        injector = ScenarioInjector(scenario, seed=0)
        clock = WallClock()
        driver = ScenarioDriver(injector, clock)
        driver.start(clock.now())
        driver.stop()  # must return promptly, not sleep 30s
        assert injector.counts()["phase_changes"] == 0

    def test_driver_cannot_start_twice(self):
        injector = ScenarioInjector(error_burst(), seed=0)
        clock = WallClock()
        driver = ScenarioDriver(injector, clock)
        driver.start(clock.now())
        try:
            with pytest.raises(RuntimeError):
                driver.start(0.0)
        finally:
            driver.stop()

"""Unit tests for the client-side storm dampers.

CircuitBreaker and RetryBudget are RNG-free and caller-clocked, so
these tests drive the exact state machines the live harness and the
simulator share.
"""

import pytest

from repro.health.breaker import CircuitBreaker, RetryBudget


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker(failures=3, reset_after=1.0)
        assert breaker.state == "closed"
        assert breaker.allows(0.0)

    def test_trips_open_after_consecutive_failures(self):
        breaker = CircuitBreaker(failures=3, reset_after=1.0)
        assert breaker.record(False, 0.1) == ""
        assert breaker.record(False, 0.2) == ""
        assert breaker.record(False, 0.3) == "open"
        assert breaker.state == "open"
        assert not breaker.allows(0.4)

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failures=2, reset_after=1.0)
        breaker.record(False, 0.1)
        breaker.record(True, 0.2)  # streak broken
        breaker.record(False, 0.3)
        assert breaker.state == "closed"

    def test_half_open_grants_exactly_one_trial(self):
        breaker = CircuitBreaker(failures=1, reset_after=1.0)
        breaker.record(False, 0.0)
        assert breaker.state == "open"
        assert not breaker.allows(0.5)  # reset window still running
        assert breaker.allows(1.5)  # -> half_open, trial granted
        assert breaker.state == "half_open"
        assert not breaker.allows(1.6)  # trial slot already taken

    def test_trial_success_closes(self):
        breaker = CircuitBreaker(failures=1, reset_after=1.0)
        breaker.record(False, 0.0)
        assert breaker.allows(1.5)
        assert breaker.record(True, 1.6) == "close"
        assert breaker.state == "closed"
        assert breaker.allows(1.7)

    def test_trial_failure_reopens_and_restarts_the_clock(self):
        breaker = CircuitBreaker(failures=1, reset_after=1.0)
        breaker.record(False, 0.0)
        assert breaker.allows(1.5)
        assert breaker.record(False, 1.6) == "reopen"
        assert breaker.state == "open"
        assert not breaker.allows(2.0)  # 1.6 + 1.0 not yet elapsed
        assert breaker.allows(2.7)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failures=0, reset_after=1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(failures=1, reset_after=0.0)


class TestRetryBudget:
    def test_reserve_funds_initial_retries(self):
        budget = RetryBudget(ratio=0.1, reserve=2.0, cap=10.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.denied == 1

    def test_deposits_accrue_at_ratio(self):
        # ratio 0.25 sums exactly in binary floating point; 0.1 would
        # leave 10 deposits at 0.999... and the spend below flaky.
        budget = RetryBudget(ratio=0.25, reserve=0.0, cap=10.0)
        for _ in range(4):
            budget.deposit()
        assert budget.tokens == pytest.approx(1.0)
        assert budget.try_spend()
        assert not budget.try_spend()

    def test_cap_bounds_banked_retries(self):
        budget = RetryBudget(ratio=1.0, reserve=0.0, cap=3.0)
        for _ in range(100):
            budget.deposit()
        assert budget.tokens == pytest.approx(3.0)

    def test_sustained_amplification_is_bounded_by_ratio(self):
        # 1000 first attempts, a client that wants to retry every one:
        # the budget lets at most reserve + ratio * offered through.
        budget = RetryBudget(ratio=0.1, reserve=10.0, cap=100.0)
        granted = 0
        for _ in range(1000):
            budget.deposit()
            if budget.try_spend():
                granted += 1
        assert granted <= 10 + 0.1 * 1000
        assert budget.spent == granted
        assert budget.denied == 1000 - granted

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(ratio=0.0, reserve=0.0, cap=1.0)
        with pytest.raises(ValueError):
            RetryBudget(ratio=0.1, reserve=5.0, cap=1.0)

"""Failure-aware serving end to end: sim integration and live smoke.

The contract under test, in both execution modes:

- an enabled health layer changes outcomes under a chaos scenario
  (ejection routes around the degraded replica, the budget caps retry
  amplification);
- a *passive* health layer (enabled but every mechanism off) observes
  without perturbing — results stay bit-identical to no health at all,
  the structural form of the zero-disabled-cost requirement;
- scenario playback is deterministic per seed.
"""

import pytest

from repro.core import HarnessConfig, run_harness
from repro.core.resilience import ResilienceConfig
from repro.faults import error_burst, retry_storm
from repro.health import HealthConfig
from repro.sim import SimConfig, simulate_load
from repro.sim.calibration import AppProfile
from repro.stats import LogNormal

from ..core.test_harness import ConstantApp

_SERVICE = LogNormal(mean=1e-3, sigma=0.3)
_PROFILE = AppProfile(name="serving-test", service=_SERVICE)

#: One degraded replica of three, [0.5s, 1.5s), stalls far past the
#: attempt timeout — the metastable-failure recipe at miniature scale.
_STORM = retry_storm(server_id=2, start=0.5, duration=1.0, pause=0.05)
_RESILIENCE = ResilienceConfig(
    deadline=0.05, attempt_timeout=0.01, max_retries=3,
    backoff_base=0.0005, backoff_cap=0.002,
)


def _sim_config(**overrides):
    defaults = dict(
        configuration="integrated",
        n_threads=1,
        n_servers=3,
        balancer="round_robin",
        seed=0,
        load_profile=((3.0, 600.0),),
        resilience=_RESILIENCE,
        scenario=_STORM,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


def _fingerprint(result):
    return (
        tuple(round(x, 12) for x in result.stats.samples()),
        dict(result.outcomes),
        tuple(result.routed_counts),
    )


class TestSimIntegration:
    def test_defense_changes_the_outcome(self):
        undefended = simulate_load(_PROFILE, _sim_config())
        defended = simulate_load(
            _PROFILE,
            _sim_config(health=HealthConfig(enabled=True, min_samples=5,
                                            probe_interval=25)),
        )
        assert undefended.health_counts == {}
        counts = defended.health_counts
        assert counts["ejections"] >= 1
        assert counts["probes"] >= 1
        # Ejection routes around the stalled replica: far fewer
        # attempts time out, so far fewer logical deadlines blow.
        assert (
            defended.outcomes.get("timed_out", 0)
            < undefended.outcomes.get("timed_out", 0)
        )
        assert "health:" in defended.describe()
        assert "health:" not in undefended.describe()

    def test_passive_health_layer_is_bit_identical(self):
        bare = simulate_load(_PROFILE, _sim_config())
        passive = simulate_load(
            _PROFILE,
            _sim_config(health=HealthConfig(
                enabled=True, ejection=False, breaker=False,
                retry_budget=False,
            )),
        )
        assert _fingerprint(passive) == _fingerprint(bare)
        # It still observed: the per-replica records accumulated.
        assert passive.health_counts["ejections"] == 0

    def test_scenario_replay_is_deterministic_per_seed(self):
        config = _sim_config(
            health=HealthConfig(enabled=True, min_samples=5)
        )
        first = simulate_load(_PROFILE, config)
        second = simulate_load(_PROFILE, config)
        assert _fingerprint(first) == _fingerprint(second)
        assert first.health_counts == second.health_counts
        assert first.fault_counts == second.fault_counts
        other = simulate_load(_PROFILE, config.replace(seed=1))
        assert _fingerprint(other) != _fingerprint(first)

    def test_phase_boundaries_fire_in_virtual_time(self):
        result = simulate_load(_PROFILE, _sim_config())
        # One activation and one deactivation: the recovery window
        # stopped injection mid-run (pauses only while the phase ran).
        assert result.fault_counts["phase_changes"] == 2
        assert result.fault_counts["pauses"] >= 1

    def test_retry_budget_caps_amplification(self):
        # Unlimited-retry arm vs budgeted arm under the same storm.
        defended = simulate_load(
            _PROFILE,
            _sim_config(health=HealthConfig(
                enabled=True, ejection=False, breaker=False,
                retry_budget_ratio=0.1, retry_budget_reserve=5.0,
            )),
        )
        undefended = simulate_load(_PROFILE, _sim_config())
        assert defended.health_counts["retries_denied"] >= 1
        assert defended.retry_amplification < undefended.retry_amplification
        assert defended.retry_amplification == pytest.approx(1.1, abs=0.15)


class TestLiveIntegration:
    def test_scenario_and_health_run_live(self):
        # Short wall-clock run: one replica-scoped error burst; the
        # health layer must eject the erroring replica and the
        # scenario must heal mid-run (phase_changes == 2).
        config = HarnessConfig(
            configuration="integrated",
            n_threads=1,
            n_servers=2,
            balancer="round_robin",
            seed=0,
            load_profile=((1.2, 200.0),),
            resilience=ResilienceConfig(
                deadline=0.2, attempt_timeout=0.05, max_retries=2,
                backoff_base=0.001, backoff_cap=0.004,
            ),
            scenario=error_burst(
                start=0.2, duration=0.4, error_rate=1.0, server_ids=(1,)
            ),
            health=HealthConfig(
                enabled=True, min_samples=5, probe_interval=10,
                readmit_successes=2,
            ),
        )
        result = run_harness(ConstantApp(iterations=50), config)
        assert result.fault_counts["phase_changes"] == 2
        assert result.health_counts["ejections"] >= 1
        assert result.outcomes.get("succeeded", 0) > 0
        assert "health:" in result.describe()

"""HealthManager: EWMA tracking, ejection, probation, routing."""

import pytest

from repro.health import HealthConfig, HealthManager
from repro.health.config import NO_HEALTH


def make_manager(**overrides):
    defaults = dict(
        enabled=True,
        min_samples=5,
        failure_rate_threshold=0.5,
        probe_interval=4,
        readmit_successes=2,
        breaker_failures=100,  # keep the breaker out of ejection tests
    )
    defaults.update(overrides)
    return HealthManager(HealthConfig(**defaults))


def feed_failures(manager, server_id, n, t0=0.0):
    for i in range(n):
        manager.record_attempt(server_id, None, False, t0 + i * 0.01)


def feed_successes(manager, server_id, n, latency=0.01, t0=0.0):
    for i in range(n):
        manager.record_attempt(server_id, latency, True, t0 + i * 0.01)


class TestConfig:
    def test_disabled_default_is_no_health(self):
        assert not NO_HEALTH.enabled
        assert NO_HEALTH == HealthConfig()

    def test_manager_rejects_disabled_config(self):
        with pytest.raises(ValueError):
            HealthManager(NO_HEALTH)

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            HealthConfig(failure_rate_threshold=1.5)
        with pytest.raises(ValueError):
            HealthConfig(latency_factor=1.0)
        with pytest.raises(ValueError):
            HealthConfig(max_ejected_fraction=1.0)
        with pytest.raises(ValueError):
            HealthConfig(retry_budget_cap=1.0, retry_budget_reserve=5.0)


class TestEjection:
    def test_failing_replica_is_ejected(self):
        manager = make_manager()
        feed_successes(manager, 0, 10)
        feed_successes(manager, 1, 10)
        feed_failures(manager, 2, 10)
        view = manager.view()
        assert view.replica(2).ejected
        assert not view.replica(0).ejected
        assert manager.counts()["ejections"] == 1

    def test_min_samples_protects_cold_replicas(self):
        manager = make_manager(min_samples=10)
        feed_successes(manager, 1, 10)  # healthy peer
        feed_failures(manager, 0, 9)
        assert not manager.view().replica(0).ejected
        feed_failures(manager, 0, 1, t0=1.0)
        assert manager.view().replica(0).ejected

    def test_max_ejected_fraction_caps_mass_ejection(self):
        # Global fault: every replica fails. Only floor(0.5 * 3) = 1
        # may be ejected; the other two stay routable.
        manager = make_manager(max_ejected_fraction=0.5)
        for server_id in (0, 1, 2):
            feed_failures(manager, server_id, 10)
        ejected = [v.server_id for v in manager.view().replicas if v.ejected]
        assert len(ejected) == 1

    def test_latency_outlier_ejected_against_peer_median(self):
        # The slow replica is ejected at min_samples; its *successful*
        # probes then readmit it (slowness is not failure) — so assert
        # the ejection event, not the final flag.
        manager = make_manager(latency_factor=3.0, breaker_failures=100)
        feed_successes(manager, 0, 10, latency=0.010)
        feed_successes(manager, 1, 10, latency=0.011)
        feed_successes(manager, 2, 10, latency=0.200)  # 20x the median
        assert manager.counts()["ejections"] >= 1

    def test_latency_criterion_off_by_default(self):
        manager = make_manager()
        feed_successes(manager, 0, 10, latency=0.010)
        feed_successes(manager, 2, 10, latency=10.0)
        assert not manager.view().replica(2).ejected


class TestRouting:
    def test_route_filters_ejected_replica(self):
        manager = make_manager()
        feed_successes(manager, 0, 10)
        feed_successes(manager, 1, 10)
        feed_failures(manager, 2, 10)
        candidates, forced = manager.route([0, 1, 2], now=1.0)
        assert candidates == [0, 1]
        assert not forced

    def test_route_fails_open_when_everyone_is_unhealthy(self):
        # One ejected (the fraction cap blocks more), the others'
        # breakers open: the full set must come back, not an empty one.
        manager = make_manager(
            max_ejected_fraction=0.4, breaker_failures=3,
            breaker_reset_after=100.0,
        )
        for server_id in (0, 1, 2):
            feed_failures(manager, server_id, 10)
        candidates, forced = manager.route([0, 1, 2], now=1.0)
        assert candidates == [0, 1, 2]
        assert not forced

    def test_probation_probe_every_nth_decision(self):
        manager = make_manager(probe_interval=4)
        feed_successes(manager, 0, 10)
        feed_failures(manager, 1, 10)
        probes = 0
        for i in range(8):
            candidates, forced = manager.route([0, 1], now=2.0 + i)
            if forced:
                probes += 1
                assert candidates == [1]
            else:
                assert candidates == [0]
        assert probes == 2  # decisions 4 and 8
        assert manager.counts()["probes"] == 2

    def test_readmission_after_consecutive_probe_successes(self):
        manager = make_manager(readmit_successes=2)
        feed_successes(manager, 0, 10)
        feed_failures(manager, 1, 10)
        assert manager.view().replica(1).ejected
        manager.record_attempt(1, 0.01, True, 3.0)
        manager.record_attempt(1, None, False, 3.1)  # restarts the count
        manager.record_attempt(1, 0.01, True, 3.2)
        assert manager.view().replica(1).ejected
        manager.record_attempt(1, 0.01, True, 3.3)
        view = manager.view().replica(1)
        assert not view.ejected
        assert view.samples == 0  # clean slate
        assert manager.counts()["readmissions"] == 1

    def test_breaker_trip_skips_replica_then_half_open_probes(self):
        manager = make_manager(
            ejection=False, breaker_failures=2, breaker_reset_after=1.0
        )
        feed_successes(manager, 0, 10)
        manager.record_attempt(1, None, False, 0.0)
        manager.record_attempt(1, None, False, 0.1)
        assert manager.view().replica(1).breaker_state == "open"
        candidates, forced = manager.route([0, 1], now=0.5)
        assert candidates == [0] and not forced
        # Reset window elapsed: the trial is forced to the replica.
        candidates, forced = manager.route([0, 1], now=1.5)
        assert candidates == [1] and forced
        manager.record_attempt(1, 0.01, True, 1.6)
        assert manager.view().replica(1).breaker_state == "closed"
        counts = manager.counts()
        assert counts["breaker_opens"] == 1
        assert counts["breaker_half_opens"] == 1
        assert counts["breaker_closes"] == 1


class TestRetryBudgetPlumbing:
    def test_budget_denies_once_exhausted(self):
        manager = make_manager(
            retry_budget_ratio=0.1, retry_budget_reserve=1.0,
            retry_budget_cap=10.0,
        )
        assert manager.try_spend_retry(0.0)
        assert not manager.try_spend_retry(0.1)
        counts = manager.counts()
        assert counts["retries_budgeted"] == 1
        assert counts["retries_denied"] == 1

    def test_first_attempts_refill(self):
        manager = make_manager(
            retry_budget_ratio=0.5, retry_budget_reserve=0.0,
            retry_budget_cap=10.0,
        )
        assert not manager.try_spend_retry(0.0)
        manager.on_first_attempt()
        manager.on_first_attempt()
        assert manager.try_spend_retry(0.1)

    def test_budget_disabled_always_allows(self):
        manager = make_manager(retry_budget=False)
        for _ in range(100):
            assert manager.try_spend_retry(0.0)
        assert "retries_denied" not in manager.counts()

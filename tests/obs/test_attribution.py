"""Critical-path decomposition and the ranked tail report."""

import pytest

from repro.core.request import Request
from repro.obs.attribution import (
    COMPONENTS,
    critical_paths,
    tail_report,
)
from repro.obs.trace import Tracer


def _request(
    gen,
    *,
    sent=None,
    enqueued=None,
    start=None,
    end=None,
    received=None,
    **kw,
):
    return Request(
        payload=None,
        generated_at=gen,
        sent_at=sent,
        enqueued_at=enqueued,
        service_start_at=start,
        service_end_at=end,
        response_received_at=received,
        **kw,
    )


def _trace(*requests, outcomes=None, extra=None):
    tracer = Tracer(capacity=4096)
    outcomes = outcomes or {}
    for request in requests:
        tracer.record_request(
            request, outcome=outcomes.get(request.request_id)
        )
    for kind, ts, kwargs in extra or ():
        tracer.emit(kind, ts, **kwargs)
    return tracer.events()


class TestCriticalPaths:
    def test_components_sum_to_sojourn_exactly(self):
        request = _request(
            0.0, sent=0.01, enqueued=0.02, start=0.05, end=0.08,
            received=0.09, server_id=1,
        )
        (path,) = critical_paths(_trace(request))
        assert path.server_id == 1
        assert set(path.components) == set(COMPONENTS)
        assert sum(path.components.values()) == path.sojourn
        assert path.sojourn == pytest.approx(0.09)
        assert path.components["send_lag"] == pytest.approx(0.01)
        # Network is both directions: send->enqueue + end->receive.
        assert path.components["network"] == pytest.approx(0.02)
        assert path.components["queue"] == pytest.approx(0.03)
        assert path.components["batch_wait"] == 0.0
        assert path.components["service"] == pytest.approx(0.03)
        assert path.n_attempts == 1
        assert not path.batched

    def test_retry_overhead_is_winner_send_minus_first_send(self):
        first = _request(
            0.0, sent=0.01, enqueued=0.02, start=0.03, end=0.20,
            received=0.21, logical_id=5, attempt=0, server_id=0,
        )
        winner = _request(
            0.0, sent=0.10, enqueued=0.11, start=0.12, end=0.14,
            received=0.15, logical_id=5, attempt=1, server_id=1,
        )
        events = _trace(
            first, winner, outcomes={first.request_id: "late"}
        )
        (path,) = critical_paths(events)
        assert path.attempt == 1
        assert path.server_id == 1
        assert path.n_attempts == 2
        assert path.components["send_lag"] == pytest.approx(0.01)
        assert path.components["retry_overhead"] == pytest.approx(0.09)
        assert path.sojourn == pytest.approx(0.15)
        assert sum(path.components.values()) == path.sojourn

    def test_hedge_winner_is_earliest_received(self):
        slow = _request(
            0.0, sent=0.01, enqueued=0.02, start=0.03, end=0.30,
            received=0.31, logical_id=9, attempt=0, server_id=0,
        )
        fast = _request(
            0.0, sent=0.02, enqueued=0.03, start=0.04, end=0.06,
            received=0.07, logical_id=9, attempt=1, server_id=1,
        )
        (path,) = critical_paths(_trace(slow, fast))
        assert path.attempt == 1
        assert path.sojourn == pytest.approx(0.07)

    def test_batch_wait_split(self):
        early = _request(
            0.0, sent=0.1, enqueued=1.0, start=2.0, end=2.1,
            received=2.15, server_id=0,
        )
        late = _request(
            0.4, sent=0.5, enqueued=1.5, start=2.0, end=2.1,
            received=2.15, server_id=0,
        )
        batch = [
            ("batch_form", 2.0,
             dict(request_id=early.request_id, server_id=0, value=3.0)),
            ("batch_form", 2.0,
             dict(request_id=late.request_id, server_id=0, value=3.0)),
        ]
        paths = {
            p.request_id: p
            for p in critical_paths(_trace(early, late, extra=batch))
        }
        early_path = paths[early.request_id]
        late_path = paths[late.request_id]
        assert early_path.batched and late_path.batched
        # The early member waits for the late one (batch_wait), then
        # both wait from the last arrival to service start (queue).
        assert early_path.components["batch_wait"] == pytest.approx(0.5)
        assert early_path.components["queue"] == pytest.approx(0.5)
        assert late_path.components["batch_wait"] == 0.0
        assert late_path.components["queue"] == pytest.approx(0.5)
        for path in (early_path, late_path):
            assert sum(path.components.values()) == path.sojourn

    def test_incomplete_attempts_skipped(self):
        shed = _request(0.0, sent=0.01, shed=True)
        done = _request(
            0.1, sent=0.11, enqueued=0.12, start=0.13, end=0.15,
            received=0.16,
        )
        events = _trace(shed, done, outcomes={shed.request_id: "shed"})
        paths = critical_paths(events)
        assert len(paths) == 1
        assert paths[0].request_id == done.request_id


class TestTailReport:
    def _events(self):
        # 99 quick requests on server 0, one queue-bound straggler on
        # server 1.
        requests = []
        for i in range(99):
            gen = 0.01 * i
            requests.append(_request(
                gen, sent=gen, enqueued=gen + 0.001,
                start=gen + 0.002, end=gen + 0.010,
                received=gen + 0.011, server_id=0,
            ))
        requests.append(_request(
            5.0, sent=5.0, enqueued=5.001, start=5.401, end=5.409,
            received=5.410, server_id=1,
        ))
        return _trace(*requests)

    def test_ranking_blames_the_straggler_queue(self):
        report = tail_report(self._events(), pct=99.0)
        assert report.n_paths == 100
        assert report.n_tail >= 1
        top = report.top()
        assert (top.component, top.server_id) == ("queue", 1)
        assert top.share == max(c.share for c in report.causes)
        assert report.render()  # renders without error

    def test_shares_sum_to_one(self):
        report = tail_report(self._events(), pct=99.0)
        assert sum(c.share for c in report.causes) == pytest.approx(1.0)

    def test_phase_classification(self):
        phases = (("warm", 0.0, 1.0), ("steady", 1.0, 10.0))
        report = tail_report(self._events(), pct=99.0, phases=phases)
        assert report.top().phase == "steady"

    def test_denials_tallied(self):
        shed = _request(0.0, sent=0.01, shed=True, server_id=0)
        done = _request(
            0.1, sent=0.11, enqueued=0.12, start=0.13, end=0.15,
            received=0.16, server_id=0,
        )
        events = _trace(
            shed, done,
            outcomes={shed.request_id: "shed"},
            extra=[("breaker_open", 0.5, dict(server_id=1))],
        )
        report = tail_report(events, pct=50.0)
        assert report.denials.get(("shed", 0)) == 1
        assert report.denials.get(("breaker_open", 1)) == 1

    def test_empty_trace(self):
        report = tail_report([], pct=99.0)
        assert report.n_paths == 0
        assert report.causes == ()
        assert report.render()


class TestFanoutReport:
    def _events(self):
        from repro.obs.trace import TraceEvent

        events = []
        # Two gathers of width 3; shard 2 critical twice.
        for gid in (0.0, 1.0):
            for shard in range(3):
                events.append(TraceEvent(
                    kind="fanout_send", ts=gid, server_id=shard, value=gid,
                ))
            events.append(TraceEvent(
                kind="fanout_gather", ts=gid + 0.01, server_id=2, value=gid,
            ))
        return events

    def test_tallies_critical_shards(self):
        from repro.obs.attribution import fanout_report

        report = fanout_report(self._events())
        assert report.gathers == 2
        assert report.shards == 3
        assert report.critical_counts == {2: 2}
        assert report.critical_share(2) == pytest.approx(1.0)
        assert report.critical_share(0) == 0.0
        assert "tail bottleneck" in report.render()

    def test_empty_trace(self):
        from repro.obs.attribution import fanout_report

        report = fanout_report([])
        assert report.gathers == 0
        assert report.render()

    def test_from_simulated_fanout_run(self):
        from repro.core import FanoutConfig
        from repro.core.config import ObservabilityConfig
        from repro.obs.attribution import fanout_report
        from repro.sim import SimConfig, simulate_app

        result = simulate_app(
            "vsearch",
            SimConfig(
                qps=500.0,
                configuration="integrated",
                n_servers=2,
                warmup_requests=20,
                measure_requests=300,
                seed=1,
                fanout=FanoutConfig(enabled=True, shards=2),
                observability=ObservabilityConfig(tracing=True),
            ),
        )
        report = result.obs.fanout_report()
        assert report.shards == 2
        assert report.gathers == 320
        assert sum(report.critical_counts.values()) == 320

"""End-to-end tracing tests: live harness and simulator emit one schema."""

import io
import json

import pytest

from repro.core import HarnessConfig, ObservabilityConfig
from repro.core.harness import run_harness
from repro.core.resilience import ResilienceConfig
from repro.faults import FaultPlan
from repro.obs import validate_trace_line
from repro.obs.trace import LIFECYCLE_EVENTS
from repro.sim import SimConfig, simulate_app

TRACING = ObservabilityConfig(tracing=True)
_LIFECYCLE = tuple(name for name, _ in LIFECYCLE_EVENTS)


class ConstantApp:
    """Minimal Application: fixed tiny busy-work per request."""

    def __init__(self, iterations=200):
        self.iterations = iterations

    def setup(self):
        pass

    def process(self, payload):
        acc = 0
        for i in range(self.iterations):
            acc += i * i
        return acc

    def make_client(self, seed=0):
        class _Client:
            def next_request(self):
                return None

        return _Client()


def run_live(**overrides):
    defaults = dict(
        qps=2000, warmup_requests=10, measure_requests=120,
        observability=TRACING,
    )
    defaults.update(overrides)
    return run_harness(ConstantApp(), HarnessConfig(**defaults))


class TestLiveTracing:
    def test_every_request_leaves_a_full_chain(self):
        result = run_live()
        groups = {}
        for event in result.obs.events:
            if event.kind in _LIFECYCLE:
                groups.setdefault(event.request_id, []).append(event.kind)
        complete = [g for g in groups.values() if len(g) == 6]
        assert len(complete) == 130  # warmup + measured, all traced

    def test_events_validate_against_schema(self):
        result = run_live(measure_requests=60)
        sink = io.StringIO()
        result.obs.export_trace_jsonl(sink)
        for line in sink.getvalue().splitlines():
            validate_trace_line(json.loads(line))

    def test_decomposition_matches_collector(self):
        # warmup=0 so the trace and the collector cover the same set.
        result = run_live(warmup_requests=0, measure_requests=150)
        rows = [
            r for r in result.obs.decompose() if "sojourn" in r
        ]
        assert len(rows) == 150
        trace_mean = sum(r["sojourn"] for r in rows) / len(rows)
        assert trace_mean == pytest.approx(result.sojourn.mean, rel=1e-6)
        trace_queue = sum(r["queue"] for r in rows) / len(rows)
        assert trace_queue == pytest.approx(result.queue.mean, rel=1e-6)

    def test_metrics_sampled_into_series(self):
        result = run_live()
        series = result.obs.series
        assert "tb_inflight" in series
        assert 'tb_queue_depth{server="0"}' in series
        assert all(points for points in series.values())
        snapshot = result.obs.snapshot
        assert snapshot["tb_completed_total"] == 130

    def test_send_delay_histogram_populated(self):
        result = run_live()
        assert "tb_send_delay_seconds" in result.obs.snapshot
        assert result.obs.prom.count("tb_send_delay_seconds_bucket") > 0

    def test_disabled_run_has_no_artifacts(self):
        result = run_harness(
            ConstantApp(),
            HarnessConfig(qps=2000, warmup_requests=5, measure_requests=40),
        )
        assert result.obs is None


class TestReplicaAttribution:
    def test_events_attributed_to_chosen_replica(self):
        result = run_live(
            n_servers=3, balancer="round_robin", measure_requests=150
        )
        per_replica = {}
        for event in result.obs.events:
            if event.kind == "service_start":
                assert event.server_id is not None
                per_replica[event.server_id] = (
                    per_replica.get(event.server_id, 0) + 1
                )
        assert set(per_replica) == {0, 1, 2}
        # Cross-check against the collector's per-server counts: the
        # trace covers warmup too, so compare routed totals instead.
        assert sum(per_replica.values()) == sum(result.routed_counts)
        for server_id, routed in enumerate(result.routed_counts):
            assert per_replica[server_id] == routed

    def test_trace_per_server_matches_collector_counts(self):
        result = run_live(
            n_servers=2, warmup_requests=0, measure_requests=120
        )
        trace_view = result.obs.per_server()
        collector_view = result.per_server()
        assert set(trace_view) == set(collector_view)
        for server_id, summary in collector_view.items():
            assert int(trace_view[server_id]["count"]) == summary.count
            assert trace_view[server_id]["sojourn"] == pytest.approx(
                summary.mean, rel=1e-6
            )


class TestSimTracing:
    def test_sim_emits_same_schema(self):
        result = simulate_app(
            "masstree",
            SimConfig(qps=2000, warmup_requests=10, measure_requests=200,
                      observability=TRACING),
        )
        sink = io.StringIO()
        result.obs.export_trace_jsonl(sink)
        kinds = set()
        for line in sink.getvalue().splitlines():
            kinds.add(validate_trace_line(json.loads(line))["event"])
        assert set(_LIFECYCLE) <= kinds

    def test_sim_traces_are_deterministic(self):
        config = SimConfig(qps=2000, warmup_requests=10,
                           measure_requests=150, observability=TRACING)
        a = simulate_app("masstree", config)
        b = simulate_app("masstree", config)

        def dump(result):
            # request_id comes from a process-global counter, so it is
            # unique across runs by design; everything else must match.
            out = []
            for event in result.obs.events:
                d = event.as_dict()
                d.pop("request_id", None)
                out.append(d)
            return out

        assert dump(a) == dump(b)

    def test_sim_decomposition_matches_collector(self):
        result = simulate_app(
            "masstree",
            SimConfig(qps=2000, warmup_requests=0, measure_requests=300,
                      observability=TRACING),
        )
        rows = [r for r in result.obs.decompose() if "sojourn" in r]
        assert len(rows) == 300
        mean = sum(r["sojourn"] for r in rows) / len(rows)
        assert mean == pytest.approx(result.sojourn.mean, rel=1e-9)

    def test_sim_metrics_sampled_in_virtual_time(self):
        result = simulate_app(
            "masstree",
            SimConfig(qps=2000, warmup_requests=10, measure_requests=300,
                      observability=TRACING),
        )
        series = result.obs.series['tb_queue_depth{server="0"}']
        assert len(series) >= 2
        times = [p.time for p in series]
        assert times == sorted(times)
        # Virtual-time sampling must not extend the run: the engine
        # still drains to the last real event, not to a sampler tick.
        assert result.virtual_time <= times[-1] + 0.5

    def test_sim_fault_and_retry_events(self):
        result = simulate_app(
            "masstree",
            SimConfig(
                qps=2000, warmup_requests=10, measure_requests=400,
                faults=FaultPlan(drop_rate=0.05),
                resilience=ResilienceConfig(max_retries=2,
                                            attempt_timeout=0.02),
                observability=TRACING,
            ),
        )
        kinds = {e.kind for e in result.obs.events}
        assert "fault_drop" in kinds
        assert "retry" in kinds
        drops = [e for e in result.obs.events if e.kind == "fault_drop"]
        assert all(e.logical_id is not None for e in drops)
        assert result.obs.snapshot['tb_faults_total{kind="drops"}'] == (
            result.fault_counts["drops"]
        )

    def test_sim_results_unchanged_by_tracing(self):
        base = SimConfig(qps=2000, warmup_requests=10, measure_requests=200)
        plain = simulate_app("masstree", base)
        traced = simulate_app(
            "masstree", base.replace(observability=TRACING)
        )
        assert plain.sojourn.p99 == traced.sojourn.p99
        assert plain.stats.count == traced.stats.count
        assert plain.virtual_time == traced.virtual_time

"""Tests for the request-lifecycle tracer (unit level)."""

import pytest

from repro.core.request import Request
from repro.obs import EVENT_KINDS, Tracer, decompose_attempts, group_attempts
from repro.obs.trace import LIFECYCLE_EVENTS, _LIFECYCLE_ORDER


def stamped_request(base=1.0, **identity):
    request = Request(payload=None, generated_at=base, **identity)
    request.sent_at = base + 0.001
    request.enqueued_at = base + 0.002
    request.service_start_at = base + 0.004
    request.service_end_at = base + 0.010
    request.response_received_at = base + 0.011
    return request


class TestEmission:
    def test_record_request_emits_full_chain_in_order(self):
        tracer = Tracer()
        tracer.record_request(stamped_request())
        kinds = [e.kind for e in tracer.events()]
        assert kinds == [name for name, _ in LIFECYCLE_EVENTS]

    def test_span_ordering_monotonic_per_attempt(self):
        tracer = Tracer()
        for i in range(5):
            tracer.record_request(stamped_request(base=float(i)))
        for group in group_attempts(tracer.events()).values():
            ts = [e.ts for e in group]
            assert ts == sorted(ts)
            order = [_LIFECYCLE_ORDER[e.kind] for e in group]
            assert order == sorted(order)

    def test_partial_chain_emits_present_edges_only(self):
        request = Request(payload=None, generated_at=1.0)
        request.sent_at = 1.001
        request.enqueued_at = 1.002
        request.response_received_at = 1.003
        request.shed = True
        tracer = Tracer()
        tracer.record_request(request, outcome="shed")
        kinds = [e.kind for e in tracer.events()]
        assert kinds == ["generated", "sent", "enqueued", "received", "shed"]

    def test_outcome_event_stamped_at_last_known_instant(self):
        tracer = Tracer()
        tracer.record_request(stamped_request(), outcome="error")
        last = tracer.events()[-1]
        assert last.kind == "error"
        assert last.ts == pytest.approx(1.011)

    def test_all_emitted_kinds_are_legal(self):
        assert "generated" in EVENT_KINDS
        assert "fault_drop" in EVENT_KINDS
        with_tracer = Tracer()
        with_tracer.emit("retry", 0.5, logical_id=1, attempt=2)
        event = with_tracer.events()[0]
        assert event.kind in EVENT_KINDS
        assert event.as_dict() == {
            "ts": 0.5, "event": "retry", "logical_id": 1, "attempt": 2,
        }


class TestSharedLogicalId:
    def test_retry_and_hedge_attempts_share_logical_id(self):
        tracer = Tracer()
        for attempt in (1, 2, 3):  # first, retry, hedge of one request
            tracer.record_request(
                stamped_request(
                    base=float(attempt), logical_id=42, attempt=attempt
                )
            )
        tracer.emit("retry", 2.0, logical_id=42, attempt=2)
        tracer.emit("hedge", 3.0, logical_id=42, attempt=3)
        ids = {e.logical_id for e in tracer.events()}
        assert ids == {42}
        groups = group_attempts(tracer.events())
        assert len(groups) == 3  # one group per attempt
        assert {key[1] for key in groups} == {42}

    def test_attempts_without_logical_id_group_by_request_id(self):
        tracer = Tracer()
        a, b = stamped_request(base=1.0), stamped_request(base=2.0)
        tracer.record_request(a)
        tracer.record_request(b)
        assert len(group_attempts(tracer.events())) == 2


class TestRingBuffer:
    def test_drops_oldest_and_reports_count(self):
        tracer = Tracer(capacity=10)
        for i in range(25):
            tracer.emit("generated", float(i), request_id=i)
        assert len(tracer.events()) == 10
        assert tracer.emitted == 25
        assert tracer.dropped == 15
        # The survivors are the NEWEST events, oldest evicted first.
        assert [e.ts for e in tracer.events()] == [float(i) for i in range(15, 25)]

    def test_no_silent_truncation_below_capacity(self):
        tracer = Tracer(capacity=100)
        for i in range(40):
            tracer.emit("sent", float(i))
        assert tracer.dropped == 0
        assert tracer.emitted == 40

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestDecomposition:
    def test_components_recomputed_from_events(self):
        tracer = Tracer()
        tracer.record_request(stamped_request())
        (row,) = decompose_attempts(tracer.events())
        assert row["send_delay"] == pytest.approx(0.001)
        assert row["network"] == pytest.approx(0.002)
        assert row["queue"] == pytest.approx(0.002)
        assert row["service"] == pytest.approx(0.006)
        assert row["sojourn"] == pytest.approx(0.011)

    def test_partial_chain_yields_partial_row(self):
        request = Request(payload=None, generated_at=1.0)
        request.sent_at = 1.001
        request.enqueued_at = 1.002
        tracer = Tracer()
        tracer.record_request(request)
        (row,) = decompose_attempts(tracer.events())
        assert "service" not in row
        assert "sojourn" not in row
        assert row["send_delay"] == pytest.approx(0.001)

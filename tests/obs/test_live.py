"""Streaming SLO engine: windows, burn-rate alerting, exemplars."""

import pytest

from repro.core.config import ObservabilityConfig, SloConfig
from repro.core.request import Request
from repro.obs.exporters import (
    export_trace_jsonl,
    load_trace_jsonl,
    prometheus_text,
)
from repro.obs.live import BurnRateMonitor, LiveObs
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _slo(**overrides) -> SloConfig:
    kwargs = dict(
        enabled=True,
        target=0.1,
        objective=0.9,
        window=1.0,
        fast_windows=2,
        slow_windows=6,
        fast_burn=2.5,
        slow_burn=1.0,
        clear_factor=0.5,
        exemplars_per_window=3,
    )
    kwargs.update(overrides)
    return SloConfig(**kwargs)


def _request(gen, sojourn, server_id=0, **kw):
    """A completed request with an evenly spaced timestamp chain."""
    step = sojourn / 5.0
    return Request(
        payload=None,
        generated_at=gen,
        sent_at=gen + step,
        enqueued_at=gen + 2 * step,
        service_start_at=gen + 3 * step,
        service_end_at=gen + 4 * step,
        response_received_at=gen + sojourn,
        server_id=server_id,
        **kw,
    )


def _feed(obs, request):
    obs.observe_sent(request.sent_at)
    obs.observe(request)


class TestLiveObs:
    def test_disabled_config_rejected(self):
        with pytest.raises(ValueError):
            LiveObs(SloConfig())

    def test_window_rotation_counts_and_quantiles(self):
        obs = LiveObs(_slo())
        obs.set_origin(0.0)
        # Three completions per window across four windows, sojourns
        # 10/20/30 ms — p50 falls on the middle observation.
        for w in range(4):
            for i, sojourn in enumerate((0.010, 0.020, 0.030)):
                _feed(obs, _request(w * 1.0 + 0.1 * (i + 1), sojourn))
        report = obs.finish(4.0)
        assert len(report.windows) == 4
        assert all(not w.partial for w in report.windows)
        assert [w.index for w in report.windows] == [0, 1, 2, 3]
        for w in report.windows:
            assert w.sent == 3
            assert w.completed == 3
            assert w.good == 3
            assert w.bad == 0
            assert w.quantiles["p50"] == pytest.approx(0.020, rel=0.15)
        assert report.sent == 12
        assert report.completed == 12
        assert report.attainment == 1.0

    def test_unfinished_sends_burn_budget(self):
        # Send-anchored accounting: requests that never complete are
        # bad in their send window — a stalled replica can't hide.
        obs = LiveObs(_slo())
        obs.set_origin(0.0)
        for i in range(10):
            obs.observe_sent(0.05 * (i + 1))
        report = obs.finish(2.0)
        window = report.windows[0]
        assert window.sent == 10
        assert window.good == 0
        assert window.bad == 10
        assert report.attainment == 0.0

    def test_over_target_completion_is_bad(self):
        obs = LiveObs(_slo(target=0.05))
        obs.set_origin(0.0)
        _feed(obs, _request(0.1, sojourn=0.010))
        _feed(obs, _request(0.2, sojourn=0.200))  # blows the target
        report = obs.finish(1.0)
        assert report.windows[0].good == 1
        assert report.windows[0].bad == 1

    def test_trailing_partial_window_reported_not_alerted(self):
        obs = LiveObs(_slo())
        obs.set_origin(0.0)
        _feed(obs, _request(0.2, sojourn=0.010))
        _feed(obs, _request(1.2, sojourn=0.010))  # half-open window 1
        report = obs.finish(1.5)
        assert len(report.windows) == 2
        assert not report.windows[0].partial
        assert report.windows[1].partial
        assert report.windows[1].end == pytest.approx(1.5)

    def test_origin_set_once(self):
        obs = LiveObs(_slo())
        obs.set_origin(0.0)
        with pytest.raises(RuntimeError):
            obs.set_origin(1.0)


class TestBurnRateMonitor:
    # With objective=0.9 the error budget is 0.1: a window tally of
    # (good, bad) = (670, 330) burns at 3.3x, (990, 10) at 0.1x.
    _HOT = (670, 330, 1000)
    _COLD = (990, 10, 1000)

    def _push_n(self, monitor, tally, n, start_index=0):
        good, bad, total = tally
        for i in range(n):
            idx = start_index + i
            monitor.push(good, bad, total, idx, float(idx + 1))
        return start_index + n

    def test_fires_after_fast_horizon_of_hot_windows(self):
        monitor = BurnRateMonitor(_slo())
        idx = self._push_n(monitor, self._COLD, 6)
        assert not monitor.log.fires()
        # One hot window: fast burn = (330+10)/2000/0.1 = 1.7 < 2.5.
        idx = self._push_n(monitor, self._HOT, 1, idx)
        assert not monitor.log.fires()
        # Second hot window: fast = 3.3 >= 2.5, slow >= 1.0 -> fire.
        self._push_n(monitor, self._HOT, 1, idx)
        fires = monitor.log.fires()
        assert len(fires) == 1
        assert fires[0].ts == pytest.approx(8.0)
        assert fires[0].fast_burn >= 2.5

    def test_clears_with_hysteresis(self):
        monitor = BurnRateMonitor(_slo())
        idx = self._push_n(monitor, self._HOT, 2)
        assert monitor.active
        # Cold windows must flush both horizons below clear_factor x
        # threshold before the alert clears.
        self._push_n(monitor, self._COLD, 6, idx)
        clears = monitor.log.clears()
        assert len(clears) == 1
        assert monitor.log.fires()[-1].ts < clears[0].ts
        assert not monitor.active

    def test_no_flapping_in_the_dead_zone(self):
        # Burn hovering between clear_factor x threshold and the
        # threshold itself must neither re-fire nor clear: exactly one
        # transition no matter how long the hover lasts.
        monitor = BurnRateMonitor(_slo())
        idx = self._push_n(monitor, self._HOT, 2)
        assert len(monitor.log) == 1
        # (good, bad) = (800, 200): burn 2.0 — above the 1.25 clear
        # line (0.5 x 2.5), below the 2.5 fire line.
        self._push_n(monitor, (800, 200, 1000), 20, idx)
        assert len(monitor.log) == 1
        assert monitor.active

    def test_threshold_boundary_does_not_refire(self):
        # A burn sitting exactly on the fire threshold after an alert
        # already fired adds no second fire event.
        monitor = BurnRateMonitor(_slo())
        idx = self._push_n(monitor, self._HOT, 2)
        self._push_n(monitor, (750, 250, 1000), 20, idx)  # 2.5x
        assert len(monitor.log.fires()) == 1

    def test_emits_trace_markers(self):
        tracer = Tracer(capacity=64)
        monitor = BurnRateMonitor(_slo(), tracer=tracer)
        idx = self._push_n(monitor, self._HOT, 2)
        self._push_n(monitor, self._COLD, 6, idx)
        kinds = [e.kind for e in tracer.events()]
        assert kinds.count("slo_burn") == 1
        assert kinds.count("slo_clear") == 1


class TestExemplars:
    def _run(self, seed, sojourns=None):
        obs = LiveObs(_slo(), seed=seed)
        obs.set_origin(0.0)
        sojourns = sojourns or [0.001 * (i % 7 + 1) for i in range(40)]
        for i, sojourn in enumerate(sojourns):
            _feed(obs, _request(0.02 * i, sojourn, server_id=i % 3))
        return obs.finish(1.0)

    @staticmethod
    def _keys(report):
        return [
            (e.window_index, e.sojourn, e.server_id, e.generated_at)
            for e in report.exemplars
        ]

    def test_same_seed_same_exemplars(self):
        assert self._keys(self._run(7)) == self._keys(self._run(7))

    def test_reservoir_keeps_the_slowest(self):
        report = self._run(0, sojourns=[0.001 * (i + 1) for i in range(10)])
        kept = sorted(e.sojourn for e in report.exemplars)
        assert kept == pytest.approx([0.008, 0.009, 0.010])

    def test_capacity_respected_per_window(self):
        report = self._run(0)
        for window in report.windows:
            assert len(window.exemplars) <= 3


class TestMetricsExport:
    def test_hdr_sketch_prometheus_buckets(self):
        registry = MetricsRegistry()
        sketch = registry.hdr("tb_latency_live_seconds", help="live latency")
        for v in (0.001, 0.002, 0.004, 0.100):
            sketch.observe(v)
        text = prometheus_text(registry)
        assert "# TYPE tb_latency_live_seconds histogram" in text
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("tb_latency_live_seconds_bucket")
        ]
        assert bucket_lines, text
        assert bucket_lines[-1].startswith(
            'tb_latency_live_seconds_bucket{le="+Inf"} 4'
        )
        # Cumulative: counts never decrease along the bucket ladder.
        counts = [float(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)
        assert "tb_latency_live_seconds_count 4" in text

    def test_register_metrics_exposes_burn_gauges(self):
        obs = LiveObs(_slo())
        registry = MetricsRegistry()
        obs.register_metrics(registry)
        obs.set_origin(0.0)
        _feed(obs, _request(0.1, sojourn=0.010))
        obs.finish(1.0)
        text = prometheus_text(registry)
        assert "tb_slo_fast_burn" in text
        assert "tb_slo_alert_active" in text
        assert "tb_latency_live_seconds" in text


class TestTraceJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        tracer = Tracer(capacity=64)
        request = _request(0.0, sojourn=0.010, server_id=1)
        tracer.record_request(request)
        tracer.emit("slo_burn", 1.0, value=3.3)
        path = str(tmp_path / "trace.jsonl")
        n = export_trace_jsonl(tracer.events(), path)
        events = load_trace_jsonl(path)
        assert len(events) == n == len(tracer.events())
        for original, loaded in zip(tracer.events(), events):
            assert loaded.kind == original.kind
            assert loaded.ts == pytest.approx(original.ts)
            assert loaded.server_id == original.server_id

    def test_invalid_line_names_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "sent", "ts": 0.0}\n{"event": "nope"}\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2:"):
            load_trace_jsonl(str(path))


class TestSimIntegration:
    def _config(self, slo):
        from repro.sim import SimConfig

        return SimConfig(
            configuration="integrated",
            n_threads=1,
            n_servers=2,
            balancer="round_robin",
            seed=3,
            qps=400.0,
            warmup_requests=0,
            measure_requests=400,
            observability=ObservabilityConfig(tracing=True, slo=slo),
        )

    def _profile(self):
        from repro.sim.calibration import AppProfile
        from repro.stats import LogNormal

        return AppProfile(
            name="unit-live", service=LogNormal(mean=1e-3, sigma=0.3)
        )

    def test_enabled_run_is_deterministic(self):
        from repro.sim import simulate_load

        slo = _slo(window=0.25)
        a = simulate_load(self._profile(), self._config(slo))
        b = simulate_load(self._profile(), self._config(slo))
        ka = [
            (e.window_index, e.sojourn, e.server_id, e.generated_at)
            for e in a.obs.live.exemplars
        ]
        kb = [
            (e.window_index, e.sojourn, e.server_id, e.generated_at)
            for e in b.obs.live.exemplars
        ]
        assert ka == kb
        assert [
            (w.index, w.sent, w.good, w.bad) for w in a.obs.live.windows
        ] == [(w.index, w.sent, w.good, w.bad) for w in b.obs.live.windows]

    def test_slo_layer_does_not_perturb_the_simulation(self):
        # Same seed, SLO engine off vs on: the simulated requests
        # themselves must be bit-identical — observation only.
        from repro.sim import simulate_load

        def fingerprint(result):
            return (
                tuple(round(x, 12) for x in result.stats.samples()),
                dict(result.outcomes),
                tuple(result.routed_counts),
            )

        off = simulate_load(self._profile(), self._config(SloConfig()))
        on = simulate_load(self._profile(), self._config(_slo(window=0.25)))
        assert fingerprint(off) == fingerprint(on)
        assert off.obs.live is None
        assert on.obs.live is not None

    def test_fig_live_sim_arm_reproduces(self):
        from repro.experiments.fig_live import run_fig_live

        result = run_fig_live(time_scale=0.2, modes=("sim",))
        ok, sentence = result.verdict()
        assert ok, sentence
        arm = result.arms["sim"]
        assert arm.fire_offset <= result.slo.fast_horizon + 1e-9
        assert arm.top_cause[0] == "queue"

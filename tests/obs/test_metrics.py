"""Tests for the metrics registry, sampler, and exporters."""

import io
import json

import pytest

from repro.core.clock import VirtualClock
from repro.obs import (
    MetricsRegistry,
    MetricsSampler,
    Tracer,
    export_series_jsonl,
    export_trace_jsonl,
    prometheus_text,
    validate_trace_file,
    validate_trace_line,
)
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("tb_sent_total")
        b = registry.counter("tb_sent_total")
        assert a is b

    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry()
        a = registry.gauge("tb_queue_depth", server="0")
        b = registry.gauge("tb_queue_depth", server="1")
        assert a is not b
        assert a.full_name == 'tb_queue_depth{server="0"}'

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("tb_x")
        with pytest.raises(ValueError):
            registry.gauge("tb_x")

    def test_callback_gauge_reads_lazily(self):
        registry = MetricsRegistry()
        state = {"depth": 0}
        registry.gauge("tb_queue_depth", fn=lambda: state["depth"])
        state["depth"] = 7
        assert registry.snapshot()["tb_queue_depth"] == 7.0

    def test_histogram_quantile_and_mean(self):
        hist = Histogram("tb_lat")
        for value in (1e-4, 1e-4, 1e-3, 1e-2):
            hist.observe(value)
        assert hist.count == 4
        assert hist.value == pytest.approx((2e-4 + 1e-3 + 1e-2) / 4)
        assert hist.quantile(0.5) <= hist.quantile(0.99)
        assert hist.quantile(0.25) == pytest.approx(1e-4)

    def test_histogram_overflow_bucket(self):
        hist = Histogram("tb_lat", buckets=(0.1, 1.0))
        hist.observe(50.0)
        assert hist.counts[-1] == 1
        assert hist.quantile(1.0) == 1.0  # clamped to the last bound


class TestSampler:
    def test_samples_build_per_metric_series(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("tb_inflight")
        clock = VirtualClock()
        sampler = MetricsSampler(registry, clock, interval=0.01)
        for i in range(3):
            gauge.set(i)
            sampler.sample(now=float(i))
        series = sampler.series["tb_inflight"]
        assert [p.value for p in series] == [0.0, 1.0, 2.0]
        assert [p.time for p in series] == [0.0, 1.0, 2.0]
        assert all(p.metric == "tb_inflight" for p in series)

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            MetricsSampler(MetricsRegistry(), VirtualClock(), interval=0.0)


class TestExporters:
    def test_trace_jsonl_round_trip_validates(self):
        tracer = Tracer()
        tracer.emit("generated", 0.5, logical_id=1, request_id=2,
                    attempt=0, server_id=3)
        tracer.emit("fault_delay", 0.6, value=0.05)
        sink = io.StringIO()
        assert export_trace_jsonl(tracer.events(), sink) == 2
        for line in sink.getvalue().splitlines():
            validate_trace_line(json.loads(line))

    def test_validate_rejects_bad_lines(self):
        with pytest.raises(ValueError, match="missing required"):
            validate_trace_line({"ts": 1.0})
        with pytest.raises(ValueError, match="unknown event kind"):
            validate_trace_line({"ts": 1.0, "event": "nonsense"})
        with pytest.raises(ValueError, match="unknown fields"):
            validate_trace_line({"ts": 1.0, "event": "sent", "extra": 1})
        with pytest.raises(ValueError, match="type"):
            validate_trace_line({"ts": 1.0, "event": "sent",
                                 "server_id": True})

    def test_validate_trace_file_reports_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"ts":1.0,"event":"sent"}\n{"ts":2.0,"event":"bogus"}\n'
        )
        with pytest.raises(ValueError, match=":2:"):
            validate_trace_file(str(path))

    def test_series_jsonl_carries_metric_names(self):
        registry = MetricsRegistry()
        registry.gauge("tb_inflight").set(4)
        sampler = MetricsSampler(registry, VirtualClock(), interval=0.01)
        sampler.sample(now=1.0)
        sink = io.StringIO()
        assert export_series_jsonl(sampler.series, sink) == 1
        (line,) = sink.getvalue().splitlines()
        obj = json.loads(line)
        assert obj["metric"] == "tb_inflight"
        assert obj["value"] == 4.0

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("tb_sent_total", help="Requests sent").inc(3)
        registry.gauge("tb_queue_depth", server="0").set(2)
        hist = registry.histogram("tb_send_delay_seconds",
                                  buckets=(0.001, 0.01))
        hist.observe(0.0005)
        hist.observe(0.5)
        text = prometheus_text(registry)
        assert "# TYPE tb_sent_total counter" in text
        assert "tb_sent_total 3" in text
        assert 'tb_queue_depth{server="0"} 2' in text
        # Cumulative buckets plus the +Inf bucket and _sum/_count.
        assert 'tb_send_delay_seconds_bucket{le="0.001"} 1' in text
        assert 'tb_send_delay_seconds_bucket{le="+Inf"} 2' in text
        assert "tb_send_delay_seconds_count 2" in text

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

"""Guards on the cost of observability.

The acceptance bar is structural plus statistical:

- disabled runs must construct NOTHING — no tracer, no registry, no
  sampler thread; the hot-path guard is one ``is None`` test;
- the virtual-time simulator must produce bit-identical latency
  results with tracing on (instrumentation cannot perturb virtual
  time), which pins the *logical* overhead at zero;
- a live A/B run bounds the wall-clock p99 regression of the disabled
  path. The issue's <2% bar was measured offline over repeated runs
  (see DESIGN.md); a single CI sample is too noisy to assert 2%, so
  the guard here uses a generous multiple that still catches
  accidental always-on instrumentation.
"""

import sys

from repro.core import HarnessConfig, ObservabilityConfig
from repro.core.harness import run_harness
from repro.sim import SimConfig, simulate_app

TRACING = ObservabilityConfig(tracing=True)


class ConstantApp:
    def __init__(self, iterations=150):
        self.iterations = iterations

    def setup(self):
        pass

    def process(self, payload):
        acc = 0
        for i in range(self.iterations):
            acc += i * i
        return acc

    def make_client(self, seed=0):
        class _Client:
            def next_request(self):
                return None

        return _Client()


class TestDisabledPathIsFree:
    def test_no_obs_objects_constructed(self):
        result = run_harness(
            ConstantApp(),
            HarnessConfig(qps=2000, warmup_requests=5, measure_requests=50),
        )
        assert result.obs is None

    def test_transport_holds_no_tracer_when_disabled(self):
        from repro.core.clock import WallClock
        from repro.core.transport import make_transport

        transport = make_transport("integrated", WallClock())
        assert transport._tracer is None
        assert transport._send_delay_hist is None

    def test_obs_package_not_imported_by_default_path(self):
        # The lazy-import contract: a plain run must never pull in the
        # obs package. Guard via a subprocess-free check — the modules
        # must not have been (re)imported as a side effect of the
        # disabled-path run above in THIS process only if nothing else
        # imported them; instead verify the import is confined to the
        # harness's enabled branch by source inspection.
        import inspect

        from repro.core import harness

        source = inspect.getsource(harness.run_harness)
        top_level = inspect.getsource(harness)
        head = top_level.split("def run_harness", 1)[0]
        assert "from ..obs" not in head  # no module-level obs import
        assert "from ..obs import" in source  # only inside the function

    def test_sim_disabled_has_no_obs(self):
        result = simulate_app(
            "masstree", SimConfig(qps=2000, warmup_requests=5,
                                  measure_requests=100)
        )
        assert result.obs is None


class TestOverheadBound:
    def test_sim_latencies_bit_identical_with_tracing(self):
        base = SimConfig(qps=2000, warmup_requests=20, measure_requests=400)
        plain = simulate_app("masstree", base)
        traced = simulate_app("masstree", base.replace(observability=TRACING))
        assert plain.sojourn.p50 == traced.sojourn.p50
        assert plain.sojourn.p99 == traced.sojourn.p99
        assert plain.queue.mean == traced.queue.mean

    def test_live_enabled_overhead_bounded(self):
        # A/B on the integrated config. p99 of a single short run
        # swings 2x with scheduler noise, so the asserted bound is on
        # the stable p50 (median of 3), and deliberately loose (2x);
        # the real numbers come from the repeated-run benchmark in
        # benchmarks/bench_obs_overhead.py quoted in DESIGN.md
        # (+3.8% of p50 at ~300us service times). This guard catches
        # order-of-magnitude regressions in the enabled path, e.g. a
        # lock or an unbounded log on the emit path.
        import statistics

        app = ConstantApp()

        def median_p50(observability):
            p50s = []
            for seed in (1, 2, 3):
                result = run_harness(
                    app,
                    HarnessConfig(
                        qps=2000, warmup_requests=50, measure_requests=300,
                        seed=seed, observability=observability,
                    ),
                )
                p50s.append(result.sojourn.p50)
            return statistics.median(p50s)

        median_p50(ObservabilityConfig())  # warm the code paths
        base = median_p50(ObservabilityConfig())
        traced = median_p50(TRACING)
        if sys.platform.startswith("linux"):
            assert traced <= 2.0 * base

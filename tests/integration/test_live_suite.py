"""Integration: every application through the live harness.

These are end-to-end runs of real Python mini-apps under the real
harness (wall clock). Dataset sizes are kept small; the point is the
full pipeline, not statistical precision.
"""

import pytest

from repro import HarnessConfig, create_app, run_harness

#: (app name, constructor kwargs, offered qps) tuned so each test run
#: stays comfortably under saturation and finishes in seconds.
LIVE_MATRIX = [
    ("xapian", {"n_docs": 300, "vocab_size": 800, "mean_doc_len": 60}, 80),
    ("masstree", {"n_records": 500}, 400),
    ("moses", {"vocab_size": 60, "n_sentences": 300, "stack_size": 5}, 15),
    ("sphinx", {"beam": 30.0}, 4),
    ("img-dnn", {"train_samples": 200, "epochs": 3}, 200),
    ("specjbb", {"customers_per_district": 20, "n_items": 300}, 300),
    ("silo", {}, 150),
    ("shore", {"buffer_capacity": 64}, 60),
]


@pytest.mark.parametrize(
    "name,kwargs,qps", LIVE_MATRIX, ids=[m[0] for m in LIVE_MATRIX]
)
def test_app_under_integrated_harness(name, kwargs, qps):
    app = create_app(name, **kwargs)
    app.setup()
    result = run_harness(
        app,
        HarnessConfig(
            qps=qps, warmup_requests=5, measure_requests=40, seed=1
        ),
    )
    assert result.stats.count == 40
    assert not result.server_errors
    assert result.sojourn.mean > 0
    assert result.sojourn.p95 >= result.service.p95 * 0.99
    if hasattr(app, "teardown"):
        app.teardown()


def test_masstree_under_all_three_configurations():
    app = create_app("masstree", n_records=400)
    app.setup()
    results = {}
    for configuration in ("integrated", "loopback", "networked"):
        results[configuration] = run_harness(
            app,
            HarnessConfig(
                configuration=configuration,
                qps=200,
                warmup_requests=5,
                measure_requests=60,
                seed=2,
            ),
        )
    for result in results.values():
        assert result.stats.count == 60
        assert not result.server_errors
    # Median latency must reflect the configuration cost ordering.
    assert (
        results["integrated"].sojourn.p50
        < results["loopback"].sojourn.p50
        < results["networked"].sojourn.p50
    )


def test_multithreaded_harness_reduces_queueing():
    # Live multithreading validation needs an app whose service work
    # releases the GIL (pure-Python CPU work serializes on it — a
    # real contention effect our simulator models as sync overhead,
    # but not what this test is about). An I/O-wait app gives the
    # harness's worker pool true parallelism to exploit.
    import time

    class IoBoundApp:
        def setup(self):
            pass

        def process(self, payload):
            time.sleep(0.004)  # e.g. an SSD read
            return payload

        def make_client(self, seed=0):
            class _Client:
                def next_request(self):
                    return None

            return _Client()

    app = IoBoundApp()
    qps = 0.85 / 0.004  # ~85% of single-thread capacity

    def run(n_threads):
        return run_harness(
            app,
            HarnessConfig(
                qps=qps,
                n_threads=n_threads,
                warmup_requests=10,
                measure_requests=150,
                seed=3,
            ),
        )

    single = run(1)
    quad = run(4)
    assert quad.queue.mean < single.queue.mean / 2
    assert quad.queue.p95 < single.queue.p95


def test_campaign_on_live_app():
    from repro import run_campaign

    app = create_app("masstree", n_records=300)
    app.setup()
    result = run_campaign(
        app,
        HarnessConfig(qps=300, warmup_requests=10, measure_requests=150),
        relative_precision=0.5,  # loose: wall-clock noise is real
        min_runs=3,
        max_runs=5,
    )
    assert result.n_runs >= 3
    assert result.value("p95") > 0

"""Benchmark-baseline artifacts: write, load, validate, CLI."""

import json

import pytest

from repro.experiments.baseline import (
    baseline_path,
    compare_directories,
    compare_metrics,
    load_baseline,
    main,
    metric_direction,
    run_fingerprint,
    run_meta,
    validate_baseline,
    validate_directory,
    write_baseline,
)


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        path = write_baseline(tmp_path, "fig9", {"p99_s": 0.012, "apps": 3})
        assert path == baseline_path(tmp_path, "fig9")
        assert path.name == "BENCH_fig9.json"
        document = load_baseline(path)
        assert document["name"] == "fig9"
        assert document["metrics"] == {"apps": 3, "p99_s": 0.012}

    def test_fingerprint_stamped(self, tmp_path):
        path = write_baseline(tmp_path, "x", {"m": 1})
        fingerprint = load_baseline(path)["fingerprint"]
        assert fingerprint == run_fingerprint()
        assert fingerprint["python"]
        assert fingerprint["platform"]

    def test_metrics_sorted_and_stable(self, tmp_path):
        path = write_baseline(tmp_path, "x", {"b": 2, "a": 1})
        raw = path.read_text()
        assert raw.index('"a"') < raw.index('"b"')
        assert raw == write_baseline(tmp_path, "x", {"a": 1, "b": 2}).read_text()

    @pytest.mark.parametrize(
        "name, metrics",
        [
            ("", {"m": 1}),
            ("a/b", {"m": 1}),
            ("ok", {}),
            ("ok", {"m": float("nan")}),
            ("ok", {"m": [1, 2]}),
        ],
    )
    def test_rejects_bad_input(self, tmp_path, name, metrics):
        with pytest.raises((ValueError, TypeError)):
            write_baseline(tmp_path, name, metrics)


class TestValidate:
    def test_accepts_written_document(self, tmp_path):
        path = write_baseline(tmp_path, "x", {"m": 1})
        validate_baseline(load_baseline(path), source=str(path))

    @pytest.mark.parametrize("drop", ["name", "fingerprint", "metrics"])
    def test_rejects_missing_key(self, tmp_path, drop):
        path = write_baseline(tmp_path, "x", {"m": 1})
        document = load_baseline(path)
        del document[drop]
        with pytest.raises(ValueError, match=drop):
            validate_baseline(document, source=str(path))

    def test_rejects_incomplete_fingerprint(self, tmp_path):
        path = write_baseline(tmp_path, "x", {"m": 1})
        document = load_baseline(path)
        del document["fingerprint"]["python"]
        with pytest.raises(ValueError, match="python"):
            validate_baseline(document, source=str(path))

    def test_directory_counts_and_requires(self, tmp_path):
        write_baseline(tmp_path, "a", {"m": 1})
        write_baseline(tmp_path, "b", {"m": 2})
        assert validate_directory(tmp_path) == ["a", "b"]
        assert validate_directory(tmp_path, require=2) == ["a", "b"]
        with pytest.raises(ValueError, match="expected >= 3"):
            validate_directory(tmp_path, require=3)

    def test_directory_flags_corrupt_file(self, tmp_path):
        write_baseline(tmp_path, "a", {"m": 1})
        (tmp_path / "BENCH_broken.json").write_text(json.dumps({"name": "b"}))
        with pytest.raises(ValueError, match="BENCH_broken"):
            validate_directory(tmp_path)


class TestMeta:
    def test_meta_stamped_on_write(self, tmp_path):
        path = write_baseline(tmp_path, "x", {"m": 1}, execution="process")
        meta = load_baseline(path)["meta"]
        assert meta["execution"] == "process"
        assert meta["cpu_count"] >= 1
        assert meta["python"] and meta["platform"]
        assert isinstance(meta["git_sha"], str)

    def test_run_meta_matches_environment(self):
        import os
        import platform

        meta = run_meta()
        assert meta["python"] == platform.python_version()
        assert meta["cpu_count"] == (os.cpu_count() or 1)
        assert meta["execution"] == "threaded"

    def test_audit_block_round_trips(self, tmp_path):
        audit = {"send_lag_p99_s": 0.0001, "send_lag_max_s": 0.0002}
        path = write_baseline(tmp_path, "x", {"m": 1}, audit=audit)
        document = load_baseline(path)
        assert document["audit"] == audit
        validate_baseline(document, source=str(path))

    def test_validate_rejects_bad_meta_and_audit(self, tmp_path):
        path = write_baseline(tmp_path, "x", {"m": 1}, audit={"a": 1.0})
        document = load_baseline(path)
        document["meta"] = {"python": "3.11"}  # missing required keys
        with pytest.raises(ValueError, match="meta"):
            validate_baseline(document, source=str(path))
        good = load_baseline(path)
        good["audit"] = {"a": "not-a-number"}
        with pytest.raises(ValueError, match="audit"):
            validate_baseline(good, source=str(path))


class TestCompare:
    def test_direction_heuristics(self):
        assert metric_direction("p99_s") == "lower"
        assert metric_direction("qps_4proc") == "higher"
        assert metric_direction("speedup_4proc") == "higher"
        assert metric_direction("service_time_ms") == "lower"
        assert metric_direction("n_apps") == "both"

    def test_within_tolerance_passes(self):
        baseline = {"qps": 100.0, "p99_s": 0.010}
        current = {"qps": 90.0, "p99_s": 0.012}  # both 10-20% worse
        assert compare_metrics(baseline, current, tolerance=0.25,
                               source="t") == []

    def test_regression_in_worse_direction_fails(self):
        regressions = compare_metrics(
            {"qps": 100.0}, {"qps": 60.0}, tolerance=0.25, source="t"
        )
        assert len(regressions) == 1 and "qps" in regressions[0]

    def test_improvement_never_fails(self):
        assert compare_metrics(
            {"qps": 100.0, "p99_s": 0.010},
            {"qps": 500.0, "p99_s": 0.001},
            tolerance=0.1, source="t",
        ) == []

    def test_missing_metric_fails(self):
        regressions = compare_metrics(
            {"qps": 100.0}, {}, tolerance=0.25, source="t"
        )
        assert regressions and "disappeared" in regressions[0]

    def test_directories_intersection(self, tmp_path):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        base.mkdir()
        cur.mkdir()
        write_baseline(base, "a", {"qps": 100.0})
        write_baseline(base, "only_base", {"qps": 1.0})
        write_baseline(cur, "a", {"qps": 99.0})
        regressions, notes = compare_directories(base, cur)
        assert regressions == []
        assert any("only_base" in n for n in notes)

    def test_directories_empty_intersection_noted(self, tmp_path):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        base.mkdir()
        cur.mkdir()
        regressions, notes = compare_directories(base, cur)
        assert regressions == []
        assert any("no comparable baseline pairs" in n for n in notes)


class TestCli:
    def test_ok(self, tmp_path, capsys):
        write_baseline(tmp_path, "a", {"m": 1})
        assert main([str(tmp_path), "--require", "1"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_failure_exit_code(self, tmp_path, capsys):
        assert main([str(tmp_path), "--require", "1"]) == 1
        assert "expected >= 1" in capsys.readouterr().err

    def test_explicit_validate_subcommand(self, tmp_path, capsys):
        write_baseline(tmp_path, "a", {"m": 1})
        assert main(["validate", str(tmp_path), "--require", "1"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_compare_ok(self, tmp_path, capsys):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        base.mkdir()
        cur.mkdir()
        write_baseline(base, "a", {"qps": 100.0})
        write_baseline(cur, "a", {"qps": 98.0})
        assert main(["compare", str(base), str(cur)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_regression_exit_code(self, tmp_path, capsys):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        base.mkdir()
        cur.mkdir()
        write_baseline(base, "a", {"qps": 100.0})
        write_baseline(cur, "a", {"qps": 10.0})
        assert main(["compare", str(base), str(cur),
                     "--tolerance", "0.25"]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_compare_strict_fingerprint_policy(self, tmp_path, capsys):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        base.mkdir()
        cur.mkdir()
        path = write_baseline(base, "a", {"qps": 100.0})
        document = load_baseline(path)
        document["fingerprint"]["python"] = "0.0.0"
        path.write_text(json.dumps(document))
        write_baseline(cur, "a", {"qps": 100.0})
        assert main(["compare", str(base), str(cur),
                     "--fingerprint-policy", "strict"]) == 1
        assert main(["compare", str(base), str(cur),
                     "--fingerprint-policy", "skip"]) == 0

"""Benchmark-baseline artifacts: write, load, validate, CLI."""

import json

import pytest

from repro.experiments.baseline import (
    baseline_path,
    load_baseline,
    main,
    run_fingerprint,
    validate_baseline,
    validate_directory,
    write_baseline,
)


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        path = write_baseline(tmp_path, "fig9", {"p99_s": 0.012, "apps": 3})
        assert path == baseline_path(tmp_path, "fig9")
        assert path.name == "BENCH_fig9.json"
        document = load_baseline(path)
        assert document["name"] == "fig9"
        assert document["metrics"] == {"apps": 3, "p99_s": 0.012}

    def test_fingerprint_stamped(self, tmp_path):
        path = write_baseline(tmp_path, "x", {"m": 1})
        fingerprint = load_baseline(path)["fingerprint"]
        assert fingerprint == run_fingerprint()
        assert fingerprint["python"]
        assert fingerprint["platform"]

    def test_metrics_sorted_and_stable(self, tmp_path):
        path = write_baseline(tmp_path, "x", {"b": 2, "a": 1})
        raw = path.read_text()
        assert raw.index('"a"') < raw.index('"b"')
        assert raw == write_baseline(tmp_path, "x", {"a": 1, "b": 2}).read_text()

    @pytest.mark.parametrize(
        "name, metrics",
        [
            ("", {"m": 1}),
            ("a/b", {"m": 1}),
            ("ok", {}),
            ("ok", {"m": float("nan")}),
            ("ok", {"m": [1, 2]}),
        ],
    )
    def test_rejects_bad_input(self, tmp_path, name, metrics):
        with pytest.raises((ValueError, TypeError)):
            write_baseline(tmp_path, name, metrics)


class TestValidate:
    def test_accepts_written_document(self, tmp_path):
        path = write_baseline(tmp_path, "x", {"m": 1})
        validate_baseline(load_baseline(path), source=str(path))

    @pytest.mark.parametrize("drop", ["name", "fingerprint", "metrics"])
    def test_rejects_missing_key(self, tmp_path, drop):
        path = write_baseline(tmp_path, "x", {"m": 1})
        document = load_baseline(path)
        del document[drop]
        with pytest.raises(ValueError, match=drop):
            validate_baseline(document, source=str(path))

    def test_rejects_incomplete_fingerprint(self, tmp_path):
        path = write_baseline(tmp_path, "x", {"m": 1})
        document = load_baseline(path)
        del document["fingerprint"]["python"]
        with pytest.raises(ValueError, match="python"):
            validate_baseline(document, source=str(path))

    def test_directory_counts_and_requires(self, tmp_path):
        write_baseline(tmp_path, "a", {"m": 1})
        write_baseline(tmp_path, "b", {"m": 2})
        assert validate_directory(tmp_path) == ["a", "b"]
        assert validate_directory(tmp_path, require=2) == ["a", "b"]
        with pytest.raises(ValueError, match="expected >= 3"):
            validate_directory(tmp_path, require=3)

    def test_directory_flags_corrupt_file(self, tmp_path):
        write_baseline(tmp_path, "a", {"m": 1})
        (tmp_path / "BENCH_broken.json").write_text(json.dumps({"name": "b"}))
        with pytest.raises(ValueError, match="BENCH_broken"):
            validate_directory(tmp_path)


class TestCli:
    def test_ok(self, tmp_path, capsys):
        write_baseline(tmp_path, "a", {"m": 1})
        assert main([str(tmp_path), "--require", "1"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_failure_exit_code(self, tmp_path, capsys):
        assert main([str(tmp_path), "--require", "1"]) == 1
        assert "expected >= 1" in capsys.readouterr().err

"""Tests for the analysis package (SLO capacity, fan-out, decomposition)."""

import math
import random

import pytest

from repro.analysis import (
    capacity_curve,
    decompose,
    fanout_quantile,
    fanout_summary,
    find_slo_capacity,
    required_leaf_quantile,
)
from repro.sim import AppProfile, SimConfig, paper_profile, simulate_load
from repro.stats import Exponential, quantile


class TestSloCapacity:
    @pytest.fixture(scope="class")
    def mm1_profile(self):
        return AppProfile(name="mm1", service=Exponential.from_mean(1e-3))

    def test_matches_mm1_closed_form(self, mm1_profile):
        # M/M/1 sojourn is exponential: p95 <= slo  <=>
        # lambda <= mu - ln(20)/slo.
        slo = 10e-3
        capacity = find_slo_capacity(
            mm1_profile, slo, percentile=95.0, measure_requests=20_000
        )
        analytic = 1000.0 - math.log(20.0) / slo
        assert capacity.qps == pytest.approx(analytic, rel=0.12)

    def test_result_meets_slo(self, mm1_profile):
        capacity = find_slo_capacity(mm1_profile, 8e-3, measure_requests=8000)
        assert capacity.latency_at_qps <= 8e-3
        assert 0.0 <= capacity.headroom <= 1.0
        assert 0.0 < capacity.utilization < 1.0

    def test_tighter_slo_lower_capacity(self, mm1_profile):
        loose = find_slo_capacity(mm1_profile, 20e-3, measure_requests=6000)
        tight = find_slo_capacity(mm1_profile, 4e-3, measure_requests=6000)
        assert tight.qps < loose.qps

    def test_infeasible_slo_rejected(self, mm1_profile):
        with pytest.raises(ValueError, match="infeasible"):
            find_slo_capacity(mm1_profile, 1e-6, measure_requests=4000)

    def test_capacity_curve_monotone(self, mm1_profile):
        curve = capacity_curve(
            mm1_profile, slos=(4e-3, 10e-3, 25e-3), measure_requests=5000
        )
        qps = [c.qps for c in curve]
        assert qps == sorted(qps)

    def test_more_threads_more_capacity(self):
        profile = paper_profile("xapian")
        one = find_slo_capacity(
            profile, 10e-3, config=SimConfig(n_threads=1, measure_requests=5000)
        )
        four = find_slo_capacity(
            profile, 10e-3, config=SimConfig(n_threads=4, measure_requests=5000)
        )
        assert four.qps > 2.5 * one.qps

    def test_validation(self, mm1_profile):
        with pytest.raises(ValueError):
            find_slo_capacity(mm1_profile, 0.0)
        with pytest.raises(ValueError):
            find_slo_capacity(mm1_profile, 1e-3, percentile=100.0)
        with pytest.raises(ValueError):
            capacity_curve(mm1_profile, slos=())


class TestFanout:
    @pytest.fixture(scope="class")
    def leaf_samples(self):
        rng = random.Random(0)
        return [rng.expovariate(1000.0) for _ in range(50_000)]

    def test_matches_order_statistic_identity(self, leaf_samples):
        # For exponential leaves, max of n has quantile
        # -ln(1 - q^(1/n)) / rate.
        for fanout in (1, 10, 100):
            ours = fanout_quantile(leaf_samples, fanout, 0.5)
            analytic = -math.log(1.0 - 0.5 ** (1.0 / fanout)) / 1000.0
            assert ours == pytest.approx(analytic, rel=0.1), fanout

    def test_monotone_in_fanout(self, leaf_samples):
        values = [
            fanout_quantile(leaf_samples, n, 0.95) for n in (1, 5, 25, 125)
        ]
        assert values == sorted(values)

    def test_fanout_one_is_identity(self, leaf_samples):
        assert fanout_quantile(leaf_samples, 1, 0.9) == pytest.approx(
            quantile(leaf_samples, 0.9)
        )

    def test_summary_structure(self, leaf_samples):
        summary = fanout_summary(leaf_samples, fanouts=(1, 10))
        assert set(summary) == {1, 10}
        assert summary[10][0.5] > summary[1][0.5]

    def test_required_leaf_quantile(self):
        # Controlling the e2e median at fan-out 100 needs ~p99.3 leaves.
        assert required_leaf_quantile(100, 0.5) == pytest.approx(0.9931, abs=1e-3)
        assert required_leaf_quantile(1, 0.95) == pytest.approx(0.95)

    def test_validation(self, leaf_samples):
        with pytest.raises(ValueError):
            fanout_quantile(leaf_samples, 0, 0.5)
        with pytest.raises(ValueError):
            fanout_quantile(leaf_samples, 5, 1.0)
        with pytest.raises(ValueError):
            fanout_quantile([], 5, 0.5)
        with pytest.raises(ValueError):
            required_leaf_quantile(0, 0.5)


class TestFanoutVsBruteForce:
    """Property tests: the closed form vs brute-force max-of-N resampling.

    ``fanout_quantile`` rests on ``P(max <= t) = F(t)**n`` — valid for
    *iid* leaves. The brute-force oracle constructs exactly that
    setting: draw n leaves independently from the empirical sample,
    take the max, repeat, and read the quantile off the resampled
    maxima. As the resample count grows the two must converge, for any
    leaf distribution shape.
    """

    DISTRIBUTIONS = {
        "exponential": lambda rng: rng.expovariate(1000.0),
        "lognormal": lambda rng: rng.lognormvariate(-7.0, 0.8),
        "bimodal": lambda rng: (
            rng.expovariate(5000.0)
            if rng.random() < 0.9
            else 5e-3 + rng.expovariate(500.0)
        ),
        "uniform": lambda rng: rng.uniform(1e-4, 2e-3),
    }

    def _brute_force(self, rng, leaves, fanout, q, trials=20_000):
        maxima = [
            max(rng.choice(leaves) for _ in range(fanout))
            for _ in range(trials)
        ]
        return quantile(maxima, q)

    @pytest.mark.parametrize("shape", sorted(DISTRIBUTIONS))
    @pytest.mark.parametrize("fanout", [2, 4, 8])
    def test_matches_resampled_maxima(self, shape, fanout):
        rng = random.Random(f"{shape}-{fanout}")  # str seeding is stable
        draw = self.DISTRIBUTIONS[shape]
        leaves = [draw(rng) for _ in range(30_000)]
        for q in (0.9, 0.99):
            closed = fanout_quantile(leaves, fanout, q)
            brute = self._brute_force(rng, leaves, fanout, q)
            assert closed == pytest.approx(brute, rel=0.12), (shape, fanout, q)

    def test_consistent_with_required_leaf_quantile(self):
        rng = random.Random(11)
        leaves = [rng.expovariate(1000.0) for _ in range(20_000)]
        for fanout in (3, 7, 50):
            assert fanout_quantile(leaves, fanout, 0.95) == pytest.approx(
                quantile(leaves, required_leaf_quantile(fanout, 0.95))
            )

    def test_iid_assumption_documented(self):
        # The module must spell out the independence caveat that the
        # sharded live path deliberately violates (shared arrivals).
        import repro.analysis.fanout as mod

        assert "iid assumption" in mod.__doc__
        assert "correlated" in mod.__doc__


class TestDecomposition:
    def test_low_load_service_dominates(self):
        profile = paper_profile("xapian")
        result = simulate_load(
            profile,
            SimConfig(qps=0.1 / profile.service.mean, measure_requests=5000),
        )
        breakdown = decompose(result.stats, pct=95.0)
        assert breakdown.dominant() == "service"
        assert breakdown.service > breakdown.queue

    def test_high_load_queue_dominates(self):
        profile = paper_profile("xapian")
        result = simulate_load(
            profile,
            SimConfig(qps=0.95 / profile.service.mean, measure_requests=5000),
        )
        breakdown = decompose(result.stats, pct=95.0)
        assert breakdown.dominant() == "queue"
        assert breakdown.queue > breakdown.service

    def test_shares_sum_to_one(self):
        profile = paper_profile("masstree")
        result = simulate_load(
            profile,
            SimConfig(qps=0.5 / profile.service.mean, measure_requests=3000,
                      configuration="networked"),
        )
        breakdown = decompose(result.stats)
        total = (
            breakdown.tail_dominated_by_queue
            + breakdown.tail_dominated_by_service
            + breakdown.tail_dominated_by_network
        )
        assert total == pytest.approx(1.0)

    def test_validation(self):
        profile = paper_profile("silo")
        result = simulate_load(profile, SimConfig(qps=1000, measure_requests=500))
        with pytest.raises(ValueError):
            decompose(result.stats, pct=0.0)

"""Failure injection: the system under partial failure.

Latency-critical infrastructure must degrade cleanly: failing requests
must not corrupt statistics, a torn log tail must not break recovery,
worker errors must not kill the harness, and transactions interrupted
by unexpected exceptions must release their locks.
"""

import os
import random
import time

import pytest

from repro import HarnessConfig, run_harness
from repro.apps.shore import ShoreEngine
from repro.apps.silo import Database, TransactionAborted
from repro.core import ResilienceConfig
from repro.faults import FaultPlan
from repro.sim import SimConfig, simulate_app


class FlakyApp:
    """Fails a configurable fraction of requests."""

    def __init__(self, failure_rate=0.2, seed=0):
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)

    def setup(self):
        pass

    def process(self, payload):
        if self._rng.random() < self.failure_rate:
            raise RuntimeError("injected failure")
        return payload

    def make_client(self, seed=0):
        class _Client:
            def next_request(self):
                return "x"

        return _Client()


class TestHarnessUnderFailures:
    def test_partial_failures_excluded_from_stats(self):
        app = FlakyApp(failure_rate=0.3)
        result = run_harness(
            app, HarnessConfig(qps=500, warmup_requests=0, measure_requests=200)
        )
        errors = len(result.server_errors)
        assert 20 < errors < 120  # ~30% of 200
        # Failed requests never enter the latency statistics.
        assert result.stats.count == 200 - errors
        assert all("injected failure" in e for e in result.server_errors)

    def test_total_failure_yields_empty_stats_not_crash(self):
        app = FlakyApp(failure_rate=1.0)
        result = run_harness(
            app, HarnessConfig(qps=500, warmup_requests=0, measure_requests=50)
        )
        assert result.stats.count == 0
        assert len(result.server_errors) == 50

    def test_failures_across_worker_threads(self):
        app = FlakyApp(failure_rate=0.5)
        result = run_harness(
            app,
            HarnessConfig(
                qps=800, n_threads=4, warmup_requests=0, measure_requests=200
            ),
        )
        assert result.stats.count + len(result.server_errors) == 200


class SleepyApp:
    """Constant-service-time application (1 ms)."""

    def __init__(self, service_time=0.001):
        self.service_time = service_time

    def setup(self):
        pass

    def process(self, payload):
        time.sleep(self.service_time)
        return payload

    def make_client(self, seed=0):
        class _Client:
            def next_request(self):
                return "x"

        return _Client()


class TestFaultInjectionLive:
    """The ISSUE's live acceptance scenario: injected faults + recovery."""

    def test_faulted_resilient_run_completes_with_sound_accounting(self):
        plan = FaultPlan(
            drop_rate=0.05,
            error_rate=0.05,
            worker_pause_rate=0.02,
            worker_pause=0.02,
            queue_stalls=[(0.15, 0.15)],
        )
        config = HarnessConfig(
            qps=400,
            n_threads=2,
            warmup_requests=0,
            measure_requests=300,
            seed=11,
            faults=plan,
            resilience=ResilienceConfig(
                deadline=0.1, max_retries=2, hedge_after=0.04
            ),
        )
        result = run_harness(SleepyApp(), config)
        o = result.outcomes
        # Every logical request resolved exactly once — no hang, no leak.
        assert o["offered"] == 300
        assert o["succeeded"] + o["timed_out"] + o["failed"] == 300
        assert o["succeeded"] > 0
        assert o["timed_out"] > 0  # the stall window starves deadlines
        # Recovery really fired, and it amplifies offered load.
        assert o["attempts"] > o["offered"]
        assert result.retry_amplification > 1.0
        # Goodput counts only deadline-met completions.
        assert result.goodput_qps < result.achieved_qps
        # Success-only and per-attempt percentiles are distinct views.
        assert result.stats.attempt_count > result.stats.count
        assert result.attempt_latency.p99 != result.sojourn.p99
        # Faults actually fired and were counted.
        assert result.fault_counts["drops"] > 0
        assert result.fault_counts["app_errors"] > 0

    def test_bounded_queue_sheds_under_overload(self):
        # 1 worker x 5 ms service = 200 qps capacity, offered 2000 qps,
        # queue bounded at 4: most arrivals must be shed, and shed
        # requests must stay out of the latency statistics.
        config = HarnessConfig(
            qps=2000,
            n_threads=1,
            warmup_requests=0,
            measure_requests=200,
            queue_capacity=4,
            seed=3,
        )
        result = run_harness(SleepyApp(service_time=0.005), config)
        o = result.outcomes
        assert o["shed"] > 0
        assert result.stats.count == 200 - o["shed"]

    def test_drops_without_resilience_do_not_hang_drain(self):
        plan = FaultPlan(drop_rate=0.3)
        config = HarnessConfig(
            qps=500, warmup_requests=0, measure_requests=100,
            faults=plan, seed=5,
        )
        start = time.monotonic()
        result = run_harness(SleepyApp(), config)
        assert time.monotonic() - start < 30.0
        dropped = result.fault_counts["drops"]
        assert dropped > 0
        assert result.stats.count == 100 - dropped


class TestFaultInjectionSim:
    """The same fault plans replayed in virtual time are deterministic."""

    def _config(self, seed=7):
        return SimConfig(
            qps=2000,
            n_threads=2,
            warmup_requests=50,
            measure_requests=1500,
            seed=seed,
            faults=FaultPlan(
                drop_rate=0.05,
                error_rate=0.03,
                worker_pause_rate=0.01,
                worker_pause=0.002,
                queue_stalls=[(0.05, 0.02)],
            ),
            resilience=ResilienceConfig(
                deadline=0.02, max_retries=2, hedge_after=0.005
            ),
            queue_capacity=64,
        )

    def test_same_seed_byte_identical(self):
        a = simulate_app("masstree", self._config())
        b = simulate_app("masstree", self._config())
        assert a.outcomes == b.outcomes
        assert a.fault_counts == b.fault_counts
        assert a.virtual_time == b.virtual_time
        assert a.stats.samples("sojourn") == b.stats.samples("sojourn")
        assert a.stats.attempt_samples() == b.stats.attempt_samples()

    def test_different_seed_differs(self):
        a = simulate_app("masstree", self._config(seed=7))
        b = simulate_app("masstree", self._config(seed=8))
        assert a.stats.samples("sojourn") != b.stats.samples("sojourn")

    def test_failure_aware_metrics_present(self):
        result = simulate_app("masstree", self._config())
        o = result.outcomes
        assert o["offered"] == 1550
        assert o["succeeded"] + o["timed_out"] + o["failed"] == 1550
        assert o["attempts"] > o["offered"]
        assert result.retry_amplification > 1.0
        assert result.fault_counts["drops"] > 0
        assert 0.0 < result.success_rate <= 1.0

    def test_worker_crashes_reduce_throughput(self):
        # Crash-prone workers must degrade the server, not the harness.
        crashy = SimConfig(
            qps=3000,
            n_threads=4,
            warmup_requests=0,
            measure_requests=2000,
            seed=2,
            faults=FaultPlan(worker_crash_rate=0.01),
            resilience=ResilienceConfig(deadline=0.05),
        )
        result = simulate_app("masstree", crashy)
        assert result.fault_counts["crashes"] >= 1
        # With capacity gone, late-run requests blow their deadlines.
        assert result.outcomes["timed_out"] > 0


class TestShoreTornLog:
    def test_truncated_log_tail_ignored(self, tmp_path):
        log_path = str(tmp_path / "wal.log")
        engine = ShoreEngine(db_path=str(tmp_path / "d.db"), log_path=log_path)
        table = engine.create_table("t")
        engine.run(lambda t: t.insert(table, 1, "committed-1"))
        engine.run(lambda t: t.insert(table, 2, "committed-2"))
        engine.log.force()
        size_after_commits = os.path.getsize(log_path)
        # A third transaction's records reach the disk only partially
        # (crash mid-write): append then tear the last 3 bytes off.
        engine.run(lambda t: t.insert(table, 3, "torn"))
        engine.log.force()
        with open(log_path, "r+b") as f:
            f.truncate(os.path.getsize(log_path) - 3)
        assert os.path.getsize(log_path) > size_after_commits

        recovered = ShoreEngine(
            db_path=str(tmp_path / "fresh.db"), log_path=log_path
        )
        rtable = recovered.create_table("t")
        recovered.recover()  # must not raise on the torn tail
        assert recovered.run(lambda t: t.read(rtable, 1)) == "committed-1"
        assert recovered.run(lambda t: t.read(rtable, 2)) == "committed-2"
        recovered.close()
        engine.close()

    def test_empty_log_recovers_to_empty(self, tmp_path):
        log_path = str(tmp_path / "wal.log")
        open(log_path, "wb").close()
        engine = ShoreEngine(log_path=log_path)
        table = engine.create_table("t")
        assert engine.recover() == 0
        assert len(table) == 0
        engine.close()


class TestEngineExceptionSafety:
    def test_silo_unexpected_exception_releases_nothing_held(self):
        db = Database()
        table = db.create_table("t")
        db.run(lambda t: t.insert(table, 1, 0))

        class AppBug(Exception):
            pass

        def buggy(txn):
            txn.read(table, 1)
            raise AppBug("logic error, not an OCC abort")

        with pytest.raises(AppBug):
            db.run(buggy)
        # The record must still be writable (no lock leaked).
        db.run(lambda t: t.write(table, 1, 42))
        assert db.run(lambda t: t.read(table, 1)) == 42

    def test_shore_unexpected_exception_releases_locks(self, tmp_path):
        engine = ShoreEngine(log_path=str(tmp_path / "wal.log"))
        table = engine.create_table("t", lambda key: key)
        engine.run(lambda t: t.insert(table, 1, 0))

        class AppBug(Exception):
            pass

        txn = engine.transaction()
        txn.write(table, 1, 99)  # takes the exclusive lock
        txn.abort()  # simulates the driver's cleanup path
        # Lock must be free for the next transaction.
        engine.run(lambda t: t.write(table, 1, 7))
        assert engine.run(lambda t: t.read(table, 1)) == 7
        engine.close()

    def test_silo_commit_failure_leaves_consistent_state(self):
        db = Database()
        table = db.create_table("t")
        db.run(lambda t: t.insert(table, 1, "original"))
        stale = db.transaction()
        stale.read(table, 1)
        stale.write(table, 1, "stale-write")
        db.run(lambda t: t.write(table, 1, "fresh"))
        with pytest.raises(TransactionAborted):
            stale.commit()
        assert db.run(lambda t: t.read(table, 1)) == "fresh"
        # And the record accepts subsequent writes (locks released).
        db.run(lambda t: t.write(table, 1, "after"))
        assert db.run(lambda t: t.read(table, 1)) == "after"

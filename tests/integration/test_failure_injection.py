"""Failure injection: the system under partial failure.

Latency-critical infrastructure must degrade cleanly: failing requests
must not corrupt statistics, a torn log tail must not break recovery,
worker errors must not kill the harness, and transactions interrupted
by unexpected exceptions must release their locks.
"""

import os
import random

import pytest

from repro import HarnessConfig, run_harness
from repro.apps.shore import ShoreEngine
from repro.apps.silo import Database, TransactionAborted


class FlakyApp:
    """Fails a configurable fraction of requests."""

    def __init__(self, failure_rate=0.2, seed=0):
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)

    def setup(self):
        pass

    def process(self, payload):
        if self._rng.random() < self.failure_rate:
            raise RuntimeError("injected failure")
        return payload

    def make_client(self, seed=0):
        class _Client:
            def next_request(self):
                return "x"

        return _Client()


class TestHarnessUnderFailures:
    def test_partial_failures_excluded_from_stats(self):
        app = FlakyApp(failure_rate=0.3)
        result = run_harness(
            app, HarnessConfig(qps=500, warmup_requests=0, measure_requests=200)
        )
        errors = len(result.server_errors)
        assert 20 < errors < 120  # ~30% of 200
        # Failed requests never enter the latency statistics.
        assert result.stats.count == 200 - errors
        assert all("injected failure" in e for e in result.server_errors)

    def test_total_failure_yields_empty_stats_not_crash(self):
        app = FlakyApp(failure_rate=1.0)
        result = run_harness(
            app, HarnessConfig(qps=500, warmup_requests=0, measure_requests=50)
        )
        assert result.stats.count == 0
        assert len(result.server_errors) == 50

    def test_failures_across_worker_threads(self):
        app = FlakyApp(failure_rate=0.5)
        result = run_harness(
            app,
            HarnessConfig(
                qps=800, n_threads=4, warmup_requests=0, measure_requests=200
            ),
        )
        assert result.stats.count + len(result.server_errors) == 200


class TestShoreTornLog:
    def test_truncated_log_tail_ignored(self, tmp_path):
        log_path = str(tmp_path / "wal.log")
        engine = ShoreEngine(db_path=str(tmp_path / "d.db"), log_path=log_path)
        table = engine.create_table("t")
        engine.run(lambda t: t.insert(table, 1, "committed-1"))
        engine.run(lambda t: t.insert(table, 2, "committed-2"))
        engine.log.force()
        size_after_commits = os.path.getsize(log_path)
        # A third transaction's records reach the disk only partially
        # (crash mid-write): append then tear the last 3 bytes off.
        engine.run(lambda t: t.insert(table, 3, "torn"))
        engine.log.force()
        with open(log_path, "r+b") as f:
            f.truncate(os.path.getsize(log_path) - 3)
        assert os.path.getsize(log_path) > size_after_commits

        recovered = ShoreEngine(
            db_path=str(tmp_path / "fresh.db"), log_path=log_path
        )
        rtable = recovered.create_table("t")
        recovered.recover()  # must not raise on the torn tail
        assert recovered.run(lambda t: t.read(rtable, 1)) == "committed-1"
        assert recovered.run(lambda t: t.read(rtable, 2)) == "committed-2"
        recovered.close()
        engine.close()

    def test_empty_log_recovers_to_empty(self, tmp_path):
        log_path = str(tmp_path / "wal.log")
        open(log_path, "wb").close()
        engine = ShoreEngine(log_path=log_path)
        table = engine.create_table("t")
        assert engine.recover() == 0
        assert len(table) == 0
        engine.close()


class TestEngineExceptionSafety:
    def test_silo_unexpected_exception_releases_nothing_held(self):
        db = Database()
        table = db.create_table("t")
        db.run(lambda t: t.insert(table, 1, 0))

        class AppBug(Exception):
            pass

        def buggy(txn):
            txn.read(table, 1)
            raise AppBug("logic error, not an OCC abort")

        with pytest.raises(AppBug):
            db.run(buggy)
        # The record must still be writable (no lock leaked).
        db.run(lambda t: t.write(table, 1, 42))
        assert db.run(lambda t: t.read(table, 1)) == 42

    def test_shore_unexpected_exception_releases_locks(self, tmp_path):
        engine = ShoreEngine(log_path=str(tmp_path / "wal.log"))
        table = engine.create_table("t", lambda key: key)
        engine.run(lambda t: t.insert(table, 1, 0))

        class AppBug(Exception):
            pass

        txn = engine.transaction()
        txn.write(table, 1, 99)  # takes the exclusive lock
        txn.abort()  # simulates the driver's cleanup path
        # Lock must be free for the next transaction.
        engine.run(lambda t: t.write(table, 1, 7))
        assert engine.run(lambda t: t.read(table, 1)) == 7
        engine.close()

    def test_silo_commit_failure_leaves_consistent_state(self):
        db = Database()
        table = db.create_table("t")
        db.run(lambda t: t.insert(table, 1, "original"))
        stale = db.transaction()
        stale.read(table, 1)
        stale.write(table, 1, "stale-write")
        db.run(lambda t: t.write(table, 1, "fresh"))
        with pytest.raises(TransactionAborted):
            stale.commit()
        assert db.run(lambda t: t.read(table, 1)) == "fresh"
        # And the record accepts subsequent writes (locks released).
        db.run(lambda t: t.write(table, 1, "after"))
        assert db.run(lambda t: t.read(table, 1)) == "after"

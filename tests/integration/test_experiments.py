"""Tests for the experiment drivers (fast sample sizes)."""

import pytest

from repro.experiments.cli import EXPERIMENTS, run_experiment
from repro.experiments.fig2 import run_fig2, run_fig2_live
from repro.experiments.fig3 import sweep_app
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig8 import run_fig8
from repro.experiments.reporting import ascii_table, to_csv
from repro.experiments.table1 import PAPER_TABLE1, render_table1, run_table1


class TestReporting:
    def test_ascii_table(self):
        text = ascii_table(["a", "b"], [[1, 2], [30, 40]], title="T")
        assert "T" in text and "30" in text
        assert text.count("\n") == 4

    def test_ascii_table_validates(self):
        with pytest.raises(ValueError):
            ascii_table([], [])
        with pytest.raises(ValueError):
            ascii_table(["a"], [[1, 2]])

    def test_to_csv(self):
        csv = to_csv(["x", "y"], [[1, 2]])
        assert csv.splitlines() == ["x,y", "1,2"]


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table1(measure_requests=2500, n_instructions=60_000)

    def test_covers_all_eight_apps(self, rows):
        assert [r.name for r in rows] == [
            "xapian", "masstree", "moses", "sphinx",
            "img-dnn", "specjbb", "silo", "shore",
        ]

    def test_latency_monotone_in_load(self, rows):
        for row in rows:
            assert row.p95_by_load[0.2] < row.p95_by_load[0.5] < row.p95_by_load[0.7]

    def test_values_within_3x_of_paper(self, rows):
        # Shape criterion: reproduce magnitudes, not exact numbers.
        for row in rows:
            paper = PAPER_TABLE1[row.name]
            for j, load in enumerate((0.2, 0.5, 0.7)):
                ours, theirs = row.p95_by_load[load], paper[5 + j]
                assert theirs / 3 < ours < theirs * 3, (row.name, load)

    def test_render(self, rows):
        text = render_table1(rows)
        assert "Table I" in text
        assert "xapian" in text and "95th" in text


class TestFig2:
    def test_simulated_cdfs(self):
        cdfs = run_fig2(n_samples=3000)
        assert len(cdfs) == 8
        sphinx = cdfs["sphinx"].quantiles()
        silo = cdfs["silo"].quantiles()
        assert sphinx[0.5] > 1000 * silo[0.5]  # seconds vs microseconds

    def test_cdf_points_monotone(self):
        cdfs = run_fig2(n_samples=1000)
        points = cdfs["shore"].cdf_points(50)
        values = [v for v, _ in points]
        probs = [p for _, p in points]
        assert values == sorted(values)
        assert probs == sorted(probs)

    def test_near_constant_apps_tight(self):
        cdfs = run_fig2(n_samples=5000)
        for name in ("masstree", "img-dnn"):
            q = cdfs[name].quantiles()
            assert q[0.95] / q[0.05] < 3.0
        # xapian is broad: >5x spread between p5 and p95 (Fig. 2).
        q = cdfs["xapian"].quantiles()
        assert q[0.95] / q[0.05] > 5.0

    def test_live_mode_measures_real_apps(self):
        cdfs = run_fig2_live(
            n_samples=30,
            apps=("masstree",),
            app_kwargs={"masstree": {"n_records": 300}},
        )
        assert cdfs["masstree"].quantiles()[0.5] > 0


class TestFig5AndFig6:
    def test_fig5_saturation_drops_match_paper(self):
        results = run_fig5(measure_requests=1500, apps=("silo", "specjbb", "xapian"))
        # Fig. 5 annotations: silo -39%, specjbb -23%; long-request
        # apps lose almost nothing.
        assert results["silo"].saturation_drop("networked") == pytest.approx(
            0.39, abs=0.08
        )
        assert results["specjbb"].saturation_drop("networked") == pytest.approx(
            0.23, abs=0.08
        )
        assert results["xapian"].saturation_drop("networked") < 0.05

    def test_fig5_simulation_speedup(self):
        results = run_fig5(measure_requests=1500, apps=("shore",))
        # Simulated system is faster: negative saturation "drop".
        assert results["shore"].saturation_drop("simulation") < -0.2

    def test_fig6_curves_collapse_vs_load(self):
        results = run_fig6(measure_requests=2500)
        for name, curves in results.items():
            # At equal load, setups differ by bounded constant factors
            # (network adds us-scale shifts; sim is a speed factor) —
            # nothing like the unbounded near-saturation divergence
            # seen at equal QPS.
            assert curves.max_relative_spread() < 0.6


class TestFig8:
    @pytest.fixture(scope="class")
    def results(self):
        return run_fig8(measure_requests=6000)

    def test_reproduces_case_study_conclusions(self, results):
        # Sec. VII: moses is memory-bound, silo is sync-bound.
        assert results["moses"].ideal_tracks_mgn(4)
        assert not results["silo"].ideal_tracks_mgn(4)

    def test_mg4_beats_mg1(self, results):
        for result in results.values():
            mg1 = result.series["M/G/1"]
            mg4 = result.series["M/G/4"]
            # At equal per-thread load, pooling wins at moderate+ loads.
            assert mg4[5] < mg1[5]


class TestSweeps:
    def test_sweep_app_returns_monotone_qps(self):
        curve = sweep_app("masstree", measure_requests=1000,
                          load_points=(0.2, 0.5, 0.8))
        assert list(curve.qps) == sorted(curve.qps)
        assert len(curve.p95) == 3

    def test_saturation_onset_detects_knee(self):
        curve = sweep_app("masstree", measure_requests=2500)
        onset = curve.saturation_onset()
        # Knee must be in the upper half of the sweep.
        assert onset > 0.5 * curve.qps[-1]


class TestCli:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"
        }

    def test_run_experiment_unknown(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_cli_fig2_fast(self, capsys):
        from repro.experiments.cli import main

        assert main(["fig2", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out


class TestCliSave:
    def test_save_writes_output_files(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out_dir = tmp_path / "artifacts"
        assert main(["fig2", "--fast", "--save", str(out_dir)]) == 0
        saved = (out_dir / "fig2.txt").read_text()
        assert "Fig. 2" in saved
        assert saved.rstrip("\n") in capsys.readouterr().out


class TestFig4Units:
    def test_measured_capacity_from_utilization(self):
        from repro.experiments.fig3 import LatencyCurve

        curve = LatencyCurve(
            "x", qps=(100.0, 200.0, 300.0), mean=(1, 1, 1),
            p95=(1, 1, 1), p99=(1, 1, 1), utilization=(0.25, 0.5, 0.75),
        )
        assert curve.measured_capacity() == pytest.approx(400.0)
        assert curve.measured_capacity(index=0) == pytest.approx(400.0)

    def test_measured_capacity_requires_utilization(self):
        from repro.experiments.fig3 import LatencyCurve

        curve = LatencyCurve("x", (1.0,), (1,), (1,), (1,))
        with pytest.raises(ValueError):
            curve.measured_capacity()

    def test_fig4_thread_scaling_signals(self):
        from repro.experiments.fig4 import run_fig4

        results = run_fig4(measure_requests=2000, apps=("silo", "moses"))
        silo = results["silo"]
        assert silo.per_thread_saturation(4) < silo.per_thread_saturation(2)
        assert silo.per_thread_saturation(2) < silo.per_thread_saturation(1)
        moses = results["moses"]
        assert (
            moses.per_thread_saturation(4)
            < 0.75 * moses.per_thread_saturation(1)
        )

    def test_fig4_common_grid_across_thread_counts(self):
        from repro.experiments.fig4 import run_fig4

        results = run_fig4(measure_requests=800, apps=("masstree",))
        curves = results["masstree"].curves
        grids = [tuple(c.qps) for c in curves.values()]
        assert len(set(grids)) == 1  # identical per-thread QPS axis


class TestExtensions:
    def test_extension_registry_disjoint_from_paper(self):
        from repro.experiments.cli import EXPERIMENTS, EXTENSIONS

        assert set(EXTENSIONS) == {
            "ext-colocation",
            "ext-energy",
            "fig-topology",
            "fig-control",
            "fig-batching",
            "fig-resilience",
            "fig-live",
            "fig-fanout",
            "fig-cache",
        }
        assert not set(EXTENSIONS) & set(EXPERIMENTS)

    def test_ext_colocation_runs(self):
        out = run_experiment("ext-colocation", fast=True)
        assert "Colocation" in out
        assert "max safe batch share" in out

    def test_ext_energy_runs(self):
        out = run_experiment("ext-energy", fast=True)
        assert "Energy policies" in out
        assert "queue-boost" in out

    def test_colocation_monotone_in_share(self):
        from repro.experiments.extensions import run_ext_colocation

        data = run_ext_colocation(measure_requests=2000)
        p95s = [p95 for _, p95, _ in data["sweep"]]
        assert p95s == sorted(p95s)
        safe_shares = [share for _, share in data["safe"]]
        assert safe_shares == sorted(safe_shares, reverse=True)

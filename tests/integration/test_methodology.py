"""Integration: the measurement-methodology claims of Sec. IV.

These tests demonstrate, inside the simulator, the methodological
points the paper builds its harness on: coordinated omission, open-
vs closed-loop behaviour, and warmup effects.
"""

import random

import pytest

from repro.sim import (
    AppProfile,
    Engine,
    ServiceTimeModel,
    SimConfig,
    SimulatedServer,
    simulate_load,
)
from repro.core import StatsCollector
from repro.sim.network_model import NETWORK_MODELS
from repro.stats import Deterministic, Exponential


def closed_loop_latencies(service_mean, n_requests, think_time=0.0):
    """A 1-client closed loop over the same simulated server.

    The client sends request i+1 only after response i returns — the
    design flaw (coordinated omission) of conventional load testers.
    """
    engine = Engine()
    collector = StatsCollector()
    server = SimulatedServer(
        engine,
        ServiceTimeModel(Exponential.from_mean(service_mean)),
        NETWORK_MODELS["integrated"],
        1,
        collector,
        random.Random(0),
    )

    state = {"sent": 0}

    def send_next():
        if state["sent"] >= n_requests:
            return
        state["sent"] += 1
        server.submit(engine.now)

    # Piggyback on the server's response hook to drive the loop.
    original = server._on_response

    def on_response(request):
        original(request)
        engine.after(think_time, send_next)

    server._on_response = on_response
    send_next()
    engine.run()
    return collector.snapshot()


class TestCoordinatedOmission:
    def test_closed_loop_underestimates_tail(self):
        # Same server, same mean service time. The open loop at 80%
        # load sees real queueing in its tail; the closed loop can
        # never observe queueing at all (it only ever has one request
        # outstanding), so its p99 hugely underestimates what a
        # constant-rate user population would experience.
        service_mean = 1e-3
        profile = AppProfile(
            name="co", service=Exponential.from_mean(service_mean)
        )
        open_loop = simulate_load(
            profile,
            SimConfig(qps=0.8 / service_mean, measure_requests=20_000,
                      warmup_requests=2000),
        )
        closed = closed_loop_latencies(service_mean, 20_000)
        closed_summary = closed.summary("sojourn")
        assert closed_summary.p99 < open_loop.sojourn.p99 / 2
        # And the closed loop never queues:
        assert closed.summary("queue").maximum == pytest.approx(0.0)

    def test_open_loop_latency_independent_of_response_times(self):
        # Open-loop arrivals are drawn from the schedule regardless of
        # completions; offered QPS is preserved even under overload.
        service_mean = 1e-3
        profile = AppProfile(name="od", service=Deterministic(service_mean))
        result = simulate_load(
            profile,
            SimConfig(qps=2.0 / service_mean, measure_requests=3000),
        )
        assert result.utilization > 0.99  # server pinned
        # Sojourn keeps growing with arrival index under overload:
        records = result.stats.records
        first_quarter = [r.sojourn_time for r in records[: len(records) // 4]]
        last_quarter = [r.sojourn_time for r in records[-len(records) // 4:]]
        assert (sum(last_quarter) / len(last_quarter)) > 3 * (
            sum(first_quarter) / len(first_quarter)
        )


class TestWarmup:
    def test_warmup_removes_cold_start_bias(self):
        # A server whose first requests are artificially slow (cold
        # caches): without warmup the p95 is contaminated.
        class ColdStartModel(ServiceTimeModel):
            def __init__(self):
                super().__init__(Deterministic(1e-3))
                self.served = 0

            def sample(self, rng):
                self.served += 1
                if self.served <= 100:
                    return 20e-3  # cold
                return 1e-3

        def run(warmup):
            engine = Engine()
            collector = StatsCollector(warmup_requests=warmup)
            server = SimulatedServer(
                engine, ColdStartModel(), NETWORK_MODELS["integrated"],
                1, collector, random.Random(0),
            )
            for i in range(2000):
                server.submit(i * 0.05)
            engine.run()
            return collector.snapshot().summary("service")

        contaminated = run(warmup=0)
        clean = run(warmup=200)
        assert contaminated.p99 > 10 * clean.p99
        assert clean.p99 == pytest.approx(1e-3, rel=0.05)


class TestRandomizedRepetition:
    def test_different_seeds_give_independent_estimates(self):
        service_mean = 1e-3
        profile = AppProfile(
            name="rep", service=Exponential.from_mean(service_mean)
        )
        p95s = [
            simulate_load(
                profile,
                SimConfig(qps=0.7 / service_mean, measure_requests=12_000,
                          warmup_requests=1000, seed=seed),
            ).sojourn.p95
            for seed in range(5)
        ]
        assert len(set(p95s)) == 5  # genuinely re-randomized
        spread = (max(p95s) - min(p95s)) / min(p95s)
        assert spread < 0.5  # but statistically consistent

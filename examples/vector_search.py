"""Sharded vector search: recall knobs and measured tail-at-scale.

The vsearch extension models the latency-critical workload behind
semantic search and RAG: an IVF index whose service time scales with
``nprobe`` x probed-list length. Three things in one script:

1. the recall/latency knob — sweep nprobe against brute-force ground
   truth;
2. the determinism contract — a sharded corpus merges to *exactly*
   the global top-k;
3. tail-at-scale, measured — scatter-gather a logical query across K
   simulated shards and compare the end-to-end p99 against the
   order-statistic prediction ``fanout_quantile(leaves, K, 0.99)``.

Run:  python examples/vector_search.py
"""

from repro.apps.vsearch import VsearchApp
from repro.core import FanoutConfig
from repro.sim import SimConfig, simulate_app
from repro.stats import format_latency, quantile


def main() -> None:
    app = VsearchApp(n_vectors=4096, n_lists=32, n_queries=128, seed=0)
    app.setup()

    print("recall/latency knob (IVF, 32 posting lists):")
    for nprobe in (1, 4, 16, 32):
        recall = app.recall_at_k(nprobe=nprobe, sample=64)
        probed = app.index.probed_size(app.corpus.queries[0], nprobe)
        print(f"  nprobe={nprobe:>2}: recall@10={recall:.3f}  "
              f"candidates scored={probed}")

    sharded = VsearchApp(
        n_vectors=4096, n_lists=8, nprobe=8, n_queries=128, seed=0
    ).sharded(4)
    sharded.setup()
    exact = sum(
        sharded.process(qid) == app.exact_topk(qid) for qid in range(128)
    )
    print(f"\nsharded merge vs global brute force: {exact}/128 queries "
          "exact (per-row distances, ties by id)\n")

    print("tail-at-scale, measured in the simulator (50% shard load):")
    print(f"{'K':>4} {'e2e p99':>12} {'predicted':>12} {'leaf p99':>12}")
    for k in (1, 2, 4, 8):
        result = simulate_app(
            "vsearch",
            SimConfig(
                qps=1600.0,
                configuration="integrated",
                n_servers=k,
                warmup_requests=2000,
                measure_requests=20_000,
                seed=0,
                fanout=FanoutConfig(enabled=True, shards=k),
            ),
        )
        e2e = quantile(result.stats.samples(), 0.99)
        predicted = result.fanout.predicted_quantile(0.99)
        leaf = quantile(result.fanout.leaf_samples(), 0.99)
        print(f"{k:>4} {format_latency(e2e):>12} "
              f"{format_latency(predicted):>12} {format_latency(leaf):>12}")

    print(
        "\nPer-shard leaf p99 stays flat while the end-to-end p99 climbs "
        "with K:\nthe gather waits for max(L_1..L_K). The closed-form "
        "prediction tracks the\nmeasurement to a few percent — "
        "`tailbench fig-fanout` runs the same\ncomparison against the "
        "real sharded application."
    )


if __name__ == "__main__":
    main()

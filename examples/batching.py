"""Dynamic request batching: the size-or-deadline trade, step by step.

Walks ``repro.batching`` on the deterministic simulator (instant) and
closes with a real batched run of img-dnn on the live harness:

1. **Overload rescue** — offered load 40% past one worker's unbatched
   capacity. Unbatched, the queue diverges and p99 explodes; with
   batching (marginal member cost 0.3) the same worker amortizes its
   way back under saturation and the tail collapses.
2. **The delay bound at low load** — at 30% load batches rarely fill,
   so the ``max_batch_delay`` bound is the operative trigger: the cost
   of leaving batching on is at most the delay bound added to each
   request's wait.
3. **Live img-dnn** — the real vectorized ``handle_batch`` (one stacked
   forward pass per batch) at a saturating load: achieved throughput
   off vs on is the end-to-end amortization factor.

Run:  python examples/batching.py
"""

from repro.batching import BatchingConfig
from repro.sim import SimConfig, simulate_load
from repro.sim.calibration import AppProfile
from repro.stats import LogNormal, format_latency

SERVICE = LogNormal(mean=1e-3, sigma=0.5)
PROFILE = AppProfile(name="synthetic-batch", service=SERVICE)
CAPACITY = 1.0 / SERVICE.mean  # one worker's unbatched service rate

BATCHING = BatchingConfig(
    enabled=True,
    max_batch_size=8,
    max_batch_delay=0.004,
    sim_marginal_cost=0.3,
)


def describe(tag, result):
    occupancy = result.stats.mean_batch_size
    print(
        f"  {tag:9s} rate={result.stats.count / result.virtual_time:.0f}/s "
        f"p99={format_latency(result.sojourn.p99)} "
        f"occupancy={occupancy:.2f} util={result.utilization:.2f}"
    )


def overload_rescue() -> None:
    print("== 1.4x overload: batching amortizes the server back ==")
    base = dict(
        configuration="integrated", qps=1.4 * CAPACITY, n_threads=1,
        warmup_requests=200, measure_requests=5000, seed=0,
    )
    describe("unbatched", simulate_load(PROFILE, SimConfig(**base)))
    describe(
        "batched",
        simulate_load(PROFILE, SimConfig(**base, batching=BATCHING)),
    )
    print(
        "  (an 8-batch costs 1 + 0.3x7 = 3.1 draws for 8 requests: "
        "~2.6x capacity)"
    )


def low_load_delay_bound() -> None:
    print("\n== 0.3x load: the deadline trigger bounds the cost ==")
    base = dict(
        configuration="integrated", qps=0.3 * CAPACITY, n_threads=1,
        warmup_requests=200, measure_requests=5000, seed=0,
    )
    off = simulate_load(PROFILE, SimConfig(**base))
    on = simulate_load(PROFILE, SimConfig(**base, batching=BATCHING))
    describe("unbatched", off)
    describe("batched", on)
    added = on.sojourn.p50 - off.sojourn.p50
    print(
        f"  batching adds ~{format_latency(max(added, 0.0))} at the median "
        f"(bounded by the {BATCHING.max_batch_delay * 1e3:.0f}ms delay): "
        "with little queueing, batches form by deadline, not by size"
    )


def live_img_dnn() -> None:
    print("\n== live img-dnn: one stacked forward pass per batch ==")
    from repro.apps.img_dnn import ImgDnnApp
    from repro.core import HarnessConfig, run_harness

    base = dict(
        qps=25_000, n_threads=1, warmup_requests=200,
        measure_requests=3000, seed=0,
    )
    for tag, batching in (
        ("unbatched", BatchingConfig()),
        ("batched", BatchingConfig(
            enabled=True, max_batch_size=16, max_batch_delay=0.002
        )),
    ):
        app = ImgDnnApp(train_samples=300, epochs=4, seed=0)
        app.setup()
        result = run_harness(
            app, HarnessConfig(**base, batching=batching)
        )
        print(
            f"  {tag:9s} achieved={result.achieved_qps:.0f}/s "
            f"p99={format_latency(result.sojourn.p99)} "
            f"occupancy={result.stats.mean_batch_size:.2f}"
        )


if __name__ == "__main__":
    overload_rescue()
    low_load_delay_bound()
    live_img_dnn()

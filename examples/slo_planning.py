"""SLO-driven capacity planning with the simulator.

How many QPS can each application sustain while keeping its 95th
percentile under an SLO — and what does tightening the SLO cost?
This is the operator-side question TailBench's introduction motivates:
tail-latency SLOs, not throughput, bound datacenter utilization.

Run:  python examples/slo_planning.py
"""

from repro.analysis import capacity_curve, find_slo_capacity
from repro.sim import SimConfig, paper_profile
from repro.stats import format_latency


def main() -> None:
    # 1. Capacity vs. SLO for xapian: tighter SLOs cost capacity
    #    superlinearly as the SLO approaches the service tail itself.
    profile = paper_profile("xapian")
    saturation = 1.0 / profile.service.mean
    print("xapian: p95-SLO capacity curve (1 thread)")
    print(f"{'SLO':>10} {'capacity':>10} {'utilization':>12} {'headroom':>9}")
    for capacity in capacity_curve(
        profile, slos=(20e-3, 10e-3, 5e-3, 3e-3), measure_requests=6000
    ):
        print(
            f"{format_latency(capacity.slo):>10} "
            f"{capacity.qps:>8.0f}q {capacity.utilization:>11.0%} "
            f"{capacity.headroom:>8.0%}"
        )
    print(f"(saturation throughput: {saturation:.0f} qps)\n")

    # 2. What does a 4-thread server buy under the same SLO?
    one = find_slo_capacity(
        profile, 5e-3, config=SimConfig(n_threads=1, measure_requests=6000)
    )
    four = find_slo_capacity(
        profile, 5e-3, config=SimConfig(n_threads=4, measure_requests=6000)
    )
    print(
        f"5 ms p95 SLO: 1 thread sustains {one.qps:.0f} qps "
        f"({one.utilization:.0%} util); 4 threads sustain {four.qps:.0f} qps "
        f"({four.utilization:.0%} util)"
    )
    print(
        "Pooling lets the 4-thread server run at much higher utilization "
        "under the same tail SLO — the efficiency argument for "
        "parallelism in latency-critical servers (when contention "
        "doesn't eat it back; see examples/case_study.py)."
    )


if __name__ == "__main__":
    main()

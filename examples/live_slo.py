"""Live SLO engine walkthrough: watch a burn, then get it explained.

Runs the simulator against a three-replica topology where one replica
silently degrades mid-run (the ``slow_replica`` chaos scenario), with
the streaming observability layer armed:

1. declare an SLO — "90% of requests under 100 ms";
2. watch the windowed quantiles and the burn-rate alert catch the
   fault within one fast horizon of its onset;
3. inspect the slowest-request exemplars the reservoir kept;
4. ask the attribution engine *why* the p99 blew up — it names the
   faulted replica's queue, not its service time: the per-request
   stall is modest, the backlog it creates is the tail;
5. cross-check the streaming attainment number against the
   completion-side collector.

Everything is deterministic per seed. The identical configuration
drops onto a ``HarnessConfig`` to watch a real application instead.

Run:  python examples/live_slo.py
"""

from repro.core.config import ObservabilityConfig, SloConfig
from repro.faults import slow_replica
from repro.sim import SimConfig, simulate_load
from repro.sim.calibration import AppProfile
from repro.stats import LogNormal


def main() -> None:
    # 1. The SLO and the streaming engine that enforces it. Windows
    #    are 0.5 s; the alert fires when both the 2-window and the
    #    6-window burn rates exceed their thresholds, and clears with
    #    hysteresis at half of them — no flapping at the boundary.
    slo = SloConfig(
        enabled=True,
        target=0.1,           # 100 ms latency target
        objective=0.9,        # for 90% of requests (10% error budget)
        window=0.5,
        fast_windows=2, fast_burn=2.5,
        slow_windows=6, slow_burn=1.0,
        clear_factor=0.5,
        exemplars_per_window=3,
    )

    # 2. Three replicas at ~55% load; replica 2 stalls 150 ms per
    #    request between t=4s and t=8s. Round-robin keeps routing a
    #    third of the traffic into the backlog.
    profile = AppProfile(
        name="sleep-demo", service=LogNormal(mean=10e-3, sigma=0.3)
    )
    config = SimConfig(
        configuration="integrated",
        n_servers=3,
        balancer="round_robin",
        load_profile=((16.0, 165.0),),   # 16 s at 165 qps
        scenario=slow_replica(server_id=2, start=4.0, duration=4.0,
                              pause=0.15),
        observability=ObservabilityConfig(tracing=True, slo=slo),
        seed=0,
    )
    result = simulate_load(profile, config)
    live = result.obs.live

    # 3. The streaming summary: windows, burn rates, alert history.
    print(live.describe())
    print()
    for event in live.alerts.events:
        print(f"  alert {event.kind:5} at t={event.ts:5.2f}s "
              f"(window {event.window_index}, "
              f"fast burn {event.fast_burn:.1f}x, "
              f"slow burn {event.slow_burn:.1f}x)")
    print()

    # 4. The slowest requests the reservoir kept around the fault.
    worst = sorted(live.exemplars, key=lambda e: -e.sojourn)[:5]
    print("slowest exemplars:")
    for ex in worst:
        print(f"  window {ex.window_index:2d}  server {ex.server_id}  "
              f"sojourn {ex.sojourn * 1e3:6.1f} ms  "
              f"(generated t={ex.generated_at:.2f}s)")
    print()

    # 5. Why is the p99 high? Rank tail excess by component x replica
    #    x run phase, rebuilt purely from the trace events.
    report = result.obs.tail_report(
        pct=99.0,
        phases=(("pre", 0.0, 4.0), ("fault", 4.0, 8.0),
                ("post", 8.0, 16.0)),
    )
    print(report.render())
    print()

    # 6. Streaming vs completion-side attainment. The streaming number
    #    is send-anchored (work that never completed still burns
    #    budget), the collector's is completion-only — they agree when
    #    everything eventually finished.
    print(f"streaming attainment:  {live.attainment:.2%}")
    print(f"collector attainment:  "
          f"{result.stats.slo_attainment(slo.target):.2%}")


if __name__ == "__main__":
    main()

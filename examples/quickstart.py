"""Quickstart: measure tail latency of one application in 20 lines.

Builds the masstree key-value store, drives it with the mycsb-a
workload through the integrated harness configuration at a fixed
request rate, and prints the measured latency distribution.

Run:  python examples/quickstart.py
"""

from repro import HarnessConfig, create_app, run_harness


def main() -> None:
    # 1. Build an application (any of the eight suite members).
    app = create_app("masstree", n_records=2000)
    app.setup()

    # 2. Configure a load test: open-loop Poisson arrivals at 400 QPS,
    #    single worker thread, 200 warmup + 1000 measured requests.
    config = HarnessConfig(
        configuration="integrated",
        qps=400,
        n_threads=1,
        warmup_requests=200,
        measure_requests=1000,
    )

    # 3. Run and report.
    result = run_harness(app, config)
    print(result.describe())
    print()
    print("sojourn p95:", f"{result.sojourn.p95 * 1e6:.0f} us")
    print("service p95:", f"{result.service.p95 * 1e6:.0f} us")
    print("queueing p95:", f"{result.queue.p95 * 1e6:.0f} us")


if __name__ == "__main__":
    main()

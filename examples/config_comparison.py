"""Harness-configuration comparison (Fig. 5 style).

Runs the same application and load through all three harness
configurations — integrated (in-process), loopback (real TCP over
127.0.0.1), and networked (TCP + modelled NIC/switch delay) — and
shows how much of the measured tail each configuration's transport
contributes.

Run:  python examples/config_comparison.py
"""

from repro import HarnessConfig, create_app, run_harness
from repro.stats import format_latency


def main() -> None:
    app = create_app("masstree", n_records=1500)
    app.setup()

    print(f"{'configuration':>14} {'p50':>12} {'p95':>12} {'p99':>12} "
          f"{'net (p50)':>12}")
    for configuration in ("integrated", "loopback", "networked"):
        result = run_harness(
            app,
            HarnessConfig(
                configuration=configuration,
                qps=250,
                warmup_requests=30,
                measure_requests=400,
                seed=7,
            ),
        )
        sojourn = result.sojourn
        # Median transport time = sojourn minus queue minus service.
        from repro.stats import percentile

        net_times = [r.network_time for r in result.stats.records]
        print(
            f"{configuration:>14} {format_latency(sojourn.p50):>12} "
            f"{format_latency(sojourn.p95):>12} "
            f"{format_latency(sojourn.p99):>12} "
            f"{format_latency(percentile(net_times, 50)):>12}"
        )

    print(
        "\nFor masstree's ~100 us requests the network stack is visible "
        "but not dominant; for sub-100 us apps (silo, specjbb) it costs "
        "real capacity — see benchmarks/bench_fig5.py. For long-request "
        "apps the three configurations are interchangeable, which is "
        "what makes the integrated configuration suitable for "
        "simulation studies."
    )


if __name__ == "__main__":
    main()

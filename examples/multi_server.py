"""Replica-count and load-balancer sweep on the simulated topology.

Runs the xapian profile behind 1, 2, and 4 server replicas under every
routing policy, at a fixed *per-replica* load, and reports p50/p95/p99
sojourn plus the per-replica routing split. Two effects to look for:

- more replicas shorten the tail even at equal per-replica load
  (resource pooling: a burst can spill onto an idle neighbour);
- at any replica count, depth-aware policies (power-of-two, JSQ) beat
  blind ones (round-robin, random), and the gap lives in the tail.

The final section repeats one 4-replica run with tracing enabled,
writes the request-lifecycle trace as JSON Lines, and recomputes the
per-replica queue/service decomposition purely from the trace — the
same numbers the collector reports, rebuilt from raw events.

Run:  python examples/multi_server.py
"""

from repro.core import ObservabilityConfig, balancer_names
from repro.sim import SimConfig, simulate_app
from repro.stats import format_latency

#: Offered load per replica, as a fraction of one replica's capacity.
LOAD_PER_REPLICA = 0.8
#: xapian's calibrated mean service time is 800us => one 1-thread
#: replica saturates at 1250 qps.
CAPACITY_PER_REPLICA = 1250.0


def main() -> None:
    for n_servers in (1, 2, 4):
        qps = LOAD_PER_REPLICA * CAPACITY_PER_REPLICA * n_servers
        print(f"== {n_servers} replica(s), {qps:.0f} qps offered ==")
        for policy in balancer_names():
            result = simulate_app(
                "xapian",
                SimConfig(
                    qps=qps,
                    n_threads=1,
                    n_servers=n_servers,
                    balancer=policy,
                    warmup_requests=500,
                    measure_requests=8000,
                    seed=1,
                ),
            )
            sojourn = result.sojourn
            print(
                f"  {policy:12s} p50={format_latency(sojourn.p50)} "
                f"p95={format_latency(sojourn.p95)} "
                f"p99={format_latency(sojourn.p99)} "
                f"routed={list(result.routed_counts)}"
            )
        print()

    traced_run()


def traced_run() -> None:
    """One traced 4-replica run: export JSONL, decompose per replica."""
    n_servers = 4
    qps = LOAD_PER_REPLICA * CAPACITY_PER_REPLICA * n_servers
    result = simulate_app(
        "xapian",
        SimConfig(
            qps=qps,
            n_threads=1,
            n_servers=n_servers,
            balancer="jsq",
            warmup_requests=500,
            measure_requests=8000,
            seed=1,
            observability=ObservabilityConfig(tracing=True),
        ),
    )
    obs = result.obs
    path = "multi_server_trace.jsonl"
    lines = obs.export_trace_jsonl(path)
    print(f"== traced run: {n_servers} replicas, jsq, {qps:.0f} qps ==")
    print(f"wrote {lines} events to {path} (ring dropped {obs.dropped})")
    print("per-replica decomposition recomputed from the trace:")
    collector_view = result.per_server("queue")
    for server_id, summary in obs.per_server().items():
        print(
            f"  server[{server_id}] n={int(summary['count'])} "
            f"queue={format_latency(summary['queue'])} "
            f"service={format_latency(summary['service'])} "
            f"sojourn={format_latency(summary['sojourn'])} "
            f"(collector mean queue="
            f"{format_latency(collector_view[server_id].mean)})"
        )


if __name__ == "__main__":
    main()

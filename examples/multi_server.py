"""Replica-count and load-balancer sweep on the simulated topology.

Runs the xapian profile behind 1, 2, and 4 server replicas under every
routing policy, at a fixed *per-replica* load, and reports p50/p95/p99
sojourn plus the per-replica routing split. Two effects to look for:

- more replicas shorten the tail even at equal per-replica load
  (resource pooling: a burst can spill onto an idle neighbour);
- at any replica count, depth-aware policies (power-of-two, JSQ) beat
  blind ones (round-robin, random), and the gap lives in the tail.

Run:  python examples/multi_server.py
"""

from repro.core import balancer_names
from repro.sim import SimConfig, simulate_app
from repro.stats import format_latency

#: Offered load per replica, as a fraction of one replica's capacity.
LOAD_PER_REPLICA = 0.8
#: xapian's calibrated mean service time is 800us => one 1-thread
#: replica saturates at 1250 qps.
CAPACITY_PER_REPLICA = 1250.0


def main() -> None:
    for n_servers in (1, 2, 4):
        qps = LOAD_PER_REPLICA * CAPACITY_PER_REPLICA * n_servers
        print(f"== {n_servers} replica(s), {qps:.0f} qps offered ==")
        for policy in balancer_names():
            result = simulate_app(
                "xapian",
                SimConfig(
                    qps=qps,
                    n_threads=1,
                    n_servers=n_servers,
                    balancer=policy,
                    warmup_requests=500,
                    measure_requests=8000,
                    seed=1,
                ),
            )
            sojourn = result.sojourn
            print(
                f"  {policy:12s} p50={format_latency(sojourn.p50)} "
                f"p95={format_latency(sojourn.p95)} "
                f"p99={format_latency(sojourn.p99)} "
                f"routed={list(result.routed_counts)}"
            )
        print()


if __name__ == "__main__":
    main()

"""Energy vs. tail latency: the trade TailBench was built to study.

Evaluates four power-management policies on the masstree profile
across loads: static max frequency, static low frequency, reactive
queue-boost DVFS (Rubik/Adrenaline style), and deep sleep states
(PowerNap style). Reports p95 latency and average power (relative to
nominal active power).

Run:  python examples/energy_policies.py
"""

from repro.energy import (
    DeepSleep,
    NoSleep,
    QueueBoost,
    StaticFrequency,
    simulate_energy,
)
from repro.sim import paper_profile
from repro.stats import format_latency

POLICIES = (
    ("static max", StaticFrequency(1.0), NoSleep()),
    ("static 0.6x", StaticFrequency(0.6), NoSleep()),
    ("queue-boost", QueueBoost(low=0.6, high=1.0), NoSleep()),
    ("deep sleep", StaticFrequency(1.0), DeepSleep(wakeup_latency=300e-6)),
)


def main() -> None:
    profile = paper_profile("masstree")
    saturation = 1.0 / profile.service.mean
    for load in (0.15, 0.30, 0.60):
        qps = load * saturation
        print(f"masstree @ {load:.0%} load ({qps:.0f} qps):")
        print(f"  {'policy':>12} {'p95':>12} {'p99':>12} {'avg power':>10}")
        for label, freq_policy, sleep_policy in POLICIES:
            result = simulate_energy(
                profile.service,
                qps,
                frequency_policy=freq_policy,
                sleep_policy=sleep_policy,
                measure_requests=10_000,
            )
            print(
                f"  {label:>12} {format_latency(result.sojourn.p95):>12} "
                f"{format_latency(result.sojourn.p99):>12} "
                f"{result.average_power:>9.2f}x"
            )
        print()
    print(
        "Reactive DVFS keeps most of static-low's savings while staying "
        "near static-max's tail; deep sleep saves idle power but moves "
        "its ~300 us wakeup straight into the tail at low load — the "
        "microsecond-vs-hundreds-of-microseconds timescale split the "
        "paper's introduction describes. Policies like these are what "
        "a tail-latency benchmark suite exists to evaluate."
    )


if __name__ == "__main__":
    main()

"""SLO-driven control plane: admission, priority classes, autoscaling.

Walks the three controllers of ``repro.control`` on the simulated
topology (so everything is deterministic and instant):

1. **Load step, static vs controlled** — the fig-control scenario:
   offered load steps from 0.5x to 1.5x of one replica's capacity. The
   static single-replica server lets queueing delay grow without bound;
   the controlled run holds the 50 ms p99 SLO by scaling out and, when
   scaling is not enough, shedding at the admission gate. The per-tick
   (limit, replicas) trajectory printed at the end is the controller
   audit trail.
2. **Admission alone** — autoscaling disabled, sustained 3x overload:
   CoDel + AIMD turn "every request is hopelessly late" into "most
   requests meet the SLO, the rest are shed immediately" (goodput over
   deadline-blown throughput).
3. **Priority classes** — strict two-class scheduling under the same
   overload: the latency-critical class keeps its tail while the batch
   class absorbs the queueing.

Run:  python examples/autoscaling.py
"""

from repro.control import (
    AdmissionConfig,
    AutoscalerConfig,
    ControlPlaneConfig,
    PriorityConfig,
    RequestClassSpec,
)
from repro.sim import SimConfig, simulate_load
from repro.sim.calibration import AppProfile
from repro.stats import LogNormal, format_latency

SERVICE = LogNormal(mean=1e-3, sigma=0.5)
PROFILE = AppProfile(name="synthetic-sleep", service=SERVICE)
CAPACITY = 1.0 / SERVICE.mean  # one 1-thread replica's service rate
SLO_P99 = 0.05


def describe(tag, result):
    counts = result.control_counts
    shed = result.outcomes.get("shed", 0)
    print(
        f"  {tag:11s} p99={format_latency(result.sojourn.p99)} "
        f"served={result.stats.count} shed={shed} "
        f"replicas={counts.get('active_servers', 1)} "
        f"goodput={result.goodput_qps:.0f}/s"
    )


def load_step() -> None:
    print("== load step 0.5x -> 1.5x capacity (SLO p99 <= 50ms) ==")
    profile_steps = ((1.0, 0.5 * CAPACITY), (2.0, 1.5 * CAPACITY))
    control = ControlPlaneConfig(
        enabled=True,
        tick_interval=0.02,
        admission=AdmissionConfig(
            target_p99=SLO_P99,
            codel_target=SLO_P99 / 2.5,
            codel_interval=0.05,
            initial_limit=32,
            min_limit=8,
            additive_increase=2,
            multiplicative_decrease=0.5,
        ),
        autoscaler=AutoscalerConfig(
            min_servers=1,
            max_servers=3,
            scale_up_depth=4.0,
            scale_down_util=0.2,
            hysteresis_ticks=2,
            cooldown=0.2,
        ),
    )
    static = simulate_load(
        PROFILE,
        SimConfig(
            configuration="integrated", n_threads=1, n_servers=1,
            seed=0, load_profile=profile_steps,
        ),
    )
    controlled = simulate_load(
        PROFILE,
        SimConfig(
            configuration="integrated", n_threads=1, n_servers=1,
            seed=0, load_profile=profile_steps, control=control,
        ),
    )
    describe("static", static)
    describe("controlled", controlled)
    print("  per-replica goodput (controlled):")
    for server_id, qps in sorted(controlled.per_server_qps().items()):
        print(f"    server[{server_id}] {qps:.0f}/s over its active window")


def admission_alone() -> None:
    print("\n== admission control alone, sustained 3x overload ==")
    control = ControlPlaneConfig(
        enabled=True,
        tick_interval=0.02,
        admission=AdmissionConfig(
            target_p99=SLO_P99, initial_limit=64, min_limit=4,
            multiplicative_decrease=0.5,
        ),
    )
    base = dict(
        configuration="integrated", qps=3.0 * CAPACITY, n_threads=1,
        warmup_requests=0, measure_requests=5000, seed=0,
    )
    unmanaged = simulate_load(PROFILE, SimConfig(**base))
    managed = simulate_load(PROFILE, SimConfig(**base, control=control))
    describe("unmanaged", unmanaged)
    describe("managed", managed)
    counts = managed.control_counts
    print(
        f"  gate decisions: admitted={counts['admitted']} "
        f"codel={counts['codel_dropped']} limit={counts['limit_dropped']} "
        f"(final AIMD limit {counts['final_limit']})"
    )


def priority_classes() -> None:
    print("\n== strict priority classes, 1.3x overload ==")
    control = ControlPlaneConfig(
        enabled=True,
        tick_interval=0.02,
        priority=PriorityConfig(
            classes=(
                RequestClassSpec("interactive", priority=1, fraction=0.8),
                RequestClassSpec("batch", priority=0, fraction=0.2),
            ),
            mode="strict",
        ),
    )
    result = simulate_load(
        PROFILE,
        SimConfig(
            configuration="integrated", qps=1.3 * CAPACITY, n_threads=1,
            warmup_requests=0, measure_requests=4000, seed=0,
            control=control,
        ),
    )
    for name, summary in sorted(result.stats.per_class().items()):
        print(
            f"  class {name:12s} n={summary.count} "
            f"p50={format_latency(summary.p50)} "
            f"p99={format_latency(summary.p99)}"
        )


if __name__ == "__main__":
    load_step()
    admission_alone()
    priority_classes()

"""Metastable failure: a retry storm that outlives its trigger.

Walks the canonical spiral in the discrete-event simulator (seconds of
wall clock, bit-identical per seed):

1. one of three replicas turns ~75x slower for a timed window
   (`retry_storm` chaos scenario);
2. an undefended client (deadline + aggressive retries) times out on
   every attempt routed there and retries onto the survivors; the
   amplified attempt rate exceeds *their* capacity, their queues cross
   the attempt timeout too, and goodput collapses — and stays
   collapsed after the fault clears, because the retry load is now
   the overload;
3. the defended arm (same retry policy + `HealthConfig`: outlier
   ejection, circuit breakers, a global retry budget) routes around
   the slow replica and recovers within seconds.

Run:  python examples/metastable_failure.py
"""

from repro.core import ResilienceConfig
from repro.faults import retry_storm
from repro.health import HealthConfig
from repro.sim import AppProfile, SimConfig, simulate_load
from repro.stats import LogNormal

SERVICE = LogNormal(mean=10e-3, sigma=0.3)   # 10 ms mean service time
N_SERVERS = 3
WARM, FAULT, POST = 1.0, 2.0, 5.0            # phase timeline (seconds)
HORIZON = WARM + FAULT + POST
QPS = 0.58 * N_SERVERS / SERVICE.mean        # 58% of healthy capacity

#: The slow replica stalls 300 ms per request — far beyond the 50 ms
#: attempt timeout, so every attempt routed there times out.
SCENARIO = retry_storm(
    server_id=N_SERVERS - 1, start=WARM, duration=FAULT, pause=0.3
)

#: The spiral's fuel: tight attempt timeout + 3 retries = up to 4x
#: attempt amplification per request.
RETRIES = ResilienceConfig(
    deadline=0.5, attempt_timeout=0.05, max_retries=3,
    backoff_base=0.005, backoff_cap=0.02,
)

#: The cure: ejection + breakers + a retry budget capping sustained
#: amplification at ~1.1x. One flag; everything else is defaults.
DEFENSE = HealthConfig(enabled=True, probe_interval=50)


def goodput(result, start: float, end: float) -> float:
    """Deadline-met completions per second inside [start, end)."""
    records = result.stats.records
    t0 = min(r.generated_at for r in records)
    n = sum(
        1
        for r in records
        if r.response_received_at is not None
        and start <= r.response_received_at - t0 < end
    )
    return n / (end - start)


def run(arm: str, health) -> None:
    config = SimConfig(
        configuration="integrated",
        n_threads=1,
        n_servers=N_SERVERS,
        balancer="round_robin",
        seed=0,
        load_profile=((HORIZON, QPS),),
        resilience=RETRIES,
        scenario=SCENARIO,
    )
    if health is not None:
        config = config.replace(health=health)
    result = simulate_load(
        AppProfile(name="metastable-demo", service=SERVICE), config
    )

    fault_end = WARM + FAULT
    print(f"--- {arm}")
    print(
        f"goodput: pre-fault {goodput(result, 0.5 * WARM, WARM):4.0f}/s | "
        f"during fault {goodput(result, WARM, fault_end):4.0f}/s | "
        "after fault cleared:",
        " ".join(
            f"{goodput(result, fault_end + k, fault_end + k + 1):4.0f}"
            for k in range(int(POST))
        ),
        "/s per second",
    )
    print(
        f"retry amplification {result.retry_amplification:.2f}x  "
        f"timed out {result.outcomes.get('timed_out', 0)}"
    )
    if result.health_counts:
        h = result.health_counts
        print(
            f"defenses: ejections={h.get('ejections', 0)} "
            f"probes={h.get('probes', 0)} "
            f"breaker_opens={h.get('breaker_opens', 0)} "
            f"retries_denied={h.get('retries_denied', 0)}"
        )
    print()


def main() -> None:
    print(
        f"retry storm: replica {N_SERVERS - 1} of {N_SERVERS} stalls "
        f"0.3s/request during t=[{WARM:g},{WARM + FAULT:g})s, "
        f"{QPS:.0f} qps offered for {HORIZON:g}s\n"
    )
    run("undefended (deadline + retries only)", None)
    run("defended (ejection + breaker + retry budget)", DEFENSE)
    print(
        "The undefended arm's collapse outlives the fault: retries, not\n"
        "the slow replica, are now the overload. The defended arm ejects\n"
        "the replica, the budget caps amplification, and goodput returns\n"
        "to pre-fault within seconds. Re-run with a different seed= for\n"
        "a statistically different — but per-seed bit-identical — replay."
    )


if __name__ == "__main__":
    main()

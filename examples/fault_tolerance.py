"""Fault tolerance: tail latency and goodput under injected failures.

Runs the same application three ways —

1. healthy baseline,
2. under a fault plan (message drops, application errors, worker
   pauses, a queue-stall window) with no client-side recovery,
3. same faults with a resilient client (deadline + retries + hedging),

then replays the faulted scenario in the discrete-event simulator
twice to demonstrate deterministic fault replay.

Run:  python examples/fault_tolerance.py
"""

from repro import HarnessConfig, create_app, run_harness
from repro.core import ResilienceConfig
from repro.faults import FaultPlan
from repro.sim import SimConfig, simulate_app

FAULTS = FaultPlan(
    drop_rate=0.05,          # 5% of messages vanish in the transport
    error_rate=0.03,         # 3% of requests hit an application bug
    worker_pause_rate=0.02,  # 2% of requests land on a GC-style pause
    worker_pause=0.02,       # ... of 20 ms
    queue_stalls=[(0.2, 0.1)],  # dispatch wedged for 100 ms at t=0.2s
)

RECOVERY = ResilienceConfig(
    deadline=0.1,       # 100 ms per-request deadline
    max_retries=2,      # jittered exponential backoff between attempts
    hedge_after=0.04,   # duplicate a request outliving ~p95 latency
)


def report(title: str, result) -> None:
    print(f"--- {title}")
    print(result.describe())
    print(
        f"goodput={result.goodput_qps:.0f}/{result.achieved_qps:.0f} qps  "
        f"success_rate={result.success_rate:.1%}  "
        f"amplification={result.retry_amplification:.2f}"
    )
    if result.stats.attempt_count:
        print(
            f"p99 per-success={result.sojourn.p99 * 1e3:.1f} ms  "
            f"per-attempt={result.attempt_latency.p99 * 1e3:.1f} ms"
        )
    if result.fault_counts:
        fired = {k: v for k, v in result.fault_counts.items() if v}
        print(f"faults fired: {fired}")
    print()


def main() -> None:
    base = HarnessConfig(
        qps=400, n_threads=2, warmup_requests=100, measure_requests=800
    )

    app = create_app("masstree", n_records=2000)
    app.setup()
    report("healthy baseline", run_harness(app, base))

    report(
        "faults, no recovery (drops are lost forever)",
        run_harness(app, base.replace(faults=FAULTS)),
    )

    report(
        "faults + resilient client (deadline/retry/hedge)",
        run_harness(app, base.replace(faults=FAULTS, resilience=RECOVERY)),
    )

    # The same plan replayed in virtual time is exactly reproducible.
    sim_config = SimConfig(
        qps=800,
        n_threads=2,
        warmup_requests=100,
        measure_requests=4000,
        faults=FAULTS,
        resilience=ResilienceConfig(
            deadline=0.05, max_retries=2, hedge_after=0.01
        ),
        seed=42,
    )
    a = simulate_app("masstree", sim_config)
    b = simulate_app("masstree", sim_config)
    print("--- simulated replay (virtual time)")
    print(a.describe())
    print(
        "deterministic:",
        a.outcomes == b.outcomes
        and a.stats.samples("sojourn") == b.stats.samples("sojourn"),
    )


if __name__ == "__main__":
    main()

"""Why leaf tails matter: the fan-out amplification effect.

Large services fan each user request out to many leaf nodes and wait
for the slowest one (Sec. II-A: "the latency perceived by the user is
determined by the few slowest nodes"). This example simulates a
cluster of xapian-like search leaves and shows how the *end-to-end*
latency distribution degrades with fan-out: at fan-out 100, nearly
every user request experiences a leaf's 99th percentile.

Run:  python examples/fanout_tail.py
"""

import random

from repro.sim import SimConfig, paper_profile, simulate_app
from repro.stats import format_latency, percentile


def main() -> None:
    profile = paper_profile("xapian")
    saturation = 1.0 / profile.service.mean

    # Measure one leaf's sojourn-time distribution at 50% load.
    leaf = simulate_app(
        "xapian",
        SimConfig(qps=0.5 * saturation, measure_requests=40_000,
                  warmup_requests=4000),
    )
    leaf_samples = leaf.stats.samples("sojourn")
    print(
        f"single leaf @50% load: p50 {format_latency(percentile(leaf_samples, 50))}, "
        f"p99 {format_latency(percentile(leaf_samples, 99))}\n"
    )

    # End-to-end latency = max over `fanout` independent leaves.
    rng = random.Random(0)
    print(f"{'fan-out':>8} {'e2e p50':>12} {'e2e p95':>12} {'e2e p99':>12}")
    for fanout in (1, 10, 50, 100):
        e2e = [
            max(rng.choice(leaf_samples) for _ in range(fanout))
            for _ in range(5000)
        ]
        print(
            f"{fanout:>8} {format_latency(percentile(e2e, 50)):>12} "
            f"{format_latency(percentile(e2e, 95)):>12} "
            f"{format_latency(percentile(e2e, 99)):>12}"
        )

    print(
        "\nAt fan-out 100 the *median* user already waits for a leaf's "
        "~99th percentile — the reason TailBench characterizes leaf-"
        "node tail latency rather than means."
    )


if __name__ == "__main__":
    main()

"""The Zipf-aware caching tier: warm steady state vs cold restart.

A results cache reshapes the latency distribution at its root: a hit
skips the queue and the service time entirely, so effective load on
the backend drops by the hit rate. Three things in one script:

1. the policy shoot-out — LRU vs perfect-LFU vs TinyLFU hit rates
   against the closed-form Zipf prediction (top-C popularity mass);
2. the cold restart — ``clear_at`` wipes the cache mid-run and the
   recovery window's p99 spikes while misses refill it;
3. the control-plane composition — the same cold restart with an
   autoscaler watching queue depth: overload absorbed by scale-out.

Run:  python examples/caching.py
"""

from repro.cache import predicted_hit_rate
from repro.control import AutoscalerConfig, ControlPlaneConfig
from repro.core import CacheConfig
from repro.sim import SimConfig, simulate_load
from repro.sim.calibration import paper_profile
from repro.stats import format_latency, quantile

KEYSPACE = 512
THETA = 0.9
PROFILE = paper_profile("xapian")


def _config(**kwargs) -> SimConfig:
    defaults = dict(
        qps=0.6 / PROFILE.service.mean,
        n_threads=1,
        configuration="integrated",
        warmup_requests=500,
        measure_requests=8000,
        seed=0,
    )
    defaults.update(kwargs)
    return SimConfig(**defaults)


def policy_shootout() -> None:
    capacity = int(KEYSPACE * 0.05)
    predicted = predicted_hit_rate(KEYSPACE, THETA, capacity)
    print(f"hit rates at C={capacity} (5% of {KEYSPACE} keys, "
          f"theta={THETA}); closed form predicts {predicted:.1%}:")
    for policy in ("lru", "tinylfu", "lfu"):
        result = simulate_load(PROFILE, _config(
            cache=CacheConfig(
                enabled=True, policy=policy, capacity=capacity,
                sim_keyspace=KEYSPACE, sim_theta=THETA,
            ),
        ))
        counts = result.cache_counts
        rate = counts["hits"] / (counts["hits"] + counts["misses"])
        print(f"  {policy:>8}: measured {rate:.1%}  "
              f"(gap to bound {predicted - rate:+.1%})")
    print("  perfect LFU converges to the top-C set; LRU pays recency "
          "churn.\n")


def _windowed_p99(result, start: float, end: float) -> float:
    samples = [
        r.sojourn_time
        for r in result.stats.records
        if start <= r.generated_at < end
    ]
    return quantile(samples, 0.99)


def cold_restart() -> None:
    qps = 1.2 / PROFILE.service.mean
    n = 12_000
    span = n / qps
    clear_at = 0.5 * span
    window = 0.2 * span
    capacity = int(KEYSPACE * 0.20)
    base = dict(qps=qps, measure_requests=n, warmup_requests=500)
    warm = simulate_load(PROFILE, _config(
        cache=CacheConfig(enabled=True, policy="lfu", capacity=capacity),
        **base,
    ))
    cold = simulate_load(PROFILE, _config(
        cache=CacheConfig(enabled=True, policy="lfu", capacity=capacity,
                          clear_at=clear_at),
        **base,
    ))
    warm_p99 = _windowed_p99(warm, clear_at, clear_at + window)
    cold_p99 = _windowed_p99(cold, clear_at, clear_at + window)
    print("cold restart at t=%.1fs (load > capacity without the cache):"
          % clear_at)
    print(f"  recovery-window p99, warm cache : "
          f"{format_latency(warm_p99)}")
    print(f"  recovery-window p99, cold cache : "
          f"{format_latency(cold_p99)}  "
          f"({cold_p99 / warm_p99:.1f}x spike)")
    print(f"  extra misses paid refilling     : "
          f"{cold.cache_counts['misses'] - warm.cache_counts['misses']}\n")


def autoscaled_cold_restart() -> None:
    qps = 1.8 / PROFILE.service.mean
    n = 20_000
    span = n / qps
    control = ControlPlaneConfig(
        enabled=True,
        tick_interval=0.05,
        autoscaler=AutoscalerConfig(
            min_servers=1, max_servers=3,
            scale_up_depth=3.0, scale_down_util=0.35,
            hysteresis_ticks=2, cooldown=0.2,
        ),
    )
    base = dict(qps=qps, measure_requests=n, warmup_requests=500,
                control=control)
    cache = dict(enabled=True, policy="lfu",
                 capacity=int(KEYSPACE * 0.20))
    warm = simulate_load(PROFILE, _config(
        cache=CacheConfig(**cache), **base,
    ))
    cold = simulate_load(PROFILE, _config(
        cache=CacheConfig(clear_at=0.6 * span, **cache), **base,
    ))
    print("same restart with the autoscaler watching queue depth:")
    for label, result in (("warm", warm), ("cold", cold)):
        counts = result.control_counts
        print(f"  {label}: scale_ups={counts['scale_ups']}  "
              f"scale_downs={counts['scale_downs']}  "
              f"p99={format_latency(quantile(result.stats.samples(), 0.99))}  "
              f"misses={result.cache_counts['misses']}")
    print("  the wiped cache raises effective load past one replica; "
          "the control\n  plane scales out until the refilled cache "
          "brings it back down.")


def main() -> None:
    policy_shootout()
    cold_restart()
    autoscaled_cold_restart()


if __name__ == "__main__":
    main()

"""Process-sharded replicas: escaping the GIL with one flag.

Every threaded topology in this harness shares one Python interpreter,
so the GIL caps aggregate *application* work at roughly one core no
matter how many replicas the topology declares. Flipping

    execution=ExecutionConfig(mode="process")

moves each replica's queue and worker pool into its own OS process
behind the same Transport interface: the shaper, balancer, collector,
and per-server attribution are unchanged, but replicas now execute on
separate cores.

This example runs the same img-dnn workload at 1 and N single-threaded
replicas in both execution modes and prints the achieved-throughput
scaling. On a multi-core machine the process column scales with the
replica count while the threaded column stays flat; on a 1-core
machine both stay flat (there is nothing to scale onto) but the
attribution table shows the process replicas each served their share.

Run:  PYTHONPATH=src python examples/multicore.py
"""

import os

from repro.apps import create_app
from repro.core import ExecutionConfig, HarnessConfig, run_harness

#: Replicas in the scaled topology (match to your core count).
N_REPLICAS = min(4, os.cpu_count() or 1)
#: Offered load relative to nominal capacity (oversubscribed so the
#: achieved rate reports what the topology can actually sustain).
OVERSUBSCRIBE = 1.5


def measure(app, n_servers: int, mode: str, capacity_qps: float):
    config = HarnessConfig(
        qps=capacity_qps * n_servers * OVERSUBSCRIBE,
        warmup_requests=50,
        measure_requests=400 * n_servers,
        n_threads=1,
        n_servers=n_servers,
        balancer="round_robin",
        seed=11,
        execution=ExecutionConfig(mode=mode),
    )
    return run_harness(app, config)


def main() -> None:
    app = create_app("img-dnn", train_samples=300, epochs=3)
    app.setup()

    # Rough capacity probe: single replica, threaded.
    probe = measure(app, 1, "threaded", capacity_qps=2000.0)
    capacity = probe.achieved_qps

    print(f"img-dnn, single-threaded replicas, {os.cpu_count()} core(s)")
    print(f"{'replicas':>8} {'mode':>9} {'achieved qps':>13} {'speedup':>8}")
    base = {}
    for mode in ("threaded", "process"):
        for n_servers in sorted({1, N_REPLICAS}):
            result = measure(app, n_servers, mode, capacity)
            if n_servers == 1:
                base[mode] = result.achieved_qps
            speedup = result.achieved_qps / base[mode]
            print(
                f"{n_servers:>8} {mode:>9} {result.achieved_qps:>13.1f} "
                f"{speedup:>8.2f}"
            )
            per = result.stats.per_server()
            split = {sid: s.count for sid, s in sorted(per.items())}
            print(f"{'':>8} per-replica counts: {split}")
    print()
    print("The send-lag audit (coordinated-omission check) for the last run:")
    for key, value in result.stats.send_audit().items():
        print(f"  {key} = {value * 1e3:.3f} ms")


if __name__ == "__main__":
    main()

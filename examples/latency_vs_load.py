"""Latency vs. load: how tails blow up before means do (Fig. 3 style).

Measures the xapian search engine live (wall clock) across a range of
offered loads, then reproduces the same sweep in the virtual-time
simulator using a service-time profile captured from the live app —
demonstrating the live-mode / virtual-time bridge.

Run:  python examples/latency_vs_load.py
"""

from repro import HarnessConfig, create_app, run_harness
from repro.sim import (
    AppProfile,
    SimConfig,
    profile_application,
    simulate_load,
)
from repro.stats import format_latency


def main() -> None:
    app = create_app("xapian", n_docs=400, vocab_size=1200, mean_doc_len=80)
    app.setup()

    # Capture the app's service-time distribution (Fig. 2 data) and
    # derive its saturation rate.
    empirical = profile_application(app, n_requests=150, seed=0)
    saturation = 1.0 / empirical.mean
    print(
        f"measured mean service {format_latency(empirical.mean)}; "
        f"single-thread capacity ~{saturation:.0f} QPS\n"
    )

    profile = AppProfile(name="xapian-live", service=empirical)
    print(f"{'load':>6} {'live p95':>12} {'sim p95':>12} {'sim p99':>12}")
    for load in (0.2, 0.4, 0.6, 0.8):
        qps = load * saturation
        live = run_harness(
            app,
            HarnessConfig(qps=qps, warmup_requests=20, measure_requests=250),
        )
        sim = simulate_load(
            profile,
            SimConfig(qps=qps, warmup_requests=2000, measure_requests=20000),
        )
        print(
            f"{load:>6.0%} {format_latency(live.sojourn.p95):>12} "
            f"{format_latency(sim.sojourn.p95):>12} "
            f"{format_latency(sim.sojourn.p99):>12}"
        )
    print(
        "\nNote how p95 (and p99 even more) grows much faster than the "
        "~1/(1-load) growth of the mean: tail latency must be measured, "
        "not inferred from throughput metrics."
    )


if __name__ == "__main__":
    main()

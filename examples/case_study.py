"""The Sec. VII case study: why do moses and silo scale poorly?

Uses the virtual-time simulator to separate two causes of bad
multithreaded tail latency — memory contention vs. synchronization —
by simulating an idealized memory system and comparing against the
pure M/G/n queueing model.

Run:  python examples/case_study.py
"""

from repro.experiments.fig8 import render_fig8, run_fig8


def main() -> None:
    results = run_fig8(measure_requests=10_000)
    print(render_fig8(results))
    print()
    for name, result in results.items():
        if result.ideal_tracks_mgn(4):
            print(
                f"{name}: with zero-latency/infinite-bandwidth DRAM the "
                f"4-thread system behaves like M/G/4 => its real-system "
                f"degradation is MEMORY CONTENTION (add cache/bandwidth)."
            )
        else:
            print(
                f"{name}: ideal memory does not recover M/G/4 behaviour "
                f"=> its degradation is SYNCHRONIZATION (restructure "
                f"locking, not the memory system)."
            )


if __name__ == "__main__":
    main()

"""Why datacenters run latency-critical servers at low utilization.

Colocates a batch job with the xapian leaf and sweeps the batch's CPU
share: the latency-critical tail degrades hyperbolically as the batch
pushes the server toward saturation. Then answers the operator
question directly: at each load, how much batch work fits under the
SLO? (Sec. II-A of the paper: this trade is why servers idle at 5-30%
utilization, wasting "billions of dollars in equipment".)

Run:  python examples/colocation.py
"""

from repro.sim import (
    BatchColocation,
    SimConfig,
    max_safe_batch_share,
    paper_profile,
    simulate_colocated,
)
from repro.stats import format_latency


def main() -> None:
    profile = paper_profile("xapian")
    saturation = 1.0 / profile.service.mean
    qps = 0.3 * saturation  # conservative 30% provisioning

    print("xapian @30% load with a colocated batch job:")
    print(f"{'batch CPU share':>16} {'p95':>12} {'p99':>12}")
    for share in (0.0, 0.2, 0.4, 0.5, 0.6):
        result = simulate_colocated(
            profile,
            SimConfig(qps=qps, measure_requests=6000),
            BatchColocation(cpu_share=share, mem_pressure=share * 0.3),
        )
        print(
            f"{share:>16.0%} {format_latency(result.sojourn.p95):>12} "
            f"{format_latency(result.sojourn.p99):>12}"
        )

    print("\nmax batch share that keeps p95 under 8 ms:")
    for load in (0.2, 0.4, 0.6):
        share = max_safe_batch_share(
            profile, load * saturation, slo_seconds=8e-3,
            measure_requests=4000,
        )
        print(f"  at {load:.0%} latency-critical load: {share:.0%} batch")

    print(
        "\nThe safe batch share collapses as load rises — uncontrolled "
        "colocation and high utilization cannot coexist with tail SLOs, "
        "which is the gap isolation mechanisms (Ubik, Heracles, "
        "Dirigent, ...) target. TailBench exists so such mechanisms "
        "can be evaluated."
    )


if __name__ == "__main__":
    main()
